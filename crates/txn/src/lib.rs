//! # recdb-txn
//!
//! The concurrency-control layer of RecDB-rs: a table-granularity lock
//! table implementing strict two-phase locking for the engine's sessions.
//!
//! * Readers (`SELECT` / `RECOMMEND`) take [`LockMode::Shared`] locks on
//!   every table they scan; any number of shared holders coexist, so
//!   concurrent readers never block each other.
//! * Writers take [`LockMode::Exclusive`] locks on the tables they
//!   mutate; an exclusive lock excludes every other transaction.
//! * A transaction already holding an exclusive lock implicitly holds the
//!   shared lock too, and the *sole* shared holder may upgrade to
//!   exclusive in place (`BEGIN; SELECT ...; INSERT ...` never
//!   self-deadlocks).
//!
//! There is no deadlock detector. Instead every acquisition carries a
//! timeout: a waiter parks on a condition variable in bounded
//! exponentially growing slices (1 ms doubling to a 64 ms cap, never past
//! the remaining budget) and gives up with [`LockError::Timeout`] when the
//! budget is exhausted — contended sessions degrade gracefully instead of
//! deadlocking, the policy SimpleDB-style engines use at this
//! granularity. A waiter also re-checks its [`QueryGuard`] at every wake,
//! so a cancelled or deadline-expired query abandons the wait immediately
//! and strands no lock.
//!
//! Fail point: `txn::lock_acquire` fires at the top of every
//! [`LockTable::acquire`] call (seeded fault matrices use it to abort
//! statements at the locking layer).
//!
//! Metrics (attached via [`LockTable::attach_metrics`]):
//! `recdb_lock_waits_total` counts acquisitions that could not be granted
//! immediately, and the `recdb_lock_wait_micros` histogram records how
//! long each such wait lasted (granted *or* timed out).

use recdb_guard::{GuardError, QueryGuard};
use recdb_obs::Registry;
use std::collections::{BTreeSet, HashMap};
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Transaction identifier. The engine allocates these from a process-wide
/// counter; auto-committed statements get a fresh id per statement.
pub type TxnId = u64;

/// Lock strength, classic shared/exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Reader lock: compatible with other shared locks.
    Shared,
    /// Writer lock: excludes every other transaction.
    Exclusive,
}

/// Why a lock acquisition failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The wait budget ran out while another transaction held the table.
    Timeout {
        /// Table the acquisition was for.
        table: String,
        /// How long the transaction waited before giving up.
        waited: Duration,
    },
    /// The waiting query's guard tripped (cancel / deadline).
    Cancelled(GuardError),
    /// An armed `txn::lock_acquire` fail point fired.
    Fault(recdb_fault::FaultError),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Timeout { table, waited } => write!(
                f,
                "lock wait on table `{table}` timed out after {:.3}s",
                waited.as_secs_f64()
            ),
            LockError::Cancelled(e) => write!(f, "lock wait cancelled: {e}"),
            LockError::Fault(e) => write!(f, "lock acquire fault: {e}"),
        }
    }
}

impl Error for LockError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LockError::Timeout { .. } => None,
            LockError::Cancelled(e) => Some(e),
            LockError::Fault(e) => Some(e),
        }
    }
}

/// Per-table lock state: the set of shared holders plus at most one
/// exclusive holder. An upgrading transaction appears in both.
#[derive(Debug, Default)]
struct Entry {
    shared: BTreeSet<TxnId>,
    exclusive: Option<TxnId>,
}

impl Entry {
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            // Shared: ok unless someone *else* holds exclusive.
            LockMode::Shared => self.exclusive.is_none_or(|x| x == txn),
            // Exclusive: ok if every current holder is this transaction
            // (covers fresh grant, re-entry, and the sole-reader upgrade).
            LockMode::Exclusive => {
                self.exclusive.is_none_or(|x| x == txn) && self.shared.iter().all(|&s| s == txn)
            }
        }
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        match mode {
            LockMode::Shared => {
                self.shared.insert(txn);
            }
            LockMode::Exclusive => self.exclusive = Some(txn),
        }
    }

    fn release(&mut self, txn: TxnId) {
        self.shared.remove(&txn);
        if self.exclusive == Some(txn) {
            self.exclusive = None;
        }
    }

    fn is_free(&self) -> bool {
        self.shared.is_empty() && self.exclusive.is_none()
    }
}

/// First backoff slice a waiter parks for.
const INITIAL_BACKOFF: Duration = Duration::from_millis(1);
/// Backoff slices double up to this cap (bounded exponential backoff).
const MAX_BACKOFF: Duration = Duration::from_millis(64);
/// Decade buckets for the lock-wait histogram (microseconds).
const LOCK_WAIT_BUCKETS: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// The engine-wide lock table. Table names are the keys; the engine
/// lower-cases them before calling in (the catalog is case-folded too).
#[derive(Default)]
pub struct LockTable {
    state: Mutex<HashMap<String, Entry>>,
    cond: Condvar,
    metrics: Mutex<Option<Arc<Registry>>>,
}

impl LockTable {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach the engine's metric registry; waits recorded afterwards
    /// feed `recdb_lock_waits_total` and `recdb_lock_wait_micros`.
    pub fn attach_metrics(&self, registry: Arc<Registry>) {
        *lock(&self.metrics) = Some(registry);
    }

    /// Acquire `mode` on `table` for transaction `txn`, waiting up to
    /// `timeout`. Re-entrant: a mode already held (or implied by a held
    /// exclusive) is granted immediately, and the sole shared holder may
    /// upgrade to exclusive. A zero timeout never blocks: it either gets
    /// the immediate grant or fails with [`LockError::Timeout`].
    pub fn acquire(
        &self,
        txn: TxnId,
        table: &str,
        mode: LockMode,
        timeout: Duration,
        guard: Option<&QueryGuard>,
    ) -> Result<(), LockError> {
        recdb_fault::fail_point("txn::lock_acquire").map_err(LockError::Fault)?;
        let mut state = lock(&self.state);
        {
            let entry = state.entry(table.to_owned()).or_default();
            if entry.grantable(txn, mode) {
                entry.grant(txn, mode);
                return Ok(());
            }
        }
        // Contended: park in bounded exponential backoff slices, waking on
        // releases, until granted, cancelled, or out of budget.
        self.note_wait_started();
        let started = Instant::now();
        let mut backoff = INITIAL_BACKOFF;
        loop {
            let waited = started.elapsed();
            if waited >= timeout {
                drop(state);
                self.observe_wait(waited);
                return Err(LockError::Timeout {
                    table: table.to_owned(),
                    waited,
                });
            }
            if let Some(g) = guard {
                if let Err(e) = g.check() {
                    drop(state);
                    self.observe_wait(started.elapsed());
                    return Err(LockError::Cancelled(e));
                }
            }
            let slice = backoff.min(timeout - waited);
            let (next, _) = self
                .cond
                .wait_timeout(state, slice)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
            backoff = (backoff * 2).min(MAX_BACKOFF);
            let entry = state.entry(table.to_owned()).or_default();
            if entry.grantable(txn, mode) {
                entry.grant(txn, mode);
                drop(state);
                self.observe_wait(started.elapsed());
                return Ok(());
            }
        }
    }

    /// Release every lock `txn` holds (end of transaction — strict 2PL
    /// releases nothing earlier) and wake all waiters.
    pub fn release_all(&self, txn: TxnId) {
        let mut state = lock(&self.state);
        state.retain(|_, entry| {
            entry.release(txn);
            !entry.is_free()
        });
        drop(state);
        self.cond.notify_all();
    }

    /// The mode `txn` currently holds on `table`, if any (exclusive wins
    /// when upgrading). Test/introspection helper.
    pub fn held(&self, txn: TxnId, table: &str) -> Option<LockMode> {
        let state = lock(&self.state);
        let entry = state.get(table)?;
        if entry.exclusive == Some(txn) {
            Some(LockMode::Exclusive)
        } else if entry.shared.contains(&txn) {
            Some(LockMode::Shared)
        } else {
            None
        }
    }

    /// True when any transaction holds any lock on `table`.
    pub fn is_locked(&self, table: &str) -> bool {
        lock(&self.state).get(table).is_some_and(|e| !e.is_free())
    }

    /// Total number of locks currently held across all tables.
    pub fn held_count(&self) -> usize {
        lock(&self.state)
            .values()
            .map(|e| {
                e.shared.len() + usize::from(e.exclusive.is_some_and(|x| !e.shared.contains(&x)))
            })
            .sum()
    }

    fn note_wait_started(&self) {
        if let Some(m) = lock(&self.metrics).as_ref() {
            m.counter("recdb_lock_waits_total").inc();
        }
    }

    fn observe_wait(&self, waited: Duration) {
        if let Some(m) = lock(&self.metrics).as_ref() {
            m.histogram("recdb_lock_wait_micros", &LOCK_WAIT_BUCKETS)
                .observe(waited.as_micros() as u64);
        }
    }
}

impl fmt::Debug for LockTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockTable")
            .field("state", &*lock(&self.state))
            .finish()
    }
}

/// Lock a std mutex ignoring poison: lock-table state is a plain map that
/// stays consistent under panic (every mutation is a single-step insert
/// or remove), so a poisoned mutex carries no torn invariants.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;

    const NOW: Duration = Duration::ZERO;

    #[test]
    fn shared_locks_coexist_without_waiting() {
        let lt = LockTable::new();
        // Zero timeout: any wait at all would fail, so success proves
        // readers never block each other.
        lt.acquire(1, "ratings", LockMode::Shared, NOW, None)
            .expect("first reader");
        lt.acquire(2, "ratings", LockMode::Shared, NOW, None)
            .expect("second reader");
        lt.acquire(3, "ratings", LockMode::Shared, NOW, None)
            .expect("third reader");
        assert_eq!(lt.held(2, "ratings"), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_conflicts_surface_timeout_with_waited_duration() {
        let lt = LockTable::new();
        lt.acquire(1, "ratings", LockMode::Exclusive, NOW, None)
            .expect("writer");
        let err = lt
            .acquire(2, "ratings", LockMode::Exclusive, NOW, None)
            .expect_err("second writer must time out");
        match err {
            LockError::Timeout { table, .. } => assert_eq!(table, "ratings"),
            other => panic!("expected timeout, got {other:?}"),
        }
        // Shared against exclusive also conflicts.
        assert!(lt
            .acquire(2, "ratings", LockMode::Shared, NOW, None)
            .is_err());
        // A different table is independent.
        lt.acquire(2, "movies", LockMode::Exclusive, NOW, None)
            .expect("independent table");
    }

    #[test]
    fn locks_are_reentrant_and_exclusive_implies_shared() {
        let lt = LockTable::new();
        lt.acquire(1, "t", LockMode::Exclusive, NOW, None).unwrap();
        lt.acquire(1, "t", LockMode::Exclusive, NOW, None)
            .expect("re-entrant exclusive");
        lt.acquire(1, "t", LockMode::Shared, NOW, None)
            .expect("exclusive implies shared");
        assert_eq!(lt.held(1, "t"), Some(LockMode::Exclusive));
    }

    #[test]
    fn sole_shared_holder_upgrades_in_place() {
        let lt = LockTable::new();
        lt.acquire(1, "t", LockMode::Shared, NOW, None).unwrap();
        lt.acquire(1, "t", LockMode::Exclusive, NOW, None)
            .expect("sole reader upgrades");
        // With a second reader present the upgrade must fail instead.
        let lt = LockTable::new();
        lt.acquire(1, "t", LockMode::Shared, NOW, None).unwrap();
        lt.acquire(2, "t", LockMode::Shared, NOW, None).unwrap();
        assert!(lt.acquire(1, "t", LockMode::Exclusive, NOW, None).is_err());
    }

    #[test]
    fn release_all_frees_every_table_and_wakes_waiters() {
        let lt = Arc::new(LockTable::new());
        lt.acquire(1, "a", LockMode::Exclusive, NOW, None).unwrap();
        lt.acquire(1, "b", LockMode::Shared, NOW, None).unwrap();
        assert_eq!(lt.held_count(), 2);

        let lt2 = Arc::clone(&lt);
        let handle = thread::spawn(move || {
            lt2.acquire(2, "a", LockMode::Exclusive, Duration::from_secs(30), None)
        });
        // Give the waiter time to park, then release: it must be granted
        // long before its 30s budget runs out.
        thread::sleep(Duration::from_millis(20));
        lt.release_all(1);
        handle
            .join()
            .expect("no panic")
            .expect("granted after release");
        assert_eq!(lt.held(2, "a"), Some(LockMode::Exclusive));
        assert!(!lt.is_locked("b"));
    }

    #[test]
    fn cancelled_guard_abandons_the_wait() {
        let lt = Arc::new(LockTable::new());
        lt.acquire(1, "t", LockMode::Exclusive, NOW, None).unwrap();
        let guard = QueryGuard::unlimited();
        let cancel = guard.cancel_handle();
        let done = Arc::new(AtomicBool::new(false));
        let (lt2, done2) = (Arc::clone(&lt), Arc::clone(&done));
        let handle = thread::spawn(move || {
            let r = lt2.acquire(
                2,
                "t",
                LockMode::Shared,
                Duration::from_secs(60),
                Some(&guard),
            );
            done2.store(true, Ordering::SeqCst);
            r
        });
        thread::sleep(Duration::from_millis(20));
        assert!(!done.load(Ordering::SeqCst), "waiter must still be parked");
        cancel.cancel();
        let err = handle.join().expect("no panic").expect_err("cancelled");
        assert!(matches!(err, LockError::Cancelled(_)), "{err:?}");
        // The cancelled waiter left no lock behind.
        lt.release_all(1);
        assert!(!lt.is_locked("t"));
    }

    #[test]
    fn lock_acquire_fail_point_aborts_the_acquisition() {
        let _x = recdb_fault::exclusive();
        recdb_fault::clear();
        let lt = LockTable::new();
        recdb_fault::arm_error("txn::lock_acquire", 1);
        let err = lt
            .acquire(1, "t", LockMode::Shared, NOW, None)
            .expect_err("armed fail point");
        assert!(matches!(err, LockError::Fault(_)), "{err:?}");
        assert!(!lt.is_locked("t"), "failed acquire must grant nothing");
        // Self-disarming: the next acquire succeeds.
        lt.acquire(1, "t", LockMode::Shared, NOW, None)
            .expect("disarmed");
        recdb_fault::clear();
    }

    #[test]
    fn waits_are_counted_and_timed() {
        let registry = Arc::new(Registry::new());
        let lt = LockTable::new();
        lt.attach_metrics(Arc::clone(&registry));
        lt.acquire(1, "t", LockMode::Exclusive, NOW, None).unwrap();
        // Uncontended grants record nothing.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("recdb_lock_waits_total"), 0);
        let _ = lt.acquire(2, "t", LockMode::Exclusive, Duration::from_millis(5), None);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("recdb_lock_waits_total"), 1);
        let hist = snap
            .histogram("recdb_lock_wait_micros")
            .expect("wait histogram");
        assert_eq!(hist.count, 1);
        assert!(
            hist.sum >= 1_000,
            "waited at least the 5ms budget: {hist:?}"
        );
    }
}
