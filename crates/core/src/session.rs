//! Sessions and transaction state.
//!
//! A [`Session`] is one logical connection to a shared [`RecDb`]: it owns
//! the `BEGIN`/`COMMIT`/`ROLLBACK` state for that connection and routes
//! its statements through the engine's lock table. Statements executed
//! outside an explicit transaction auto-commit, but still run inside an
//! *implicit* transaction so that a failed (or panicked, or cancelled)
//! statement rolls its partial effects back and releases its locks.
//!
//! Undo is physical: before the first change a transaction makes to a
//! table, the engine captures a pre-image — the cheap "tail" form (page
//! count plus a copy of the last page) for append-only INSERTs, the full
//! page vector for DELETE/UPDATE — and rollback restores those bytes
//! exactly. Byte-identical restoration keeps record-id assignment
//! deterministic, which WAL replay relies on.

use crate::engine::{QueryResult, RecDb};
use crate::error::{EngineError, EngineResult};
use crate::recommender::Recommender;
use recdb_exec::ResultSet;
use recdb_guard::QueryGuard;
use recdb_storage::{Catalog, Page, Table};
use recdb_txn::TxnId;
use std::collections::{BTreeMap, BTreeSet};

/// One logical connection to a shared [`RecDb`].
///
/// Sessions are cheap; create one per thread of work. Each session has at
/// most one open transaction. Any statement failure inside an explicit
/// transaction — including a lock timeout, a cancelled guard, or a
/// contained panic — aborts the whole transaction (strict two-phase
/// locking keeps no partial statements), and the session is immediately
/// usable for a fresh `BEGIN`.
///
/// Dropping a session with an open transaction rolls it back.
pub struct Session<'db> {
    db: &'db RecDb,
    pub(crate) state: TxnState,
}

impl<'db> Session<'db> {
    pub(crate) fn new(db: &'db RecDb) -> Self {
        Session {
            db,
            state: TxnState::default(),
        }
    }

    /// The engine this session talks to.
    pub fn db(&self) -> &'db RecDb {
        self.db
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.state.txn.as_ref().is_some_and(|t| !t.implicit)
    }

    /// Execute one SQL statement in this session under the engine's
    /// configured resource limits.
    pub fn execute(&mut self, sql: &str) -> EngineResult<QueryResult> {
        let guard = self.db.config().governor.guard();
        self.execute_with_guard(sql, guard)
    }

    /// Execute one SQL statement under an explicit [`QueryGuard`].
    /// Cancelling the guard while the statement waits for a table lock
    /// abandons the wait, aborts the transaction, and releases every lock
    /// it held.
    pub fn execute_with_guard(
        &mut self,
        sql: &str,
        guard: QueryGuard,
    ) -> EngineResult<QueryResult> {
        let statement = recdb_sql::parse(sql)?;
        self.db.execute_statement(&mut self.state, statement, guard)
    }

    /// Execute a `;`-separated script, stopping at the first error.
    pub fn execute_script(&mut self, sql: &str) -> EngineResult<Vec<QueryResult>> {
        let statements = recdb_sql::parse_many(sql)?;
        statements
            .into_iter()
            .map(|s| {
                let guard = self.db.config().governor.guard();
                self.db.execute_statement(&mut self.state, s, guard)
            })
            .collect()
    }

    /// Execute a SELECT and return its rows (convenience).
    pub fn query(&mut self, sql: &str) -> EngineResult<ResultSet> {
        match self.execute(sql)? {
            QueryResult::Rows(r) => Ok(r),
            _ => Err(EngineError::Exec(recdb_exec::ExecError::Unsupported(
                "statement did not produce rows".into(),
            ))),
        }
    }

    /// Execute a SELECT under an explicit [`QueryGuard`] and return its
    /// rows.
    pub fn query_with_guard(&mut self, sql: &str, guard: QueryGuard) -> EngineResult<ResultSet> {
        match self.execute_with_guard(sql, guard)? {
            QueryResult::Rows(r) => Ok(r),
            _ => Err(EngineError::Exec(recdb_exec::ExecError::Unsupported(
                "statement did not produce rows".into(),
            ))),
        }
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        if let Some(txn) = self.state.txn.take() {
            self.db.abort_txn(txn, "abort");
        }
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("in_transaction", &self.in_transaction())
            .finish_non_exhaustive()
    }
}

/// Per-session transaction slot: `None` between statements outside an
/// explicit transaction.
#[derive(Debug, Default)]
pub(crate) struct TxnState {
    pub(crate) txn: Option<ActiveTxn>,
}

/// What kind of data pre-image a transaction already holds for a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DataSave {
    /// Append-only pre-image: undo truncates back to the saved extent.
    Tail,
    /// Full page pre-image: undo restores every page. Subsumes `Tail`.
    Full,
    /// The table was created by this transaction: undo drops it, so no
    /// data pre-image is ever needed.
    Created,
}

/// One live transaction: its lock-table identity, its undo log, and the
/// side effects deferred to commit.
#[derive(Debug)]
pub(crate) struct ActiveTxn {
    pub(crate) id: TxnId,
    /// Implicit transactions wrap a single auto-committed statement; they
    /// never enter the checkpoint txn-gate and end with their statement.
    pub(crate) implicit: bool,
    /// Physical undo log, applied in reverse on abort.
    pub(crate) undo: Vec<UndoOp>,
    /// Strongest data pre-image captured per table (keys lowercase).
    data_saved: BTreeMap<String, DataSave>,
    /// Whether this transaction has appended anything to the WAL (and so
    /// needs a commit/abort marker).
    pub(crate) wrote_wal: bool,
    /// Recommender item-statistics updates `(recommender, item)` from this
    /// transaction's writes, applied only if it commits.
    pub(crate) deferred_stats: Vec<(String, i64)>,
    /// Tables written by this transaction (lowercase), for the commit-time
    /// N% maintenance pass.
    pub(crate) touched: BTreeSet<String>,
}

impl ActiveTxn {
    pub(crate) fn new(id: TxnId, implicit: bool) -> Self {
        ActiveTxn {
            id,
            implicit,
            undo: Vec::new(),
            data_saved: BTreeMap::new(),
            wrote_wal: false,
            deferred_stats: Vec::new(),
            touched: BTreeSet::new(),
        }
    }

    pub(crate) fn push_undo(&mut self, op: UndoOp) {
        self.undo.push(op);
    }

    /// Record that this transaction created `table` (lowercase): its undo
    /// is a drop, and inserts into it need no data pre-image.
    pub(crate) fn note_created_table(&mut self, table: &str) {
        self.undo.push(UndoOp::CreatedTable {
            name: table.to_owned(),
        });
        self.data_saved.insert(table.to_owned(), DataSave::Created);
    }

    /// Record that this transaction dropped `table`: a later re-CREATE in
    /// the same transaction starts its pre-image tracking fresh.
    pub(crate) fn note_dropped_table(&mut self, table: Table, recommenders: Vec<Recommender>) {
        self.data_saved.remove(table.name());
        self.undo.push(UndoOp::DroppedTable {
            table: Box::new(table),
            recommenders,
        });
    }

    /// Capture the append-only pre-image of `table` (lowercase) unless a
    /// pre-image already covers it.
    pub(crate) fn save_tail(&mut self, catalog: &Catalog, table: &str) -> EngineResult<()> {
        if self.data_saved.contains_key(table) {
            return Ok(());
        }
        let (page_count, last_page) = catalog.table(table)?.snapshot_tail()?;
        self.undo.push(UndoOp::TableTail {
            name: table.to_owned(),
            page_count,
            last_page,
        });
        self.data_saved.insert(table.to_owned(), DataSave::Tail);
        Ok(())
    }

    /// Capture the full page pre-image of `table` (lowercase) unless a
    /// full pre-image (or a created-by-this-txn note) already covers it.
    /// An existing `Tail` entry is escalated: the full snapshot is pushed
    /// *after* it, and reverse-order undo applies the full restore first,
    /// then the tail truncation — landing exactly on the transaction's
    /// start state.
    pub(crate) fn save_pages(&mut self, catalog: &Catalog, table: &str) -> EngineResult<()> {
        if matches!(
            self.data_saved.get(table),
            Some(DataSave::Full | DataSave::Created)
        ) {
            return Ok(());
        }
        let pages = catalog.table(table)?.snapshot_pages()?;
        self.undo.push(UndoOp::TablePages {
            name: table.to_owned(),
            pages,
        });
        self.data_saved.insert(table.to_owned(), DataSave::Full);
        Ok(())
    }

    /// Queue recommender side effects of a write to `table` (lowercase)
    /// for commit time.
    pub(crate) fn defer_stats(&mut self, table: String, items: Vec<(String, i64)>) {
        self.deferred_stats.extend(items);
        self.touched.insert(table);
    }
}

/// One physical undo action. Applied in reverse push order on abort.
pub(crate) enum UndoOp {
    /// Truncate a table's heap back to an append-only snapshot point.
    TableTail {
        name: String,
        page_count: usize,
        last_page: Option<Page>,
    },
    /// Restore a table's full page pre-image.
    TablePages { name: String, pages: Vec<Page> },
    /// The transaction created this table: drop it.
    CreatedTable { name: String },
    /// The transaction dropped this table (and its recommenders):
    /// reinstall both.
    DroppedTable {
        table: Box<Table>,
        recommenders: Vec<Recommender>,
    },
    /// The transaction created this index: drop it.
    CreatedIndex { table: String, index: String },
    /// The transaction dropped this index: re-create it (the rebuild
    /// backfills from the heap, which undo has already restored).
    DroppedIndex {
        table: String,
        index: String,
        columns: Vec<String>,
    },
    /// The transaction created this recommender: remove it.
    CreatedRecommender { name: String },
    /// The transaction dropped this recommender: reinstall it.
    DroppedRecommender { recommender: Box<Recommender> },
}

impl std::fmt::Debug for UndoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UndoOp::TableTail {
                name, page_count, ..
            } => write!(f, "TableTail({name}, {page_count} pages)"),
            UndoOp::TablePages { name, pages } => {
                write!(f, "TablePages({name}, {} pages)", pages.len())
            }
            UndoOp::CreatedTable { name } => write!(f, "CreatedTable({name})"),
            UndoOp::DroppedTable { table, .. } => write!(f, "DroppedTable({})", table.name()),
            UndoOp::CreatedIndex { table, index } => write!(f, "CreatedIndex({table}.{index})"),
            UndoOp::DroppedIndex { table, index, .. } => {
                write!(f, "DroppedIndex({table}.{index})")
            }
            UndoOp::CreatedRecommender { name } => write!(f, "CreatedRecommender({name})"),
            UndoOp::DroppedRecommender { recommender } => {
                write!(f, "DroppedRecommender({})", recommender.name())
            }
        }
    }
}
