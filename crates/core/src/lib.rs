//! # recdb-core
//!
//! The RecDB-rs engine (the paper's §III–§IV system layer):
//!
//! * [`engine::RecDb`] — the façade: a SQL entry point over the storage
//!   catalog, the recommender catalog, and the query executor,
//! * [`recommender::Recommender`] — one created recommender: trained
//!   [`recdb_algo::RecModel`], pending-update counter with the N%
//!   maintenance rule (§III-A), and the materialized
//!   [`recdb_exec::RecScoreIndex`] (§IV-C),
//! * [`cache::CacheManager`] — the adaptive materialization manager of
//!   Algorithm 4: per-user demand rates, per-item consumption rates,
//!   hotness ratios, admission/eviction lists (§IV-D).
//!
//! ```
//! use recdb_core::RecDb;
//!
//! let db = RecDb::new();
//! db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)").unwrap();
//! db.execute("INSERT INTO ratings VALUES (1, 1, 5.0), (2, 1, 4.0), (2, 2, 3.0)").unwrap();
//! db.execute("CREATE RECOMMENDER Rec ON ratings USERS FROM uid ITEMS FROM iid \
//!             RATINGS FROM ratingval USING ItemCosCF").unwrap();
//! let out = db.execute("SELECT R.iid, R.ratingval FROM ratings AS R \
//!                       RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
//!                       WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10").unwrap();
//! assert!(out.rows().map(|r| r.len()).unwrap_or(0) >= 1);
//! ```

pub mod cache;
pub mod engine;
pub mod error;
pub mod recommender;
pub mod session;

pub use cache::{CacheDecision, CacheManager, UsageStats};
pub use engine::{
    CatalogMut, CatalogRef, GovernorConfig, QueryResult, RecDb, RecDbConfig, RecommenderMut,
    RecommenderRef,
};
pub use error::{EngineError, EngineResult};
pub use recommender::{Recommender, StagedRebuild};
pub use session::Session;
// Re-export the guard types so engine callers can build per-call limits
// and cancel handles without depending on the guard crate directly.
pub use recdb_guard::{GuardError, QueryGuard};
