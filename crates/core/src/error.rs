//! Engine-level errors.

use recdb_exec::ExecError;
use recdb_guard::GuardError;
use recdb_sql::ParseError;
use recdb_storage::StorageError;
use recdb_wal::WalError;
use std::fmt;
use std::time::Duration;

/// Result alias for the engine.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors surfaced by [`crate::engine::RecDb`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// SQL could not be parsed.
    Parse(ParseError),
    /// Planning or execution failed.
    Exec(ExecError),
    /// A storage operation failed.
    Storage(StorageError),
    /// A durable file failed its checksum during recovery. `table` names
    /// the affected relation (or `"catalog"` for the manifest itself); the
    /// wrapped [`StorageError::Corruption`] pinpoints the file and page.
    Corruption {
        /// The table whose data is damaged.
        table: String,
        /// The underlying checksum failure.
        source: StorageError,
    },
    /// A write-ahead-log operation failed.
    Wal(WalError),
    /// A recommender with this name already exists.
    RecommenderExists(String),
    /// No recommender with this name exists.
    RecommenderNotFound(String),
    /// The CREATE TABLE type name is not recognized.
    UnknownType(String),
    /// INSERT rows must be constant expressions.
    NonConstantInsert(String),
    /// The statement was cancelled (explicitly, or by its deadline).
    Cancelled {
        /// Wall-clock time the statement had run when it was stopped.
        elapsed: Duration,
    },
    /// The statement exceeded a row or memory budget.
    ResourceExhausted {
        /// Which budget was exhausted (`"rows"` or `"memory"`).
        resource: &'static str,
        /// The configured budget.
        budget: u64,
        /// Usage at the moment the budget tripped.
        used: u64,
    },
    /// A panic was caught at the engine boundary; the statement failed
    /// but the engine itself keeps serving.
    Internal(String),
    /// A table lock could not be granted before the configured
    /// [`crate::engine::RecDbConfig::lock_timeout`] elapsed. The enclosing
    /// transaction has been rolled back; retry it from BEGIN.
    LockTimeout {
        /// The table whose lock was contended.
        table: String,
        /// How long the statement waited before giving up.
        waited: Duration,
    },
    /// `BEGIN` was issued while this session already has an open
    /// transaction (the engine does not nest transactions).
    TransactionActive,
    /// `COMMIT` or `ROLLBACK` was issued with no open transaction.
    NoActiveTransaction,
    /// A checkpoint gave up waiting for open explicit transactions to
    /// finish. Committed data is unaffected; retry once they complete.
    CheckpointContended {
        /// Open explicit transactions when the checkpoint gave up.
        active: usize,
        /// How long the checkpoint waited for them to drain.
        waited: Duration,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "parse error: {e}"),
            EngineError::Exec(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Corruption { table, source } => {
                write!(f, "corruption detected in table `{table}`: {source}")
            }
            EngineError::Wal(e) => write!(f, "write-ahead log failure: {e}"),
            EngineError::RecommenderExists(name) => {
                write!(f, "recommender `{name}` already exists")
            }
            EngineError::RecommenderNotFound(name) => {
                write!(f, "recommender `{name}` does not exist")
            }
            EngineError::UnknownType(name) => write!(
                f,
                "unknown column type `{name}` (expected INT, FLOAT, TEXT, BOOL, POINT, or RECT)"
            ),
            EngineError::NonConstantInsert(msg) => {
                write!(f, "INSERT values must be constants: {msg}")
            }
            EngineError::Cancelled { elapsed } => {
                write!(f, "statement cancelled after {:.3}s", elapsed.as_secs_f64())
            }
            EngineError::ResourceExhausted {
                resource,
                budget,
                used,
            } => write!(
                f,
                "statement exceeded its {resource} budget: used {used} of {budget}"
            ),
            EngineError::Internal(msg) => write!(f, "internal error (panic contained): {msg}"),
            EngineError::LockTimeout { table, waited } => write!(
                f,
                "lock timeout on table `{table}` after {:.3}s",
                waited.as_secs_f64()
            ),
            EngineError::TransactionActive => {
                write!(f, "a transaction is already in progress")
            }
            EngineError::NoActiveTransaction => {
                write!(f, "no transaction is in progress")
            }
            EngineError::CheckpointContended { active, waited } => write!(
                f,
                "checkpoint timed out after {:.3}s waiting for {active} open transaction(s)",
                waited.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Exec(e) => Some(e),
            EngineError::Storage(e) => Some(e),
            EngineError::Corruption { source, .. } => Some(source),
            EngineError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Governor verdicts flatten into first-class engine errors so callers can
/// match on `Cancelled`/`ResourceExhausted` without digging through the
/// executor layer.
impl From<GuardError> for EngineError {
    fn from(e: GuardError) -> Self {
        match e {
            GuardError::Cancelled { elapsed } => EngineError::Cancelled { elapsed },
            GuardError::ResourceExhausted {
                resource,
                budget,
                used,
            } => EngineError::ResourceExhausted {
                resource,
                budget,
                used,
            },
        }
    }
}

impl From<WalError> for EngineError {
    fn from(e: WalError) -> Self {
        EngineError::Wal(e)
    }
}

impl From<recdb_fault::FaultError> for EngineError {
    fn from(e: recdb_fault::FaultError) -> Self {
        EngineError::Exec(ExecError::FaultInjected(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_round_trip() {
        // Every wrapping variant must expose its cause via `source()` and
        // render it in `Display`, so the chain can be walked end to end.
        let exec_err = ExecError::Storage(StorageError::TableNotFound("t".into()));
        let e = EngineError::Exec(exec_err);
        let msg = e.to_string();
        let src = std::error::Error::source(&e).expect("Exec wraps a cause");
        assert!(msg.contains(&src.to_string()), "{msg} vs {src}");
        let inner = src.source().expect("ExecError::Storage chains further");
        assert!(inner.to_string().contains("`t`"));

        let e: EngineError = GuardError::Cancelled {
            elapsed: Duration::from_millis(1500),
        }
        .into();
        assert!(matches!(e, EngineError::Cancelled { .. }));
        assert!(e.to_string().contains("1.500"));

        let e: EngineError = GuardError::ResourceExhausted {
            resource: "rows",
            budget: 10,
            used: 11,
        }
        .into();
        assert!(matches!(
            e,
            EngineError::ResourceExhausted {
                resource: "rows",
                budget: 10,
                used: 11
            }
        ));
        let msg = e.to_string();
        assert!(msg.contains("rows") && msg.contains("10") && msg.contains("11"));

        let e = EngineError::Internal("operator panicked".into());
        assert!(e.to_string().contains("panic"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn corruption_display_and_source_chain() {
        // The operator-facing story: the engine error names the table, its
        // source names the exact file and page, and the chain is walkable.
        let source = StorageError::Corruption {
            file: "ratings.7.tbl".into(),
            page: 3,
            expected: 0xDEAD_BEEF,
            found: 0x0BAD_F00D,
        };
        let e = EngineError::Corruption {
            table: "ratings".into(),
            source: source.clone(),
        };
        let msg = e.to_string();
        assert!(msg.contains("`ratings`"), "{msg}");
        assert!(msg.contains("ratings.7.tbl"), "{msg}");
        assert!(msg.contains("page 3"), "{msg}");
        let chained = std::error::Error::source(&e).expect("Corruption chains its cause");
        assert_eq!(chained.to_string(), source.to_string());
        assert!(chained.source().is_none(), "StorageError is the root");

        let wal = EngineError::Wal(WalError::Corrupt {
            offset: 64,
            reason: "bad checksum".into(),
        });
        assert!(wal.to_string().contains("write-ahead log"));
        assert!(std::error::Error::source(&wal)
            .expect("Wal chains its cause")
            .to_string()
            .contains("byte 64"));
    }

    #[test]
    fn transaction_errors_display() {
        let e = EngineError::LockTimeout {
            table: "ratings".into(),
            waited: Duration::from_millis(250),
        };
        let msg = e.to_string();
        assert!(msg.contains("`ratings`") && msg.contains("0.250"), "{msg}");
        assert!(EngineError::TransactionActive
            .to_string()
            .contains("already in progress"));
        assert!(EngineError::NoActiveTransaction
            .to_string()
            .contains("no transaction"));
        let e = EngineError::CheckpointContended {
            active: 2,
            waited: Duration::from_secs(1),
        };
        let msg = e.to_string();
        assert!(msg.contains('2') && msg.contains("checkpoint"), "{msg}");
    }

    #[test]
    fn conversions_and_display() {
        let e: EngineError = StorageError::TableNotFound("t".into()).into();
        assert!(e.to_string().contains("`t`"));
        let e = EngineError::UnknownType("BLOB".into());
        assert!(e.to_string().contains("BLOB"));
        assert!(e.to_string().contains("POINT"));
        let e = EngineError::RecommenderExists("GeneralRec".into());
        assert!(e.to_string().contains("GeneralRec"));
    }
}
