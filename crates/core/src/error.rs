//! Engine-level errors.

use recdb_exec::ExecError;
use recdb_sql::ParseError;
use recdb_storage::StorageError;
use std::fmt;

/// Result alias for the engine.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors surfaced by [`crate::engine::RecDb`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// SQL could not be parsed.
    Parse(ParseError),
    /// Planning or execution failed.
    Exec(ExecError),
    /// A storage operation failed.
    Storage(StorageError),
    /// A recommender with this name already exists.
    RecommenderExists(String),
    /// No recommender with this name exists.
    RecommenderNotFound(String),
    /// The CREATE TABLE type name is not recognized.
    UnknownType(String),
    /// INSERT rows must be constant expressions.
    NonConstantInsert(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "parse error: {e}"),
            EngineError::Exec(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::RecommenderExists(name) => {
                write!(f, "recommender `{name}` already exists")
            }
            EngineError::RecommenderNotFound(name) => {
                write!(f, "recommender `{name}` does not exist")
            }
            EngineError::UnknownType(name) => write!(
                f,
                "unknown column type `{name}` (expected INT, FLOAT, TEXT, BOOL, POINT, or RECT)"
            ),
            EngineError::NonConstantInsert(msg) => {
                write!(f, "INSERT values must be constants: {msg}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = StorageError::TableNotFound("t".into()).into();
        assert!(e.to_string().contains("`t`"));
        let e = EngineError::UnknownType("BLOB".into());
        assert!(e.to_string().contains("BLOB"));
        assert!(e.to_string().contains("POINT"));
        let e = EngineError::RecommenderExists("GeneralRec".into());
        assert!(e.to_string().contains("GeneralRec"));
    }
}
