//! The RecDB engine façade: parse → plan → optimize → execute, plus the
//! recommender lifecycle (§III).

use crate::error::{EngineError, EngineResult};
use crate::recommender::Recommender;
use recdb_algo::model::TrainConfig;
use recdb_algo::Algorithm;
use recdb_exec::expr::{bind, literal_value};
use recdb_exec::{
    build_logical, execute_plan, execute_plan_profiled, optimize, ExecContext, LogicalPlan,
    RecScoreIndex, RecommenderProvider, ResultSet,
};
use recdb_guard::QueryGuard;
use recdb_obs::{Clock, MetricsSnapshot, Registry, SystemClock};
use recdb_sql::{parse, parse_many, Expr, SelectStatement, Statement};
use recdb_storage::{
    codec, read_snapshot, write_snapshot, Catalog, DataType, RecoveryMode, Schema, StorageError,
    Tuple,
};
use recdb_wal::{Wal, WalRecord};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// WAL file name within a data directory.
const WAL_FILE: &str = "wal.log";

/// Bucket bounds (microseconds) for the per-algorithm model-build
/// histogram: 100µs to 10s, one decade per bucket.
const MODEL_BUILD_BUCKETS: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Default resource limits applied to every statement (and model build)
/// the engine runs. `None` everywhere means ungoverned — the default.
/// Per-call overrides go through [`RecDb::execute_with_guard`] /
/// [`RecDb::query_with_guard`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GovernorConfig {
    /// Wall-clock deadline per statement.
    pub deadline: Option<Duration>,
    /// Maximum rows an operator tree may process per statement.
    pub row_budget: Option<u64>,
    /// Maximum bytes blocking operators (sort buffers, join build sides,
    /// aggregate groups) may retain per statement.
    pub mem_budget: Option<u64>,
}

impl GovernorConfig {
    /// Build a fresh guard enforcing these limits, starting now.
    pub fn guard(&self) -> QueryGuard {
        if *self == GovernorConfig::default() {
            return QueryGuard::unlimited();
        }
        QueryGuard::with_limits(self.deadline, self.row_budget, self.mem_budget)
    }
}

/// Engine-wide tunables.
#[derive(Debug, Clone)]
pub struct RecDbConfig {
    /// The N% maintenance threshold (§III-A): rebuild a model once pending
    /// updates reach this percentage of the ratings it was built from.
    pub maintenance_threshold_pct: f64,
    /// The Algorithm 4 `HOTNESS-THRESHOLD` in `[0, 1]`.
    pub hotness_threshold: f64,
    /// Model-training knobs shared by all recommenders.
    pub train: TrainConfig,
    /// Whether inserts trigger the N% rule automatically (the paper's
    /// behaviour). Disable for benches that want explicit control.
    pub auto_maintenance: bool,
    /// Worker threads for score-index materialization (`0` = all cores).
    /// Materialization is a pure fan-out, so the index is identical for
    /// every setting. Model-*training* threads live in
    /// [`RecDbConfig::train`] (`train.neighborhood.threads`,
    /// `train.svd.threads`).
    pub build_threads: usize,
    /// Default per-statement resource limits (deadline, row budget,
    /// memory budget). Ungoverned by default.
    pub governor: GovernorConfig,
    /// Directory for durable storage (WAL + checkpointed page files).
    /// `None` (the default) keeps the engine fully in-memory. Durable
    /// engines are constructed with [`RecDb::open`] /
    /// [`RecDb::open_with_config`], which run crash recovery.
    pub data_dir: Option<PathBuf>,
    /// How recovery reacts to checksum failures in durable files:
    /// abort-and-name-the-page ([`RecoveryMode::Strict`], the default) or
    /// bring up everything that still verifies
    /// ([`RecoveryMode::SalvageToLastGood`]).
    pub recovery: RecoveryMode,
    /// Clock used by `EXPLAIN ANALYZE` profiling. `None` (the default)
    /// uses the wall clock ([`SystemClock`]); tests inject a
    /// [`recdb_obs::ManualClock`] for byte-stable timings.
    pub profile_clock: Option<Arc<dyn Clock>>,
}

impl Default for RecDbConfig {
    fn default() -> Self {
        RecDbConfig {
            maintenance_threshold_pct: 10.0,
            hotness_threshold: 0.5,
            train: TrainConfig::default(),
            auto_maintenance: true,
            build_threads: 0,
            governor: GovernorConfig::default(),
            data_dir: None,
            recovery: RecoveryMode::Strict,
            profile_clock: None,
        }
    }
}

/// The outcome of one executed statement.
#[derive(Debug)]
pub enum QueryResult {
    /// `CREATE TABLE` succeeded.
    TableCreated(String),
    /// `DROP TABLE` succeeded.
    TableDropped(String),
    /// `INSERT` stored this many rows.
    Inserted(usize),
    /// `CREATE RECOMMENDER` trained a model.
    RecommenderCreated {
        /// Recommender name.
        name: String,
        /// Model build time (the Table II metric).
        build_time: Duration,
    },
    /// `DROP RECOMMENDER` succeeded.
    RecommenderDropped(String),
    /// `CREATE INDEX` succeeded.
    IndexCreated(String),
    /// `DROP INDEX` succeeded.
    IndexDropped(String),
    /// `DELETE` removed this many rows.
    Deleted(usize),
    /// `UPDATE` rewrote this many rows.
    Updated(usize),
    /// A `SELECT` produced rows.
    Rows(ResultSet),
}

impl QueryResult {
    /// The result set, for `SELECT` outcomes.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            QueryResult::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// Consume into a result set, for `SELECT` outcomes.
    pub fn into_rows(self) -> Option<ResultSet> {
        match self {
            QueryResult::Rows(r) => Some(r),
            _ => None,
        }
    }
}

/// Durable-mode state: the data directory and its open write-ahead log.
/// Present only on engines built via [`RecDb::open`] /
/// [`RecDb::open_with_config`].
///
/// There is deliberately no `Drop` impl that flushes state: dropping a
/// durable engine without calling [`RecDb::checkpoint`] is exactly a crash,
/// and recovery must cope (the crash-matrix tests rely on this).
#[derive(Debug)]
struct Durability {
    dir: PathBuf,
    wal: Wal,
}

/// A recommender's definition as persisted in the checkpoint metadata
/// blob and in `CreateRecommender` WAL records. Models are derived state
/// and are never logged; they are rebuilt from these definitions plus the
/// recovered ratings rows.
#[derive(Debug, Clone)]
struct RecommenderDef {
    name: String,
    table: String,
    users: String,
    items: String,
    ratings: String,
    algorithm: String,
}

/// The engine: catalog + recommenders + executor behind a SQL interface.
#[derive(Debug)]
pub struct RecDb {
    catalog: Catalog,
    recommenders: Vec<Recommender>,
    config: RecDbConfig,
    /// Logical clock: one tick per executed statement. Drives the usage
    /// histograms deterministically.
    clock: u64,
    durability: Option<Durability>,
    /// Engine-wide metric registry. Shared (`Arc`) so the WAL and the
    /// executor record into the same cells.
    metrics: Arc<Registry>,
    /// Time source for `EXPLAIN ANALYZE` ([`RecDbConfig::profile_clock`]
    /// or the wall clock).
    wall: Arc<dyn Clock>,
}

impl Default for RecDb {
    fn default() -> Self {
        RecDb::new()
    }
}

impl RecDb {
    /// An empty engine with default configuration.
    pub fn new() -> Self {
        RecDb::with_config(RecDbConfig::default())
    }

    /// An empty in-memory engine with explicit configuration. For a
    /// durable engine (`config.data_dir` set) use
    /// [`RecDb::open_with_config`], which can fail and therefore returns a
    /// `Result`.
    pub fn with_config(config: RecDbConfig) -> Self {
        assert!(
            config.data_dir.is_none(),
            "RecDbConfig::data_dir requires RecDb::open_with_config (recovery can fail)"
        );
        let wall = profile_clock_or_wall(&config);
        RecDb {
            catalog: Catalog::new(),
            recommenders: Vec::new(),
            config,
            clock: 0,
            durability: None,
            metrics: Arc::new(Registry::new()),
            wall,
        }
    }

    /// Open (or create) a durable engine rooted at `dir` with default
    /// configuration, running crash recovery: restore the latest
    /// checkpoint, verify page checksums, replay the WAL tail, and rebuild
    /// recommender models from the recovered ratings.
    pub fn open(dir: impl Into<PathBuf>) -> EngineResult<Self> {
        RecDb::open_with_config(RecDbConfig {
            data_dir: Some(dir.into()),
            ..RecDbConfig::default()
        })
    }

    /// Open an engine with explicit configuration. With
    /// `config.data_dir = None` this is just [`RecDb::with_config`];
    /// otherwise it recovers durable state from the directory:
    ///
    /// 1. Restore the newest checkpoint (`catalog.meta` + page files),
    ///    verifying every page checksum under `config.recovery`.
    /// 2. Replay WAL records with LSN beyond the checkpoint through the
    ///    same catalog paths the live engine uses, so replay reproduces
    ///    identical record ids.
    /// 3. Rebuild recommender models from their recovered definitions —
    ///    models are derived state and are never logged.
    pub fn open_with_config(config: RecDbConfig) -> EngineResult<Self> {
        let Some(dir) = config.data_dir.clone() else {
            return Ok(RecDb::with_config(config));
        };
        std::fs::create_dir_all(&dir)
            .map_err(|e| EngineError::Storage(StorageError::io("create data dir", e)))?;
        let snapshot = read_snapshot(&dir, config.recovery).map_err(corruption_to_engine)?;
        let (catalog, meta, checkpoint_lsn) = match snapshot {
            Some(s) => (s.catalog, s.meta, s.lsn),
            None => (Catalog::new(), Vec::new(), 0),
        };
        let mut defs = decode_recommender_meta(&meta)?;
        let opened = Wal::open(&dir.join(WAL_FILE), checkpoint_lsn)?;
        let salvage = matches!(config.recovery, RecoveryMode::SalvageToLastGood);
        let wall = profile_clock_or_wall(&config);
        let mut db = RecDb {
            catalog,
            recommenders: Vec::new(),
            config,
            clock: 0,
            durability: None,
            metrics: Arc::new(Registry::new()),
            wall,
        };
        if let Some(bytes) = opened.truncated {
            db.metrics
                .counter("recdb_recovery_truncated_bytes_total")
                .add(bytes);
        }
        let mut replayed = 0u64;
        for (lsn, record) in opened.records {
            if lsn <= checkpoint_lsn {
                // Already reflected in the restored pages.
                continue;
            }
            db.clock += 1;
            replayed += 1;
            match db.replay_record(record, &mut defs) {
                Ok(()) => {}
                // Salvaged (blanked) pages make previously valid record
                // ids dangle; in salvage mode those redo ops are skipped.
                Err(EngineError::Storage(StorageError::InvalidRid { .. })) if salvage => {}
                Err(e) => return Err(e),
            }
        }
        db.metrics
            .counter("recdb_recovery_replayed_records_total")
            .add(replayed);
        for def in defs {
            let algorithm: Algorithm = def
                .algorithm
                .parse()
                .map_err(|_| recdb_exec::ExecError::UnknownAlgorithm(def.algorithm.clone()))?;
            let rec = Recommender::create(
                &def.name,
                &db.catalog,
                &def.table,
                &def.users,
                &def.items,
                &def.ratings,
                algorithm,
                db.config.train,
                db.config.hotness_threshold,
                db.clock,
            )?;
            db.recommenders.push(rec);
        }
        let mut wal = opened.wal;
        wal.attach_metrics(Arc::clone(&db.metrics));
        db.durability = Some(Durability { dir, wal });
        Ok(db)
    }

    /// Whether this engine persists to a data directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The data directory, for durable engines.
    pub fn data_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Snapshot all heap pages and catalog/recommender metadata to the
    /// data directory, then prune the WAL records the snapshot covers.
    /// A no-op for in-memory engines.
    pub fn checkpoint(&mut self) -> EngineResult<()> {
        let RecDb {
            catalog,
            recommenders,
            durability,
            ..
        } = self;
        let Some(dur) = durability else {
            return Ok(());
        };
        let meta = encode_recommender_meta(recommenders);
        let lsn = dur.wal.last_lsn();
        write_snapshot(&dur.dir, catalog, &meta, lsn)?;
        dur.wal.prune(lsn)?;
        Ok(())
    }

    /// Append `record` to the WAL and fsync. Called *after* the in-memory
    /// mutation succeeds; the statement only reports success once the
    /// record is durable. No-op for in-memory engines.
    fn log_and_commit(&mut self, record: WalRecord) -> EngineResult<()> {
        let Some(dur) = &mut self.durability else {
            return Ok(());
        };
        dur.wal.append(&record)?;
        dur.wal.commit()?;
        Ok(())
    }

    /// Redo one WAL record during recovery. Uses the same catalog entry
    /// points as the live engine (so heap appends land on the same record
    /// ids), but skips logging, recommender statistics, and maintenance —
    /// models are rebuilt once, after the whole tail is replayed.
    fn replay_record(
        &mut self,
        record: WalRecord,
        defs: &mut Vec<RecommenderDef>,
    ) -> EngineResult<()> {
        match record {
            WalRecord::CreateTable { name, schema } => {
                self.catalog.create_table(&name, schema)?;
            }
            WalRecord::DropTable { name } => {
                self.catalog.drop_table(&name)?;
                defs.retain(|d| !d.table.eq_ignore_ascii_case(&name));
            }
            WalRecord::Insert { table, tuples } => {
                let t = self.catalog.table_mut(&table)?;
                for tuple in tuples {
                    t.insert(tuple)?;
                }
            }
            WalRecord::Delete { table, rids } => {
                let t = self.catalog.table_mut(&table)?;
                for rid in rids {
                    t.delete(rid)?;
                }
            }
            WalRecord::Update { table, changes } => {
                let t = self.catalog.table_mut(&table)?;
                for (rid, tuple) in changes {
                    t.delete(rid)?;
                    t.insert(tuple)?;
                }
            }
            WalRecord::CreateIndex {
                table,
                index,
                columns,
            } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.catalog
                    .table_mut(&table)?
                    .create_index(&index, &cols)?;
            }
            WalRecord::DropIndex { table, index } => {
                self.catalog.table_mut(&table)?.drop_index(&index)?;
            }
            WalRecord::CreateRecommender {
                name,
                table,
                users,
                items,
                ratings,
                algorithm,
            } => {
                defs.retain(|d| !d.name.eq_ignore_ascii_case(&name));
                defs.push(RecommenderDef {
                    name,
                    table,
                    users,
                    items,
                    ratings,
                    algorithm,
                });
            }
            WalRecord::DropRecommender { name } => {
                defs.retain(|d| !d.name.eq_ignore_ascii_case(&name));
            }
        }
        Ok(())
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (dataset loaders).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Engine configuration.
    pub fn config(&self) -> &RecDbConfig {
        &self.config
    }

    /// Current logical clock tick.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The engine-wide metric registry (see `docs/OBSERVABILITY.md` for
    /// the catalog). Shareable: clone the `Arc` to scrape from another
    /// thread.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Point-in-time copy of every engine metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Render all engine metrics in the Prometheus text exposition format.
    pub fn render_metrics(&self) -> String {
        self.metrics.render()
    }

    /// Look up a recommender by name.
    pub fn recommender(&self, name: &str) -> Option<&Recommender> {
        self.recommenders
            .iter()
            .find(|r| r.name().eq_ignore_ascii_case(name))
    }

    /// Look up a recommender mutably by name.
    pub fn recommender_mut(&mut self, name: &str) -> Option<&mut Recommender> {
        self.recommenders
            .iter_mut()
            .find(|r| r.name().eq_ignore_ascii_case(name))
    }

    /// Names of all recommenders.
    pub fn recommender_names(&self) -> Vec<&str> {
        self.recommenders.iter().map(|r| r.name()).collect()
    }

    /// Execute one SQL statement under the engine's configured resource
    /// limits ([`RecDbConfig::governor`]).
    pub fn execute(&mut self, sql: &str) -> EngineResult<QueryResult> {
        let guard = self.config.governor.guard();
        self.execute_with_guard(sql, guard)
    }

    /// Execute one SQL statement under an explicit [`QueryGuard`],
    /// overriding the configured defaults. Keep a
    /// [`QueryGuard::cancel_handle`] to cancel from another thread.
    ///
    /// The statement runs inside a panic boundary: a panicking operator or
    /// model build surfaces as [`EngineError::Internal`] instead of
    /// unwinding through the caller, and the engine keeps serving.
    pub fn execute_with_guard(
        &mut self,
        sql: &str,
        guard: QueryGuard,
    ) -> EngineResult<QueryResult> {
        let statement = parse(sql)?;
        self.clock += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| self.apply(statement, &guard)));
        match outcome {
            Ok(result) => result.map_err(|e| flatten_guard_error_counted(&self.metrics, e)),
            Err(payload) => Err(EngineError::Internal(panic_message(payload.as_ref()))),
        }
    }

    /// Execute a `;`-separated script.
    pub fn execute_script(&mut self, sql: &str) -> EngineResult<Vec<QueryResult>> {
        let statements = parse_many(sql)?;
        statements
            .into_iter()
            .map(|s| {
                let guard = self.config.governor.guard();
                self.clock += 1;
                let outcome = catch_unwind(AssertUnwindSafe(|| self.apply(s, &guard)));
                match outcome {
                    Ok(result) => result.map_err(|e| flatten_guard_error_counted(&self.metrics, e)),
                    Err(payload) => Err(EngineError::Internal(panic_message(payload.as_ref()))),
                }
            })
            .collect()
    }

    /// Execute a SELECT and return its rows (convenience).
    pub fn query(&mut self, sql: &str) -> EngineResult<ResultSet> {
        match self.execute(sql)? {
            QueryResult::Rows(r) => Ok(r),
            _ => Err(EngineError::Exec(recdb_exec::ExecError::Unsupported(
                "statement did not produce rows".into(),
            ))),
        }
    }

    /// Execute a SELECT under an explicit [`QueryGuard`] and return its
    /// rows.
    pub fn query_with_guard(&mut self, sql: &str, guard: QueryGuard) -> EngineResult<ResultSet> {
        match self.execute_with_guard(sql, guard)? {
            QueryResult::Rows(r) => Ok(r),
            _ => Err(EngineError::Exec(recdb_exec::ExecError::Unsupported(
                "statement did not produce rows".into(),
            ))),
        }
    }

    /// Render the optimized logical plan of a SELECT (EXPLAIN).
    pub fn explain(&self, sql: &str) -> EngineResult<String> {
        let Statement::Select(select) = parse(sql)? else {
            return Err(EngineError::Exec(recdb_exec::ExecError::Unsupported(
                "EXPLAIN is only available for SELECT".into(),
            )));
        };
        let plan = optimize(build_logical(&select, &self.catalog)?);
        Ok(plan.explain())
    }

    fn apply(&mut self, statement: Statement, guard: &QueryGuard) -> EngineResult<QueryResult> {
        self.metrics
            .counter_with(
                "recdb_statements_total",
                &[("kind", statement_kind(&statement))],
            )
            .inc();
        match statement {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::from_pairs(
                    &columns
                        .iter()
                        .map(|c| Ok((c.name.as_str(), map_type(&c.type_name)?)))
                        .collect::<EngineResult<Vec<_>>>()?,
                );
                self.catalog.create_table(&name, schema.clone())?;
                self.log_and_commit(WalRecord::CreateTable {
                    name: name.to_ascii_lowercase(),
                    schema,
                })?;
                Ok(QueryResult::TableCreated(name))
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(&name)?;
                // Recommenders created on the table are dropped with it.
                self.recommenders
                    .retain(|r| !r.ratings_table().eq_ignore_ascii_case(&name));
                self.log_and_commit(WalRecord::DropTable {
                    name: name.to_ascii_lowercase(),
                })?;
                Ok(QueryResult::TableDropped(name))
            }
            Statement::Insert { table, rows } => {
                let tuples = rows
                    .iter()
                    .map(const_tuple)
                    .collect::<EngineResult<Vec<Tuple>>>()?;
                let n = self.insert_tuples_governed(&table, tuples, guard)?;
                Ok(QueryResult::Inserted(n))
            }
            Statement::CreateRecommender {
                name,
                ratings_table,
                users_column,
                items_column,
                ratings_column,
                algorithm,
            } => {
                if self.recommender(&name).is_some() {
                    return Err(EngineError::RecommenderExists(name));
                }
                let algorithm: Algorithm = algorithm
                    .parse()
                    .map_err(|_| recdb_exec::ExecError::UnknownAlgorithm(algorithm.clone()))?;
                let rec = Recommender::create_governed(
                    &name,
                    &self.catalog,
                    &ratings_table,
                    &users_column,
                    &items_column,
                    &ratings_column,
                    algorithm,
                    self.config.train,
                    self.config.hotness_threshold,
                    self.clock,
                    Some(guard),
                )?;
                let build_time = rec.build_time();
                self.observe_model_build(rec.algorithm(), build_time);
                let log_record = WalRecord::CreateRecommender {
                    name: rec.name().to_owned(),
                    table: rec.ratings_table().to_owned(),
                    users: rec.users_column().to_owned(),
                    items: rec.items_column().to_owned(),
                    ratings: rec.ratings_column().to_owned(),
                    algorithm: rec.algorithm().name().to_owned(),
                };
                self.recommenders.push(rec);
                self.log_and_commit(log_record)?;
                Ok(QueryResult::RecommenderCreated { name, build_time })
            }
            Statement::DropRecommender { name } => {
                let before = self.recommenders.len();
                self.recommenders
                    .retain(|r| !r.name().eq_ignore_ascii_case(&name));
                if self.recommenders.len() == before {
                    return Err(EngineError::RecommenderNotFound(name));
                }
                self.log_and_commit(WalRecord::DropRecommender {
                    name: name.to_ascii_lowercase(),
                })?;
                Ok(QueryResult::RecommenderDropped(name))
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
            } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.catalog.table_mut(&table)?.create_index(&name, &cols)?;
                self.log_and_commit(WalRecord::CreateIndex {
                    table: table.to_ascii_lowercase(),
                    index: name.clone(),
                    columns,
                })?;
                Ok(QueryResult::IndexCreated(name))
            }
            Statement::DropIndex { name, table } => {
                self.catalog.table_mut(&table)?.drop_index(&name)?;
                self.log_and_commit(WalRecord::DropIndex {
                    table: table.to_ascii_lowercase(),
                    index: name.clone(),
                })?;
                Ok(QueryResult::IndexDropped(name))
            }
            Statement::Explain(select) => {
                let plan = optimize(build_logical(&select, &self.catalog)?);
                let schema = Schema::from_pairs(&[("plan", DataType::Text)]);
                let rows = plan
                    .explain()
                    .lines()
                    .map(|l| Tuple::new(vec![recdb_storage::Value::Text(l.to_owned())]))
                    .collect();
                Ok(QueryResult::Rows(ResultSet::new(schema, rows)))
            }
            Statement::ExplainAnalyze(select) => {
                let rows = self.run_explain_analyze(&select, guard)?;
                Ok(QueryResult::Rows(rows))
            }
            Statement::Delete { table, filter } => {
                let n = self.apply_delete(&table, filter.as_ref(), guard)?;
                Ok(QueryResult::Deleted(n))
            }
            Statement::Update {
                table,
                assignments,
                filter,
            } => {
                let n = self.apply_update(&table, &assignments, filter.as_ref(), guard)?;
                Ok(QueryResult::Updated(n))
            }
            Statement::Select(select) => {
                let rows = self.run_select(&select, guard)?;
                self.metrics
                    .counter("recdb_rows_returned_total")
                    .add(rows.len() as u64);
                Ok(QueryResult::Rows(rows))
            }
        }
    }

    /// Record one model (re)build duration in the per-algorithm histogram.
    fn observe_model_build(&self, algorithm: Algorithm, build_time: Duration) {
        self.metrics
            .histogram_with(
                "recdb_model_build_micros",
                MODEL_BUILD_BUCKETS,
                &[("algorithm", algorithm.name())],
            )
            .observe(u64::try_from(build_time.as_micros()).unwrap_or(u64::MAX));
    }

    /// Delete rows matching `filter` (all rows when `None`), updating
    /// recommender statistics and running the N% rule.
    fn apply_delete(
        &mut self,
        table: &str,
        filter: Option<&Expr>,
        guard: &QueryGuard,
    ) -> EngineResult<usize> {
        let (rids, touched_items) = {
            let t = self.catalog.table(table)?;
            let schema = t.schema().clone();
            let bound = filter.map(|f| bind(f, &schema)).transpose()?;
            let item_ordinals = self.recommender_item_ordinals(table)?;
            let mut rids = Vec::new();
            let mut touched: Vec<(usize, i64)> = Vec::new();
            for (rid, tuple) in t.heap().scan() {
                let keep = match &bound {
                    Some(b) => b.eval_predicate(&tuple)?,
                    None => true,
                };
                if keep {
                    rids.push(rid);
                    for &(k, ord) in &item_ordinals {
                        if let Some(item) = tuple.get(ord).and_then(recdb_storage::Value::as_int) {
                            touched.push((k, item));
                        }
                    }
                }
            }
            (rids, touched)
        };
        {
            let t = self.catalog.table_mut(table)?;
            for rid in &rids {
                t.delete(*rid)?;
            }
        }
        let n = rids.len();
        self.log_and_commit(WalRecord::Delete {
            table: table.to_ascii_lowercase(),
            rids,
        })?;
        let now = self.clock;
        for (k, item) in touched_items {
            self.recommenders[k].record_insert(item, now);
        }
        self.run_auto_maintenance(table, guard)?;
        Ok(n)
    }

    /// Rewrite rows matching `filter` with the SET assignments applied.
    fn apply_update(
        &mut self,
        table: &str,
        assignments: &[(String, Expr)],
        filter: Option<&Expr>,
        guard: &QueryGuard,
    ) -> EngineResult<usize> {
        let (rids, new_tuples, touched_items) = {
            let t = self.catalog.table(table)?;
            let schema = t.schema().clone();
            let bound = filter.map(|f| bind(f, &schema)).transpose()?;
            let sets: Vec<(usize, recdb_exec::BoundExpr)> = assignments
                .iter()
                .map(|(col, e)| Ok((schema.resolve(col)?, bind(e, &schema)?)))
                .collect::<EngineResult<_>>()?;
            let item_ordinals = self.recommender_item_ordinals(table)?;
            let mut rids = Vec::new();
            let mut new_tuples = Vec::new();
            let mut touched: Vec<(usize, i64)> = Vec::new();
            for (rid, tuple) in t.heap().scan() {
                let hit = match &bound {
                    Some(b) => b.eval_predicate(&tuple)?,
                    None => true,
                };
                if !hit {
                    continue;
                }
                let mut values = tuple.clone().into_values();
                for (ordinal, expr) in &sets {
                    values[*ordinal] = expr.eval(&tuple)?;
                }
                let new_tuple = Tuple::new(values);
                for &(k, ord) in &item_ordinals {
                    if let Some(item) = new_tuple.get(ord).and_then(recdb_storage::Value::as_int) {
                        touched.push((k, item));
                    }
                }
                rids.push(rid);
                new_tuples.push(new_tuple);
            }
            (rids, new_tuples, touched)
        };
        {
            let t = self.catalog.table_mut(table)?;
            for (rid, new_tuple) in rids.iter().zip(&new_tuples) {
                t.delete(*rid)?;
                t.insert(new_tuple.clone())?;
            }
        }
        let n = rids.len();
        self.log_and_commit(WalRecord::Update {
            table: table.to_ascii_lowercase(),
            changes: rids.into_iter().zip(new_tuples).collect(),
        })?;
        let now = self.clock;
        for (k, item) in touched_items {
            self.recommenders[k].record_insert(item, now);
        }
        self.run_auto_maintenance(table, guard)?;
        Ok(n)
    }

    /// `(recommender index, item-column ordinal)` pairs for recommenders
    /// created on `table`.
    fn recommender_item_ordinals(&self, table: &str) -> EngineResult<Vec<(usize, usize)>> {
        let table_key = table.to_ascii_lowercase();
        let t = self.catalog.table(table)?;
        self.recommenders
            .iter()
            .enumerate()
            .filter(|(_, r)| r.ratings_table() == table_key)
            .map(|(k, r)| Ok((k, t.schema().resolve(r.items_column())?)))
            .collect()
    }

    /// Run the N% rule for every recommender on `table`. A cancelled or
    /// faulted rebuild leaves the previous model serving (the swap in
    /// [`Recommender::maintain_governed`] is atomic).
    fn run_auto_maintenance(&mut self, table: &str, guard: &QueryGuard) -> EngineResult<()> {
        if !self.config.auto_maintenance {
            return Ok(());
        }
        let table_key = table.to_ascii_lowercase();
        let RecDb {
            catalog,
            recommenders,
            config,
            metrics,
            ..
        } = self;
        for rec in recommenders.iter_mut() {
            if rec.ratings_table() == table_key
                && rec.needs_maintenance(config.maintenance_threshold_pct)
            {
                rec.maintain_governed(catalog, Some(guard))?;
                metrics
                    .histogram_with(
                        "recdb_model_build_micros",
                        MODEL_BUILD_BUCKETS,
                        &[("algorithm", rec.algorithm().name())],
                    )
                    .observe(u64::try_from(rec.build_time().as_micros()).unwrap_or(u64::MAX));
            }
        }
        Ok(())
    }

    /// Insert pre-built tuples into a table, updating recommender
    /// statistics and running the N% maintenance rule. This is also the
    /// bulk-loading path used by the dataset loaders.
    pub fn insert_tuples(&mut self, table: &str, tuples: Vec<Tuple>) -> EngineResult<usize> {
        let guard = self.config.governor.guard();
        self.insert_tuples_governed(table, tuples, &guard)
    }

    fn insert_tuples_governed(
        &mut self,
        table: &str,
        tuples: Vec<Tuple>,
        guard: &QueryGuard,
    ) -> EngineResult<usize> {
        let n = tuples.len();
        // Pre-resolve, per recommender on this table, the item-column
        // ordinal in the table schema.
        let item_ordinals = self.recommender_item_ordinals(table)?;
        {
            let t = self.catalog.table_mut(table)?;
            for tuple in &tuples {
                // Record item updates before the tuple moves into the heap.
                for &(k, ord) in &item_ordinals {
                    if let Some(item) = tuple.get(ord).and_then(recdb_storage::Value::as_int) {
                        self.recommenders[k].record_insert(item, self.clock);
                    }
                }
                t.insert(tuple.clone())?;
            }
        }
        self.log_and_commit(WalRecord::Insert {
            table: table.to_ascii_lowercase(),
            tuples,
        })?;
        self.run_auto_maintenance(table, guard)?;
        Ok(n)
    }

    /// Pre-compute the full RecScoreIndex for every user of a recommender
    /// (§IV-C pre-computation).
    pub fn materialize(&mut self, recommender: &str) -> EngineResult<()> {
        let threads = self.config.build_threads;
        let guard = self.config.governor.guard();
        let metrics = Arc::clone(&self.metrics);
        let rec = self
            .recommender_mut(recommender)
            .ok_or_else(|| EngineError::RecommenderNotFound(recommender.to_owned()))?;
        let result = rec.materialize_all_governed(threads, Some(&guard));
        metrics
            .gauge_with("recdb_materialized_entries", &[("recommender", rec.name())])
            .set(rec.materialized_entries() as i64);
        result.map_err(|e| flatten_guard_error_counted(&metrics, e))
    }

    /// Run one cache-manager pass (Algorithm 4) for a recommender at the
    /// current tick.
    pub fn run_cache_manager(
        &mut self,
        recommender: &str,
    ) -> EngineResult<crate::cache::CacheDecision> {
        let now = self.clock;
        let metrics = Arc::clone(&self.metrics);
        let rec = self
            .recommender_mut(recommender)
            .ok_or_else(|| EngineError::RecommenderNotFound(recommender.to_owned()))?;
        let decision = rec.run_cache_manager(now);
        metrics
            .counter("recdb_cache_admitted_total")
            .add(decision.admitted.len() as u64);
        metrics
            .counter("recdb_cache_evicted_total")
            .add(decision.evicted.len() as u64);
        metrics
            .gauge_with("recdb_materialized_entries", &[("recommender", rec.name())])
            .set(rec.materialized_entries() as i64);
        Ok(decision)
    }

    fn run_select(&self, select: &SelectStatement, guard: &QueryGuard) -> EngineResult<ResultSet> {
        let plan = optimize(build_logical(select, &self.catalog)?);
        self.record_query_stats(&plan);
        let ctx = ExecContext::new(&self.catalog, self, guard.clone())
            .with_metrics(Arc::clone(&self.metrics));
        Ok(execute_plan(&plan, &ctx)?)
    }

    /// Run a SELECT with per-operator profiling and render the annotated
    /// plan tree (`EXPLAIN ANALYZE`). The statement really executes —
    /// side effects on metrics and query statistics are identical to a
    /// plain run — but the result rows are discarded in favour of the
    /// profile, as in PostgreSQL.
    fn run_explain_analyze(
        &self,
        select: &SelectStatement,
        guard: &QueryGuard,
    ) -> EngineResult<ResultSet> {
        let plan = optimize(build_logical(select, &self.catalog)?);
        self.record_query_stats(&plan);
        let ctx = ExecContext::new(&self.catalog, self, guard.clone())
            .with_metrics(Arc::clone(&self.metrics));
        let (rows, profile) = execute_plan_profiled(&plan, &ctx, Arc::clone(&self.wall))?;
        self.metrics
            .counter("recdb_rows_returned_total")
            .add(rows.len() as u64);
        let schema = Schema::from_pairs(&[("plan", DataType::Text)]);
        let lines = profile
            .render()
            .into_iter()
            .map(|l| Tuple::new(vec![recdb_storage::Value::Text(l)]))
            .collect();
        Ok(ResultSet::new(schema, lines))
    }

    /// Update the Users Histogram (`QC_u`, `TS_u`) for recommendation
    /// queries with a resolved user predicate.
    fn record_query_stats(&self, plan: &LogicalPlan) {
        let Some(node) = find_recommend(plan) else {
            return;
        };
        let Some(users) = &node.user_ids else {
            return;
        };
        let Some(rec) = self.recommenders.iter().find(|r| {
            r.ratings_table().eq_ignore_ascii_case(&node.ratings_table)
                && r.algorithm() == node.algorithm
        }) else {
            return;
        };
        for &u in users {
            rec.record_query(u, self.clock);
        }
    }
}

impl RecommenderProvider for RecDb {
    fn model(
        &self,
        ratings_table: &str,
        algorithm: Algorithm,
    ) -> Option<Arc<recdb_algo::RecModel>> {
        self.recommenders
            .iter()
            .find(|r| {
                r.ratings_table().eq_ignore_ascii_case(ratings_table) && r.algorithm() == algorithm
            })
            .map(|r| r.model())
    }

    fn rec_index(&self, ratings_table: &str, algorithm: Algorithm) -> Option<Arc<RecScoreIndex>> {
        self.recommenders
            .iter()
            .find(|r| {
                r.ratings_table().eq_ignore_ascii_case(ratings_table) && r.algorithm() == algorithm
            })
            .and_then(|r| r.index())
    }
}

/// Lift governor verdicts buried in the executor layer to first-class
/// engine errors (`Cancelled` / `ResourceExhausted`).
fn flatten_guard_error(e: EngineError) -> EngineError {
    match e {
        EngineError::Exec(recdb_exec::ExecError::Guard(g)) => g.into(),
        other => other,
    }
}

/// [`flatten_guard_error`] plus metric recording: governor verdicts bump
/// `recdb_governor_cancellations_total{cause=…}` so operators can see *why*
/// queries are being killed without scraping logs.
fn flatten_guard_error_counted(metrics: &Registry, e: EngineError) -> EngineError {
    let e = flatten_guard_error(e);
    let cause = match &e {
        EngineError::Cancelled { .. } => Some("cancelled"),
        EngineError::ResourceExhausted { resource, .. } => Some(*resource),
        _ => None,
    };
    if let Some(cause) = cause {
        metrics
            .counter_with("recdb_governor_cancellations_total", &[("cause", cause)])
            .inc();
    }
    e
}

/// The wall clock used for `EXPLAIN ANALYZE` timings: the configured
/// [`RecDbConfig::profile_clock`] if present (tests inject a manual clock
/// for determinism), otherwise a real monotonic [`SystemClock`].
fn profile_clock_or_wall(config: &RecDbConfig) -> Arc<dyn Clock> {
    config
        .profile_clock
        .clone()
        .unwrap_or_else(|| Arc::new(SystemClock::new()) as Arc<dyn Clock>)
}

/// Label value for `recdb_statements_total{kind=…}`.
fn statement_kind(statement: &Statement) -> &'static str {
    match statement {
        Statement::CreateTable { .. } => "create_table",
        Statement::DropTable { .. } => "drop_table",
        Statement::Insert { .. } => "insert",
        Statement::CreateRecommender { .. } => "create_recommender",
        Statement::DropRecommender { .. } => "drop_recommender",
        Statement::Delete { .. } => "delete",
        Statement::Update { .. } => "update",
        Statement::CreateIndex { .. } => "create_index",
        Statement::DropIndex { .. } => "drop_index",
        Statement::Explain(_) => "explain",
        Statement::ExplainAnalyze(_) => "explain_analyze",
        Statement::Select(_) => "select",
    }
}

/// Best-effort extraction of a caught panic's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "statement panicked".to_owned()
    }
}

fn find_recommend(plan: &LogicalPlan) -> Option<&recdb_exec::plan::RecommendNode> {
    match plan {
        LogicalPlan::Recommend(node) => Some(node),
        LogicalPlan::RecJoin { rec, .. } => Some(rec),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. } => find_recommend(input),
        LogicalPlan::Join { left, right, .. } => {
            find_recommend(left).or_else(|| find_recommend(right))
        }
        LogicalPlan::Scan { .. } => None,
    }
}

/// Map a checksum failure in a durable file to an [`EngineError`] naming
/// the affected table (page files are named `<table>.<lsn>.tbl`; anything
/// else is the catalog manifest itself).
fn corruption_to_engine(e: StorageError) -> EngineError {
    match &e {
        StorageError::Corruption { file, .. } => {
            let table = match file.split_once('.') {
                Some((table, _)) if file.ends_with(".tbl") => table.to_owned(),
                _ => "catalog".to_owned(),
            };
            EngineError::Corruption { table, source: e }
        }
        _ => EngineError::Storage(e),
    }
}

/// Serialize recommender definitions into the checkpoint's opaque
/// metadata blob: a count followed by six strings per definition.
fn encode_recommender_meta(recommenders: &[Recommender]) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u32(&mut buf, recommenders.len() as u32);
    for r in recommenders {
        codec::put_str(&mut buf, r.name());
        codec::put_str(&mut buf, r.ratings_table());
        codec::put_str(&mut buf, r.users_column());
        codec::put_str(&mut buf, r.items_column());
        codec::put_str(&mut buf, r.ratings_column());
        codec::put_str(&mut buf, r.algorithm().name());
    }
    buf
}

/// Inverse of [`encode_recommender_meta`]. An empty blob (fresh database,
/// or a pre-recommender checkpoint) decodes to no definitions.
fn decode_recommender_meta(bytes: &[u8]) -> EngineResult<Vec<RecommenderDef>> {
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    let mut r = recdb_storage::Reader::new(bytes, "recommender metadata");
    let count = r.take_u32()? as usize;
    let mut defs = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        defs.push(RecommenderDef {
            name: r.take_str()?,
            table: r.take_str()?,
            users: r.take_str()?,
            items: r.take_str()?,
            ratings: r.take_str()?,
            algorithm: r.take_str()?,
        });
    }
    Ok(defs)
}

/// Map a SQL type name to a [`DataType`], with common synonyms.
fn map_type(name: &str) -> EngineResult<DataType> {
    match name.to_ascii_lowercase().as_str() {
        "int" | "integer" | "bigint" | "smallint" => Ok(DataType::Int),
        "float" | "real" | "double" | "numeric" | "decimal" => Ok(DataType::Float),
        "text" | "varchar" | "char" | "string" => Ok(DataType::Text),
        "bool" | "boolean" => Ok(DataType::Bool),
        "point" | "geometry" => Ok(DataType::Point),
        "rect" | "region" => Ok(DataType::Rect),
        other => Err(EngineError::UnknownType(other.to_owned())),
    }
}

/// Evaluate an INSERT row of constant expressions to a tuple.
fn const_tuple(row: &Vec<Expr>) -> EngineResult<Tuple> {
    let empty_schema = Schema::default();
    let empty_tuple = Tuple::default();
    let mut values = Vec::with_capacity(row.len());
    for expr in row {
        // A fast path for plain literals avoids the bind machinery.
        if let Expr::Literal(lit) = expr {
            values.push(literal_value(lit));
            continue;
        }
        let bound =
            bind(expr, &empty_schema).map_err(|e| EngineError::NonConstantInsert(e.to_string()))?;
        let value = bound
            .eval(&empty_tuple)
            .map_err(|e| EngineError::NonConstantInsert(e.to_string()))?;
        values.push(value);
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_storage::Value;

    /// Stand up the paper's Figure 1 database through pure SQL.
    fn figure1_db() -> RecDb {
        let mut db = RecDb::new();
        db.execute_script(
            "CREATE TABLE users (uid INT, name TEXT, city TEXT);
             CREATE TABLE movies (mid INT, name TEXT, genre TEXT);
             CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
             INSERT INTO users VALUES (1, 'Alice', 'Minneapolis'), (2, 'Bob', 'Austin'),
                                      (3, 'Carol', 'Minneapolis'), (4, 'Eve', 'San Diego');
             INSERT INTO movies VALUES (1, 'Spartacus', 'Action'),
                                       (2, 'Inception', 'Suspense'),
                                       (3, 'The Matrix', 'Sci-Fi');
             INSERT INTO ratings VALUES (1, 1, 1.5), (2, 2, 3.5), (2, 1, 4.5),
                                        (2, 3, 2.0), (3, 2, 1.0), (3, 1, 2.0), (4, 2, 1.0);",
        )
        .unwrap();
        db
    }

    fn with_recommender() -> RecDb {
        let mut db = figure1_db();
        db.execute(
            "CREATE RECOMMENDER GeneralRec ON ratings \
             USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
        )
        .unwrap();
        db
    }

    #[test]
    fn ddl_and_inserts() {
        let db = figure1_db();
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 7);
        assert_eq!(db.catalog().table("users").unwrap().tuple_count(), 4);
    }

    #[test]
    fn create_recommender_via_sql() {
        let mut db = figure1_db();
        let result = db
            .execute(
                "CREATE RECOMMENDER GeneralRec ON ratings \
                 USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
            )
            .unwrap();
        assert!(matches!(
            result,
            QueryResult::RecommenderCreated { ref name, .. } if name == "GeneralRec"
        ));
        assert_eq!(db.recommender_names(), vec!["generalrec"]);
        let err = db
            .execute(
                "CREATE RECOMMENDER GeneralRec ON ratings \
                 USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING SVD",
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::RecommenderExists(_)));
    }

    #[test]
    fn paper_query1_end_to_end() {
        let mut db = with_recommender();
        let rows = db
            .query(
                "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10",
            )
            .unwrap();
        assert_eq!(rows.len(), 2, "user 1 has two unseen movies");
        assert_eq!(rows.value(0, "uid").unwrap(), &Value::Int(1));
    }

    #[test]
    fn missing_recommender_reported_via_sql() {
        let mut db = figure1_db();
        let err = db
            .query(
                "SELECT R.uid FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF",
            )
            .unwrap_err();
        assert!(err.to_string().contains("CREATE RECOMMENDER"));
    }

    #[test]
    fn drop_recommender_and_table_cascade() {
        let mut db = with_recommender();
        db.execute("DROP RECOMMENDER GeneralRec").unwrap();
        assert!(db.recommender_names().is_empty());
        assert!(matches!(
            db.execute("DROP RECOMMENDER GeneralRec").unwrap_err(),
            EngineError::RecommenderNotFound(_)
        ));
        // Re-create, then drop the table: the recommender goes with it.
        db.execute(
            "CREATE RECOMMENDER R2 ON ratings \
             USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
        )
        .unwrap();
        db.execute("DROP TABLE ratings").unwrap();
        assert!(db.recommender_names().is_empty());
    }

    #[test]
    fn insert_triggers_n_percent_maintenance() {
        let mut db = with_recommender();
        assert_eq!(
            db.recommender("GeneralRec").unwrap().model().trained_on(),
            7
        );
        // 10% of 7 ratings → a single insert triggers a rebuild.
        db.execute("INSERT INTO ratings VALUES (4, 3, 5.0)")
            .unwrap();
        let rec = db.recommender("GeneralRec").unwrap();
        assert_eq!(rec.model().trained_on(), 8, "model rebuilt");
        assert_eq!(rec.pending_updates(), 0);
        assert_eq!(rec.model().score(4, 3), 5.0);
    }

    #[test]
    fn maintenance_can_be_deferred() {
        let mut db = RecDb::with_config(RecDbConfig {
            auto_maintenance: false,
            ..Default::default()
        });
        db.execute_script(
            "CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
             INSERT INTO ratings VALUES (1, 1, 5.0), (2, 1, 4.0);
             CREATE RECOMMENDER R ON ratings USERS FROM uid ITEMS FROM iid \
             RATINGS FROM ratingval USING ItemCosCF;
             INSERT INTO ratings VALUES (2, 2, 3.0);",
        )
        .unwrap();
        let rec = db.recommender("R").unwrap();
        assert_eq!(rec.model().trained_on(), 2, "not rebuilt");
        assert_eq!(rec.pending_updates(), 1);
    }

    #[test]
    fn materialize_then_topk_uses_index() {
        let mut db = with_recommender();
        db.materialize("GeneralRec").unwrap();
        assert_eq!(
            db.recommender("GeneralRec").unwrap().materialized_entries(),
            5
        );
        let rows = db
            .query(
                "SELECT R.iid, R.ratingval FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn query_stats_recorded_for_user_predicates() {
        let mut db = with_recommender();
        for _ in 0..3 {
            db.query(
                "SELECT R.iid FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1",
            )
            .unwrap();
        }
        let rec = db.recommender("GeneralRec").unwrap();
        rec.with_stats(|s| {
            assert_eq!(s.user(1).unwrap().query_count, 3);
            assert!(s.user(2).is_none());
        });
    }

    #[test]
    fn type_synonyms_in_create_table() {
        let mut db = RecDb::new();
        db.execute(
            "CREATE TABLE t (a INTEGER, b DOUBLE, c VARCHAR, d BOOLEAN, e GEOMETRY, f REGION)",
        )
        .unwrap();
        let schema = db.catalog().table("t").unwrap().schema().clone();
        assert_eq!(schema.column(0).unwrap().data_type, DataType::Int);
        assert_eq!(schema.column(4).unwrap().data_type, DataType::Point);
        assert_eq!(schema.column(5).unwrap().data_type, DataType::Rect);
        assert!(matches!(
            db.execute("CREATE TABLE bad (a BLOB)").unwrap_err(),
            EngineError::UnknownType(_)
        ));
    }

    #[test]
    fn insert_constant_expressions() {
        let mut db = RecDb::new();
        db.execute("CREATE TABLE t (a INT, p POINT, r RECT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1 + 2, POINT(1, 2), RECT(0, 0, 5, 5))")
            .unwrap();
        let rows = db.query("SELECT * FROM t").unwrap();
        assert_eq!(rows.value(0, "a").unwrap(), &Value::Int(3));
        assert_eq!(rows.value(0, "p").unwrap(), &Value::Point(1.0, 2.0));
        // Non-constant rows are rejected.
        let err = db.execute("INSERT INTO t VALUES (x, POINT(1,2), RECT(0,0,1,1))");
        assert!(matches!(
            err.unwrap_err(),
            EngineError::NonConstantInsert(_)
        ));
    }

    #[test]
    fn explain_shows_optimized_plan() {
        let db = with_recommender();
        let text = db
            .explain(
                "SELECT R.iid FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1",
            )
            .unwrap();
        assert!(text.contains("FilterRecommend"), "{text}");
    }

    #[test]
    fn create_and_drop_index_via_sql() {
        let mut db = figure1_db();
        assert!(matches!(
            db.execute("CREATE INDEX movies_mid ON movies (mid)")
                .unwrap(),
            QueryResult::IndexCreated(_)
        ));
        assert!(db
            .catalog()
            .table("movies")
            .unwrap()
            .index("movies_mid")
            .is_ok());
        assert!(matches!(
            db.execute("DROP INDEX movies_mid ON movies").unwrap(),
            QueryResult::IndexDropped(_)
        ));
        assert!(db.execute("DROP INDEX movies_mid ON movies").is_err());
        assert!(db.execute("CREATE INDEX i ON movies (nosuch)").is_err());
    }

    #[test]
    fn explain_statement_returns_plan_rows() {
        let mut db = with_recommender();
        let rows = db
            .query(
                "EXPLAIN SELECT R.iid FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1",
            )
            .unwrap();
        let text: Vec<String> = rows
            .column_values("plan")
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert!(
            text.iter().any(|l| l.contains("FilterRecommend")),
            "{text:?}"
        );
    }

    #[test]
    fn clock_ticks_per_statement() {
        let mut db = RecDb::new();
        assert_eq!(db.clock(), 0);
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        assert_eq!(db.clock(), 2);
    }

    #[test]
    fn delete_statement_removes_rows_and_retrains() {
        let mut db = with_recommender();
        // Delete all of user 2's ratings (4 rows of 7 → well past N%).
        let result = db.execute("DELETE FROM ratings WHERE uid = 2").unwrap();
        assert!(matches!(result, QueryResult::Deleted(3)));
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 4);
        let rec = db.recommender("GeneralRec").unwrap();
        assert_eq!(rec.model().trained_on(), 4, "model rebuilt without user 2");
        assert_eq!(rec.model().score(2, 1), 0.0, "user 2 gone from the model");
    }

    #[test]
    fn update_statement_rewrites_rows() {
        let mut db = with_recommender();
        let result = db
            .execute("UPDATE ratings SET ratingval = 5.0 WHERE uid = 1 AND iid = 1")
            .unwrap();
        assert!(matches!(result, QueryResult::Updated(1)));
        let rows = db
            .query("SELECT ratingval FROM ratings WHERE uid = 1 AND iid = 1")
            .unwrap();
        assert_eq!(rows.value(0, "ratingval").unwrap(), &Value::Float(5.0));
        // The re-rate reached the model through maintenance.
        let rec = db.recommender("GeneralRec").unwrap();
        assert_eq!(rec.model().score(1, 1), 5.0);
    }

    #[test]
    fn update_with_expression_and_no_filter() {
        let mut db = figure1_db();
        let result = db
            .execute("UPDATE ratings SET ratingval = ratingval + 1")
            .unwrap();
        assert!(matches!(result, QueryResult::Updated(7)));
        let rows = db
            .query("SELECT ratingval FROM ratings WHERE uid = 2 AND iid = 1")
            .unwrap();
        assert_eq!(rows.value(0, "ratingval").unwrap(), &Value::Float(5.5));
    }

    #[test]
    fn delete_everything() {
        let mut db = figure1_db();
        let result = db.execute("DELETE FROM ratings").unwrap();
        assert!(matches!(result, QueryResult::Deleted(7)));
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 0);
    }

    #[test]
    fn aggregate_sql_through_engine() {
        let mut db = figure1_db();
        let rows = db
            .query(
                "SELECT genre, COUNT(*) AS n FROM movies GROUP BY genre \
                 ORDER BY genre ASC",
            )
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.value(0, "genre").unwrap().as_text(), Some("Action"));
        assert_eq!(rows.value(0, "n").unwrap(), &Value::Int(1));
        // Global aggregate.
        let rows = db
            .query("SELECT COUNT(*) AS n, AVG(ratingval) AS mean FROM ratings")
            .unwrap();
        assert_eq!(rows.value(0, "n").unwrap(), &Value::Int(7));
        let mean = rows.value(0, "mean").unwrap().as_f64().unwrap();
        assert!((mean - 15.5 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn query_on_non_select_errors() {
        let mut db = RecDb::new();
        assert!(db.query("CREATE TABLE t (a INT)").is_err());
    }
}
