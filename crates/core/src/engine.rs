//! The RecDB engine façade: parse → plan → optimize → execute, plus the
//! recommender lifecycle (§III) and the concurrency-control layer.
//!
//! # Concurrency model
//!
//! [`RecDb`] takes `&self` everywhere and is `Send + Sync`: wrap it in an
//! `Arc` and issue statements from as many threads as you like, each
//! through its own [`Session`]. Isolation is strict two-phase locking at
//! table granularity via [`recdb_txn::LockTable`]: readers take shared
//! locks (and never block each other), writers take exclusive locks, and
//! every lock is held to the end of the enclosing transaction. There is no
//! deadlock detector — contended acquisitions time out after
//! [`RecDbConfig::lock_timeout`] with [`EngineError::LockTimeout`], and
//! within a single statement locks are acquired in sorted order so one
//! statement can never deadlock another.
//!
//! Underneath the lock table sit short-lived latches in a fixed order
//! (checkpoint latch → catalog → recommenders → durability), held only for
//! the memory mutation itself, never across model training or a lock-table
//! wait.
//!
//! Every statement runs inside a transaction. Statements outside an
//! explicit `BEGIN` auto-commit an *implicit* one; either way a failed,
//! cancelled, or panicking statement rolls back its physical undo log and
//! releases its locks, so the engine keeps serving. Explicit transactions
//! write `TxnBegin`/`InTxn`/`TxnCommit` WAL records and fsync once at
//! COMMIT; recovery replays only transactions whose commit marker made it
//! to disk.

use crate::error::{EngineError, EngineResult};
use crate::recommender::{load_matrix, Recommender};
use crate::session::{ActiveTxn, Session, TxnState, UndoOp};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use recdb_algo::model::TrainConfig;
use recdb_algo::Algorithm;
use recdb_exec::expr::{bind, literal_value};
use recdb_exec::{
    build_logical, execute_plan, execute_plan_profiled, optimize, ExecContext, LogicalPlan,
    RecScoreIndex, RecommenderProvider, ResultSet,
};
use recdb_guard::QueryGuard;
use recdb_obs::{Clock, MetricsSnapshot, Registry, SystemClock};
use recdb_sql::{parse, parse_many, Expr, SelectStatement, Statement};
use recdb_storage::{
    codec, read_snapshot_with, write_snapshot, BufferPool, Catalog, DataType, RecoveryMode, Schema,
    StorageError, Tuple,
};
use recdb_txn::{LockError, LockMode, LockTable, TxnId};
use recdb_wal::{Wal, WalRecord};
use std::collections::BTreeSet;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::{Duration, Instant};

/// WAL file name within a data directory.
const WAL_FILE: &str = "wal.log";

/// Bucket bounds (microseconds) for the per-algorithm model-build
/// histogram: 100µs to 10s, one decade per bucket.
const MODEL_BUILD_BUCKETS: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// How long a draining checkpoint parks between re-checks of the
/// transaction gate.
const DRAIN_POLL: Duration = Duration::from_millis(5);

/// Default resource limits applied to every statement (and model build)
/// the engine runs. `None` everywhere means ungoverned — the default.
/// Per-call overrides go through [`RecDb::execute_with_guard`] /
/// [`RecDb::query_with_guard`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GovernorConfig {
    /// Wall-clock deadline per statement.
    pub deadline: Option<Duration>,
    /// Maximum rows an operator tree may process per statement.
    pub row_budget: Option<u64>,
    /// Maximum bytes blocking operators (sort buffers, join build sides,
    /// aggregate groups) may retain per statement.
    pub mem_budget: Option<u64>,
}

impl GovernorConfig {
    /// Build a fresh guard enforcing these limits, starting now.
    pub fn guard(&self) -> QueryGuard {
        if *self == GovernorConfig::default() {
            return QueryGuard::unlimited();
        }
        QueryGuard::with_limits(self.deadline, self.row_budget, self.mem_budget)
    }
}

/// Engine-wide tunables.
#[derive(Debug, Clone)]
pub struct RecDbConfig {
    /// The N% maintenance threshold (§III-A): rebuild a model once pending
    /// updates reach this percentage of the ratings it was built from.
    pub maintenance_threshold_pct: f64,
    /// The Algorithm 4 `HOTNESS-THRESHOLD` in `[0, 1]`.
    pub hotness_threshold: f64,
    /// Model-training knobs shared by all recommenders.
    pub train: TrainConfig,
    /// Whether inserts trigger the N% rule automatically (the paper's
    /// behaviour). Disable for benches that want explicit control.
    pub auto_maintenance: bool,
    /// Worker threads for score-index materialization (`0` = all cores).
    /// Materialization is a pure fan-out, so the index is identical for
    /// every setting. Model-*training* threads live in
    /// [`RecDbConfig::train`] (`train.neighborhood.threads`,
    /// `train.svd.threads`).
    pub build_threads: usize,
    /// Default per-statement resource limits (deadline, row budget,
    /// memory budget). Ungoverned by default.
    pub governor: GovernorConfig,
    /// Directory for durable storage (WAL + checkpointed page files).
    /// `None` (the default) keeps the engine fully in-memory. Durable
    /// engines are constructed with [`RecDb::open`] /
    /// [`RecDb::open_with_config`], which run crash recovery.
    pub data_dir: Option<PathBuf>,
    /// How recovery reacts to checksum failures in durable files:
    /// abort-and-name-the-page ([`RecoveryMode::Strict`], the default) or
    /// bring up everything that still verifies
    /// ([`RecoveryMode::SalvageToLastGood`]).
    pub recovery: RecoveryMode,
    /// Clock used by `EXPLAIN ANALYZE` profiling. `None` (the default)
    /// uses the wall clock ([`SystemClock`]); tests inject a
    /// [`recdb_obs::ManualClock`] for byte-stable timings.
    pub profile_clock: Option<Arc<dyn Clock>>,
    /// How long a statement waits for a contended table lock before
    /// failing with [`EngineError::LockTimeout`] (also the budget a
    /// checkpoint spends waiting for open transactions to drain). A zero
    /// timeout never blocks: contended acquisitions fail immediately.
    pub lock_timeout: Duration,
    /// Maximum resident frames in the engine's buffer pool. Every heap
    /// page and RecScoreIndex node lives in (or is faulted into) one of
    /// these 8 KiB frames; once all are in use the clock sweep evicts an
    /// unpinned page, so tables and indexes far larger than
    /// `buffer_pool_pages × 8 KiB` run in bounded decoded-page memory.
    /// Durable engines spill evicted frames to scratch files under
    /// `data_dir/pool/`; in-memory engines keep the encoded blocks on the
    /// heap (the data has nowhere else to live). Values below 2 are
    /// clamped up; see `docs/STORAGE.md` for sizing guidance.
    pub buffer_pool_pages: usize,
}

impl Default for RecDbConfig {
    fn default() -> Self {
        RecDbConfig {
            maintenance_threshold_pct: 10.0,
            hotness_threshold: 0.5,
            train: TrainConfig::default(),
            auto_maintenance: true,
            build_threads: 0,
            governor: GovernorConfig::default(),
            data_dir: None,
            recovery: RecoveryMode::Strict,
            profile_clock: None,
            lock_timeout: Duration::from_secs(10),
            buffer_pool_pages: 1024,
        }
    }
}

/// The outcome of one executed statement.
#[derive(Debug)]
pub enum QueryResult {
    /// `CREATE TABLE` succeeded.
    TableCreated(String),
    /// `DROP TABLE` succeeded.
    TableDropped(String),
    /// `INSERT` stored this many rows.
    Inserted(usize),
    /// `CREATE RECOMMENDER` trained a model.
    RecommenderCreated {
        /// Recommender name.
        name: String,
        /// Model build time (the Table II metric).
        build_time: Duration,
    },
    /// `DROP RECOMMENDER` succeeded.
    RecommenderDropped(String),
    /// `CREATE INDEX` succeeded.
    IndexCreated(String),
    /// `DROP INDEX` succeeded.
    IndexDropped(String),
    /// `DELETE` removed this many rows.
    Deleted(usize),
    /// `UPDATE` rewrote this many rows.
    Updated(usize),
    /// A `SELECT` produced rows.
    Rows(ResultSet),
    /// `BEGIN` opened an explicit transaction.
    TransactionStarted,
    /// `COMMIT` made the transaction's effects durable and visible.
    TransactionCommitted,
    /// `ROLLBACK` undid the transaction.
    TransactionRolledBack,
}

impl QueryResult {
    /// The result set, for `SELECT` outcomes.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            QueryResult::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// Consume into a result set, for `SELECT` outcomes.
    pub fn into_rows(self) -> Option<ResultSet> {
        match self {
            QueryResult::Rows(r) => Some(r),
            _ => None,
        }
    }
}

/// Durable-mode state: the data directory and its open write-ahead log.
/// Present only on engines built via [`RecDb::open`] /
/// [`RecDb::open_with_config`].
///
/// There is deliberately no `Drop` impl that flushes state: dropping a
/// durable engine without calling [`RecDb::checkpoint`] is exactly a crash,
/// and recovery must cope (the crash-matrix tests rely on this).
#[derive(Debug)]
struct Durability {
    dir: PathBuf,
    wal: Wal,
}

/// A recommender's definition as persisted in the checkpoint metadata
/// blob and in `CreateRecommender` WAL records. Models are derived state
/// and are never logged; they are rebuilt from these definitions plus the
/// recovered ratings rows.
#[derive(Debug, Clone)]
struct RecommenderDef {
    name: String,
    table: String,
    users: String,
    items: String,
    ratings: String,
    algorithm: String,
}

/// The gate a checkpoint closes to drain explicit transactions: no new
/// `BEGIN` is admitted while `draining`, and the checkpoint proceeds once
/// `active` reaches zero.
#[derive(Debug, Default)]
struct TxnGate {
    /// Open explicit transactions (implicit single-statement transactions
    /// never enter the gate; the checkpoint latch serializes those).
    active: usize,
    /// A checkpoint is waiting for the gate to empty.
    draining: bool,
}

/// The engine: catalog + recommenders + executor behind a SQL interface.
///
/// `Send + Sync`: share one engine across threads with `Arc` and give each
/// thread its own [`Session`] (or use the engine-level [`RecDb::execute`],
/// which auto-commits each statement through an internal default session).
#[derive(Debug)]
pub struct RecDb {
    catalog: RwLock<Catalog>,
    recommenders: RwLock<Vec<Recommender>>,
    config: RecDbConfig,
    /// Logical clock: one tick per executed statement. Drives the usage
    /// histograms deterministically.
    clock: AtomicU64,
    /// Shared with the eviction barrier closure installed on the pool,
    /// which `try_lock`s it to flush the log before a dirty write-back.
    durability: Option<Arc<Mutex<Durability>>>,
    /// The engine-wide buffer pool: every catalog heap page and every
    /// RecScoreIndex node pages through these frames.
    pool: Arc<BufferPool>,
    /// Engine-wide metric registry. Shared (`Arc`) so the WAL and the
    /// executor record into the same cells.
    metrics: Arc<Registry>,
    /// Time source for `EXPLAIN ANALYZE` ([`RecDbConfig::profile_clock`]
    /// or the wall clock).
    wall: Arc<dyn Clock>,
    /// Table-granularity strict-2PL lock table.
    locks: LockTable,
    /// Next transaction id. Recovery seeds this past every id in the WAL
    /// so a reopened engine can never collide with an old commit marker.
    next_txn: AtomicU64,
    /// Checkpoint drain gate for explicit transactions.
    gate: StdMutex<TxnGate>,
    gate_cond: Condvar,
    /// Read side: held by every mutating statement across its memory
    /// apply + WAL append, and by COMMIT across the commit marker + fsync.
    /// Write side: the checkpoint — so a snapshot never captures half a
    /// statement and a transaction's WAL records never straddle a prune.
    ckpt_latch: RwLock<()>,
    /// Session state behind [`RecDb::execute`]: `BEGIN` through the
    /// engine-level API lands here. Statements outside one of its explicit
    /// transactions bypass it entirely and run concurrently.
    default_session: Mutex<TxnState>,
}

impl Default for RecDb {
    fn default() -> Self {
        RecDb::new()
    }
}

impl RecDb {
    /// An empty engine with default configuration.
    pub fn new() -> Self {
        RecDb::with_config(RecDbConfig::default())
    }

    /// An empty in-memory engine with explicit configuration. For a
    /// durable engine (`config.data_dir` set) use
    /// [`RecDb::open_with_config`], which can fail and therefore returns a
    /// `Result`.
    pub fn with_config(config: RecDbConfig) -> Self {
        assert!(
            config.data_dir.is_none(),
            "RecDbConfig::data_dir requires RecDb::open_with_config (recovery can fail)"
        );
        let wall = profile_clock_or_wall(&config);
        let metrics = Arc::new(Registry::new());
        let locks = LockTable::new();
        locks.attach_metrics(Arc::clone(&metrics));
        let pool = Arc::new(BufferPool::in_memory(config.buffer_pool_pages));
        pool.attach_metrics(&metrics);
        RecDb {
            catalog: RwLock::new(Catalog::with_pool(Arc::clone(&pool))),
            recommenders: RwLock::new(Vec::new()),
            config,
            clock: AtomicU64::new(0),
            durability: None,
            pool,
            metrics,
            wall,
            locks,
            next_txn: AtomicU64::new(1),
            gate: StdMutex::new(TxnGate::default()),
            gate_cond: Condvar::new(),
            ckpt_latch: RwLock::new(()),
            default_session: Mutex::new(TxnState::default()),
        }
    }

    /// Open (or create) a durable engine rooted at `dir` with default
    /// configuration, running crash recovery: restore the latest
    /// checkpoint, verify page checksums, replay the WAL tail, and rebuild
    /// recommender models from the recovered ratings.
    pub fn open(dir: impl Into<PathBuf>) -> EngineResult<Self> {
        RecDb::open_with_config(RecDbConfig {
            data_dir: Some(dir.into()),
            ..RecDbConfig::default()
        })
    }

    /// Open an engine with explicit configuration. With
    /// `config.data_dir = None` this is just [`RecDb::with_config`];
    /// otherwise it recovers durable state from the directory:
    ///
    /// 1. Restore the newest checkpoint (`catalog.meta` + page files),
    ///    verifying every page checksum under `config.recovery`.
    /// 2. Scan the WAL once to find committed transactions: a transaction's
    ///    [`WalRecord::InTxn`] records replay only if its `TxnCommit`
    ///    marker made it to disk (a later `TxnAbort` unmarks it).
    /// 3. Replay surviving records with LSN beyond the checkpoint through
    ///    the same catalog paths the live engine uses, so replay reproduces
    ///    identical record ids.
    /// 4. Rebuild recommender models from their recovered definitions —
    ///    models are derived state and are never logged.
    pub fn open_with_config(config: RecDbConfig) -> EngineResult<Self> {
        let Some(dir) = config.data_dir.clone() else {
            return Ok(RecDb::with_config(config));
        };
        std::fs::create_dir_all(&dir)
            .map_err(|e| EngineError::Storage(StorageError::io("create data dir", e)))?;
        // Evicted frames spill to scratch files under the data directory;
        // recovery never reads them (crash safety stays checkpoint + WAL).
        let pool = Arc::new(BufferPool::spilling(
            config.buffer_pool_pages,
            dir.join("pool"),
        ));
        let snapshot = read_snapshot_with(&dir, config.recovery, Arc::clone(&pool))
            .map_err(corruption_to_engine)?;
        let (mut catalog, meta, checkpoint_lsn) = match snapshot {
            Some(s) => (s.catalog, s.meta, s.lsn),
            None => (Catalog::with_pool(Arc::clone(&pool)), Vec::new(), 0),
        };
        let mut defs = decode_recommender_meta(&meta)?;
        let opened = Wal::open(&dir.join(WAL_FILE), checkpoint_lsn)?;
        let salvage = matches!(config.recovery, RecoveryMode::SalvageToLastGood);
        let metrics = Arc::new(Registry::new());
        pool.attach_metrics(&metrics);
        if let Some(bytes) = opened.truncated {
            metrics
                .counter("recdb_recovery_truncated_bytes_total")
                .add(bytes);
        }
        // Pass 1: which transactions committed, and the highest txn id the
        // log has ever seen (the id counter must restart past it, or a new
        // uncommitted transaction could alias an old commit marker).
        let mut committed: BTreeSet<TxnId> = BTreeSet::new();
        let mut max_txn: TxnId = 0;
        for (_, record) in &opened.records {
            match record {
                WalRecord::TxnBegin { txn } | WalRecord::InTxn { txn, .. } => {
                    max_txn = max_txn.max(*txn);
                }
                WalRecord::TxnCommit { txn } => {
                    max_txn = max_txn.max(*txn);
                    committed.insert(*txn);
                }
                // An abort marker *after* a commit marker unmarks it: the
                // abort path writes one when the commit fsync fails, and
                // the live engine rolled the transaction back.
                WalRecord::TxnAbort { txn } => {
                    max_txn = max_txn.max(*txn);
                    committed.remove(txn);
                }
                _ => {}
            }
        }
        // Pass 2: redo. Bare records (auto-committed statements) always
        // replay; wrapped ones only if their transaction committed.
        let mut clock = 0u64;
        let mut replayed = 0u64;
        for (lsn, record) in opened.records {
            if lsn <= checkpoint_lsn {
                // Already reflected in the restored pages.
                continue;
            }
            let record = match record {
                WalRecord::TxnBegin { .. }
                | WalRecord::TxnCommit { .. }
                | WalRecord::TxnAbort { .. } => continue,
                WalRecord::InTxn { txn, record } => {
                    if committed.contains(&txn) {
                        *record
                    } else {
                        continue;
                    }
                }
                other => other,
            };
            clock += 1;
            replayed += 1;
            match replay_record(&mut catalog, record, &mut defs) {
                Ok(()) => {}
                // Salvaged (blanked) pages make previously valid record
                // ids dangle; in salvage mode those redo ops are skipped.
                Err(EngineError::Storage(StorageError::InvalidRid { .. })) if salvage => {}
                Err(e) => return Err(e),
            }
        }
        metrics
            .counter("recdb_recovery_replayed_records_total")
            .add(replayed);
        let mut recommenders = Vec::new();
        for def in defs {
            let algorithm: Algorithm = def
                .algorithm
                .parse()
                .map_err(|_| recdb_exec::ExecError::UnknownAlgorithm(def.algorithm.clone()))?;
            let rec = Recommender::create(
                &def.name,
                &catalog,
                &def.table,
                &def.users,
                &def.items,
                &def.ratings,
                algorithm,
                config.train,
                config.hotness_threshold,
                clock,
            )?;
            recommenders.push(rec);
        }
        let mut wal = opened.wal;
        wal.attach_metrics(Arc::clone(&metrics));
        let wall = profile_clock_or_wall(&config);
        let locks = LockTable::new();
        locks.attach_metrics(Arc::clone(&metrics));
        let durability = Arc::new(Mutex::new(Durability { dir, wal }));
        // Flush-log-before-page: a dirty frame may carry effects whose WAL
        // records are appended but not yet synced, so eviction write-back
        // first forces the log. `try_lock`, not `lock`: the checkpoint
        // holds the durability lock *while* faulting pages through the
        // pool, and a blocking acquire here would deadlock. Skipping the
        // flush when contended is safe — whoever holds the lock is either
        // mid-fsync or about to fsync, and spill files are never read by
        // recovery anyway.
        let barrier_dur = Arc::clone(&durability);
        pool.set_wal_barrier(move || {
            if let Some(mut dur) = barrier_dur.try_lock() {
                let _ = dur.wal.sync();
            }
        });
        Ok(RecDb {
            catalog: RwLock::new(catalog),
            recommenders: RwLock::new(recommenders),
            config,
            clock: AtomicU64::new(clock),
            durability: Some(durability),
            pool,
            metrics,
            wall,
            locks,
            next_txn: AtomicU64::new(max_txn + 1),
            gate: StdMutex::new(TxnGate::default()),
            gate_cond: Condvar::new(),
            ckpt_latch: RwLock::new(()),
            default_session: Mutex::new(TxnState::default()),
        })
    }

    /// Whether this engine persists to a data directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The engine-wide buffer pool (frame counters, hit/miss statistics).
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The data directory, for durable engines.
    pub fn data_dir(&self) -> Option<&Path> {
        self.durability.as_ref()?;
        self.config.data_dir.as_deref()
    }

    /// Open a new [`Session`] — one logical connection with its own
    /// `BEGIN`/`COMMIT`/`ROLLBACK` state. Sessions are cheap; create one
    /// per thread of work.
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// Snapshot all heap pages and catalog/recommender metadata to the
    /// data directory, then prune the WAL records the snapshot covers.
    /// A no-op for in-memory engines.
    ///
    /// The checkpoint first *drains* explicit transactions: new `BEGIN`s
    /// wait, and the snapshot proceeds once open transactions finish (a
    /// transaction's WAL records must never straddle the prune point).
    /// If they do not finish within [`RecDbConfig::lock_timeout`] the
    /// checkpoint gives up with [`EngineError::CheckpointContended`].
    pub fn checkpoint(&self) -> EngineResult<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        let _drain = self.drain_explicit_txns()?;
        let _ckpt = self.ckpt_latch.write();
        let mut catalog = self.catalog.write();
        let meta = encode_recommender_meta(&self.recommenders.read());
        let dur = self.durability.as_ref().expect("checked durable above");
        let mut dur = dur.lock();
        let lsn = dur.wal.last_lsn();
        write_snapshot(&dur.dir, &mut catalog, &meta, lsn)?;
        dur.wal.prune(lsn)?;
        Ok(())
    }

    /// Close the transaction gate and wait for open explicit transactions
    /// to finish. The returned guard reopens the gate on drop (success or
    /// error paths alike).
    fn drain_explicit_txns(&self) -> EngineResult<DrainGuard<'_>> {
        let budget = self.config.lock_timeout;
        let started = Instant::now();
        let mut gate = lock_gate(&self.gate);
        loop {
            if !gate.draining && gate.active == 0 {
                break;
            }
            let waited = started.elapsed();
            if waited >= budget {
                return Err(EngineError::CheckpointContended {
                    active: gate.active,
                    waited,
                });
            }
            let (next, _) = self
                .gate_cond
                .wait_timeout(gate, DRAIN_POLL)
                .unwrap_or_else(|e| e.into_inner());
            gate = next;
        }
        gate.draining = true;
        drop(gate);
        Ok(DrainGuard {
            gate: &self.gate,
            cond: &self.gate_cond,
        })
    }

    /// Count an explicit transaction in (BEGIN). Waits while a checkpoint
    /// is draining — BEGIN has no timeout budget of its own; the
    /// checkpoint's drain is bounded, so the wait is short.
    fn enter_txn_gate(&self) {
        let mut gate = lock_gate(&self.gate);
        while gate.draining {
            let (next, _) = self
                .gate_cond
                .wait_timeout(gate, DRAIN_POLL)
                .unwrap_or_else(|e| e.into_inner());
            gate = next;
        }
        gate.active += 1;
    }

    /// Count an explicit transaction out (COMMIT/ROLLBACK/abort).
    fn exit_txn_gate(&self) {
        lock_gate(&self.gate).active -= 1;
        self.gate_cond.notify_all();
    }

    /// The table catalog (shared read guard).
    pub fn catalog(&self) -> CatalogRef<'_> {
        CatalogRef(self.catalog.read())
    }

    /// Mutable catalog access, bypassing the lock table *and the WAL*.
    /// This is the bulk-loading backdoor for dataset loaders on a
    /// freshly-opened engine; concurrent sessions must use SQL (or
    /// [`RecDb::insert_tuples`]) instead.
    pub fn catalog_mut(&self) -> CatalogMut<'_> {
        CatalogMut(self.catalog.write())
    }

    /// Engine configuration.
    pub fn config(&self) -> &RecDbConfig {
        &self.config
    }

    /// Current logical clock tick.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// The engine-wide metric registry (see `docs/OBSERVABILITY.md` for
    /// the catalog). Shareable: clone the `Arc` to scrape from another
    /// thread.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Point-in-time copy of every engine metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Render all engine metrics in the Prometheus text exposition format.
    pub fn render_metrics(&self) -> String {
        self.metrics.render()
    }

    /// The lock table (introspection: tests assert on held locks).
    pub fn lock_table(&self) -> &LockTable {
        &self.locks
    }

    /// Look up a recommender by name (shared read guard).
    pub fn recommender(&self, name: &str) -> Option<RecommenderRef<'_>> {
        let recs = self.recommenders.read();
        let idx = recs
            .iter()
            .position(|r| r.name().eq_ignore_ascii_case(name))?;
        Some(RecommenderRef { recs, idx })
    }

    /// Look up a recommender mutably by name (write guard: blocks the
    /// read path for as long as it is held).
    pub fn recommender_mut(&self, name: &str) -> Option<RecommenderMut<'_>> {
        let recs = self.recommenders.write();
        let idx = recs
            .iter()
            .position(|r| r.name().eq_ignore_ascii_case(name))?;
        Some(RecommenderMut { recs, idx })
    }

    /// Names of all recommenders.
    pub fn recommender_names(&self) -> Vec<String> {
        self.recommenders
            .read()
            .iter()
            .map(|r| r.name().to_owned())
            .collect()
    }

    /// Execute one SQL statement under the engine's configured resource
    /// limits ([`RecDbConfig::governor`]).
    ///
    /// Statements run through an internal default session: a `BEGIN` here
    /// opens a transaction that subsequent [`RecDb::execute`] calls join.
    /// Statements outside such a transaction auto-commit and run fully
    /// concurrently. For independent concurrent transactions, give each
    /// thread its own [`RecDb::session`].
    pub fn execute(&self, sql: &str) -> EngineResult<QueryResult> {
        let guard = self.config.governor.guard();
        self.execute_with_guard(sql, guard)
    }

    /// Execute one SQL statement under an explicit [`QueryGuard`],
    /// overriding the configured defaults. Keep a
    /// [`QueryGuard::cancel_handle`] to cancel from another thread; a
    /// cancelled statement aborts its transaction and releases its locks,
    /// including while parked in a lock wait.
    ///
    /// The statement runs inside a panic boundary: a panicking operator or
    /// model build surfaces as [`EngineError::Internal`] instead of
    /// unwinding through the caller, and the engine keeps serving.
    pub fn execute_with_guard(&self, sql: &str, guard: QueryGuard) -> EngineResult<QueryResult> {
        let statement = parse(sql)?;
        self.execute_default(statement, guard)
    }

    /// Execute a `;`-separated script, stopping at the first error.
    pub fn execute_script(&self, sql: &str) -> EngineResult<Vec<QueryResult>> {
        let statements = parse_many(sql)?;
        statements
            .into_iter()
            .map(|s| {
                let guard = self.config.governor.guard();
                self.execute_default(s, guard)
            })
            .collect()
    }

    /// Route one statement through the default session if it concerns an
    /// open default-session transaction (or starts one); otherwise run it
    /// as a free-standing auto-committed statement that holds no session
    /// lock — concurrent `execute` callers proceed in parallel.
    fn execute_default(
        &self,
        statement: Statement,
        guard: QueryGuard,
    ) -> EngineResult<QueryResult> {
        let mut state = self.default_session.lock();
        if state.txn.is_some()
            || matches!(
                statement,
                Statement::Begin | Statement::Commit | Statement::Rollback
            )
        {
            self.execute_statement(&mut state, statement, guard)
        } else {
            drop(state);
            let mut ephemeral = TxnState::default();
            self.execute_statement(&mut ephemeral, statement, guard)
        }
    }

    /// Execute a SELECT and return its rows (convenience).
    pub fn query(&self, sql: &str) -> EngineResult<ResultSet> {
        match self.execute(sql)? {
            QueryResult::Rows(r) => Ok(r),
            _ => Err(EngineError::Exec(recdb_exec::ExecError::Unsupported(
                "statement did not produce rows".into(),
            ))),
        }
    }

    /// Execute a SELECT under an explicit [`QueryGuard`] and return its
    /// rows.
    pub fn query_with_guard(&self, sql: &str, guard: QueryGuard) -> EngineResult<ResultSet> {
        match self.execute_with_guard(sql, guard)? {
            QueryResult::Rows(r) => Ok(r),
            _ => Err(EngineError::Exec(recdb_exec::ExecError::Unsupported(
                "statement did not produce rows".into(),
            ))),
        }
    }

    /// Render the optimized logical plan of a SELECT (EXPLAIN).
    pub fn explain(&self, sql: &str) -> EngineResult<String> {
        let Statement::Select(select) = parse(sql)? else {
            return Err(EngineError::Exec(recdb_exec::ExecError::Unsupported(
                "EXPLAIN is only available for SELECT".into(),
            )));
        };
        let catalog = self.catalog.read();
        let plan = optimize(build_logical(&select, &catalog)?);
        Ok(plan.explain())
    }

    /// The heart of statement execution: tick the clock, dispatch
    /// transaction control directly, and run everything else inside the
    /// session's (implicit or explicit) transaction under a panic
    /// boundary. Any failure — error, governor verdict, lock timeout, or
    /// contained panic — aborts the transaction: undo is applied and every
    /// lock is released before the error returns.
    pub(crate) fn execute_statement(
        &self,
        state: &mut TxnState,
        statement: Statement,
        guard: QueryGuard,
    ) -> EngineResult<QueryResult> {
        self.clock.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .counter_with(
                "recdb_statements_total",
                &[("kind", statement_kind(&statement))],
            )
            .inc();
        match statement {
            Statement::Begin => return self.begin_txn(state),
            Statement::Commit => {
                return self
                    .commit_txn(state, &guard)
                    .map_err(|e| flatten_guard_error_counted(&self.metrics, e));
            }
            Statement::Rollback => return self.rollback_txn(state),
            _ => {}
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.run_statement(state, statement, &guard)
        }));
        match outcome {
            Ok(Ok(result)) => {
                if state.txn.as_ref().is_some_and(|t| t.implicit) {
                    let txn = state.txn.take().expect("checked implicit txn present");
                    self.finish_autocommit(txn, &guard)
                        .map_err(|e| flatten_guard_error_counted(&self.metrics, e))?;
                }
                Ok(result)
            }
            Ok(Err(e)) => {
                let e = flatten_guard_error_counted(&self.metrics, e);
                self.abort_failed_statement(state, &e);
                Err(e)
            }
            Err(payload) => {
                let e = EngineError::Internal(panic_message(payload.as_ref()));
                self.abort_failed_statement(state, &e);
                Err(e)
            }
        }
    }

    /// Abort the transaction a failed statement ran in (if any). Inside an
    /// explicit transaction this rolls back the *whole* transaction, as in
    /// PostgreSQL without savepoints.
    fn abort_failed_statement(&self, state: &mut TxnState, error: &EngineError) {
        if let Some(txn) = state.txn.take() {
            let outcome = if matches!(error, EngineError::LockTimeout { .. }) {
                "timeout"
            } else {
                "abort"
            };
            self.abort_txn(txn, outcome);
        }
    }

    /// `BEGIN`: open an explicit transaction on this session.
    fn begin_txn(&self, state: &mut TxnState) -> EngineResult<QueryResult> {
        if state.txn.is_some() {
            return Err(EngineError::TransactionActive);
        }
        self.enter_txn_gate();
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        state.txn = Some(ActiveTxn::new(id, false));
        Ok(QueryResult::TransactionStarted)
    }

    /// `COMMIT`: make the transaction durable (commit marker + fsync),
    /// apply its deferred recommender side effects, and release its locks.
    ///
    /// Fail point: `txn::commit` fires before the commit marker; an armed
    /// fault rolls the transaction back instead.
    fn commit_txn(&self, state: &mut TxnState, guard: &QueryGuard) -> EngineResult<QueryResult> {
        let Some(txn) = state.txn.take() else {
            return Err(EngineError::NoActiveTransaction);
        };
        if let Err(e) = recdb_fault::fail_point("txn::commit") {
            self.abort_txn(txn, "abort");
            return Err(e.into());
        }
        if txn.wrote_wal {
            let result = {
                let _ckpt = self.ckpt_latch.read();
                let dur = self.durability.as_ref().expect("wrote_wal implies durable");
                let mut dur = dur.lock();
                dur.wal
                    .append(&WalRecord::TxnCommit { txn: txn.id })
                    .and_then(|_lsn| dur.wal.commit())
            };
            if let Err(e) = result {
                // The marker may or may not be durable; the abort path
                // writes a TxnAbort that unmarks it at recovery if it is.
                self.abort_txn(txn, "abort");
                return Err(e.into());
            }
        }
        // Past this point the transaction IS committed: a failing deferred
        // maintenance rebuild surfaces its error but undoes nothing.
        let deferred = self.apply_deferred(&txn, guard);
        self.locks.release_all(txn.id);
        self.exit_txn_gate();
        self.count_txn("commit");
        deferred?;
        Ok(QueryResult::TransactionCommitted)
    }

    /// `ROLLBACK`: undo the transaction and release its locks.
    ///
    /// Fail point: `txn::rollback` — the rollback itself still runs (undo
    /// must never be skipped); the armed fault only poisons the reported
    /// outcome.
    fn rollback_txn(&self, state: &mut TxnState) -> EngineResult<QueryResult> {
        let Some(txn) = state.txn.take() else {
            return Err(EngineError::NoActiveTransaction);
        };
        let fault = recdb_fault::fail_point("txn::rollback");
        self.abort_txn(txn, "abort");
        fault?;
        Ok(QueryResult::TransactionRolledBack)
    }

    /// Roll a transaction back: apply its physical undo log in reverse,
    /// write a best-effort `TxnAbort` marker, release every lock, and
    /// leave the transaction gate. Infallible — undo operations restore
    /// captured pre-images and cannot meaningfully fail halfway, and a
    /// panic anywhere in the undo/WAL section is contained so the lock
    /// release below always runs. Without that containment an abandoned
    /// session whose abort path panics (an armed `wal::append` fault, a
    /// corrupted pre-image) would strand its X-locks until process exit
    /// — and, aborting from `Session::drop` during an unwind, turn into
    /// a double panic that kills the process.
    pub(crate) fn abort_txn(&self, mut txn: ActiveTxn, outcome: &'static str) {
        let contained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Under the checkpoint latch: a snapshot must not capture the
            // half-undone (or half-done) state of an aborting statement.
            let _ckpt = self.ckpt_latch.read();
            if !txn.undo.is_empty() {
                let mut catalog = self.catalog.write();
                while let Some(op) = txn.undo.pop() {
                    self.undo_op(&mut catalog, op);
                }
            }
            if txn.wrote_wal {
                if let Some(dur) = &self.durability {
                    let mut dur = dur.lock();
                    // Best effort: recovery treats a missing commit marker
                    // as an abort anyway.
                    let _ = dur.wal.append(&WalRecord::TxnAbort { txn: txn.id });
                    let _ = dur.wal.commit();
                }
            }
        }));
        if contained.is_err() {
            self.metrics.counter("recdb_txn_abort_panics_total").inc();
        }
        self.locks.release_all(txn.id);
        if !txn.implicit {
            self.exit_txn_gate();
        }
        self.count_txn(outcome);
    }

    /// Apply one undo operation. Best-effort by construction: each op
    /// restores a state this transaction itself captured, so a missing
    /// table here means a later undo op (processed first, in reverse
    /// order) already covers it.
    fn undo_op(&self, catalog: &mut Catalog, op: UndoOp) {
        match op {
            UndoOp::TableTail {
                name,
                page_count,
                last_page,
            } => {
                if let Ok(t) = catalog.table_mut(&name) {
                    let _ = t.rollback_tail(page_count, last_page);
                }
            }
            UndoOp::TablePages { name, pages } => {
                if let Ok(t) = catalog.table_mut(&name) {
                    let _ = t.rollback_pages(pages);
                }
            }
            UndoOp::CreatedTable { name } => {
                let _ = catalog.drop_table(&name);
            }
            UndoOp::DroppedTable {
                table,
                recommenders,
            } => {
                catalog.restore_table(*table);
                self.recommenders.write().extend(recommenders);
            }
            UndoOp::CreatedIndex { table, index } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    let _ = t.drop_index(&index);
                }
            }
            UndoOp::DroppedIndex {
                table,
                index,
                columns,
            } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                    let _ = t.create_index(&index, &cols);
                }
            }
            UndoOp::CreatedRecommender { name } => {
                self.recommenders
                    .write()
                    .retain(|r| !r.name().eq_ignore_ascii_case(&name));
            }
            UndoOp::DroppedRecommender { recommender } => {
                self.recommenders.write().push(*recommender);
            }
        }
    }

    /// Finish an implicit (auto-commit) transaction after its one
    /// statement succeeded: apply deferred recommender side effects under
    /// the still-held locks, then release them.
    fn finish_autocommit(&self, txn: ActiveTxn, guard: &QueryGuard) -> EngineResult<()> {
        let deferred = self.apply_deferred(&txn, guard);
        self.locks.release_all(txn.id);
        self.count_txn("commit");
        deferred
    }

    /// Commit-time recommender side effects: item-statistics updates for
    /// every rating the transaction wrote, then the N% maintenance pass
    /// over the tables it touched. Runs while the transaction still holds
    /// its X locks, so the rebuild trains on exactly the committed state.
    fn apply_deferred(&self, txn: &ActiveTxn, guard: &QueryGuard) -> EngineResult<()> {
        if !txn.deferred_stats.is_empty() {
            let now = self.clock();
            let mut recs = self.recommenders.write();
            for (name, item) in &txn.deferred_stats {
                if let Some(rec) = recs.iter_mut().find(|r| r.name() == name) {
                    rec.record_insert(*item, now);
                }
            }
        }
        for table in &txn.touched {
            self.run_auto_maintenance(table, guard)?;
        }
        Ok(())
    }

    /// Count one finished transaction in `recdb_txn_total{outcome=…}`.
    fn count_txn(&self, outcome: &'static str) {
        self.metrics
            .counter_with("recdb_txn_total", &[("outcome", outcome)])
            .inc();
    }

    /// The table locks a statement needs, deduplicated and in
    /// deterministic (sorted) order so multi-lock statements from
    /// different sessions can never deadlock each other.
    fn statement_locks(&self, statement: &Statement) -> EngineResult<Vec<(String, LockMode)>> {
        use LockMode::{Exclusive, Shared};
        let mut locks: Vec<(String, LockMode)> = match statement {
            Statement::CreateTable { name, .. } | Statement::DropTable { name } => {
                vec![(name.to_ascii_lowercase(), Exclusive)]
            }
            Statement::Insert { table, .. }
            | Statement::Delete { table, .. }
            | Statement::Update { table, .. }
            | Statement::CreateIndex { table, .. }
            | Statement::DropIndex { table, .. } => {
                vec![(table.to_ascii_lowercase(), Exclusive)]
            }
            Statement::CreateRecommender { ratings_table, .. } => {
                vec![(ratings_table.to_ascii_lowercase(), Exclusive)]
            }
            Statement::DropRecommender { name } => {
                // Resolve the recommender to its ratings table; dropping
                // is serialized with writers of that table.
                let recs = self.recommenders.read();
                let rec = recs
                    .iter()
                    .find(|r| r.name().eq_ignore_ascii_case(name))
                    .ok_or_else(|| EngineError::RecommenderNotFound(name.clone()))?;
                vec![(rec.ratings_table().to_owned(), Exclusive)]
            }
            Statement::Select(select) | Statement::ExplainAnalyze(select) => select
                .from
                .iter()
                .map(|t| (t.table.to_ascii_lowercase(), Shared))
                .collect(),
            Statement::Explain(_) | Statement::Begin | Statement::Commit | Statement::Rollback => {
                Vec::new()
            }
        };
        // Sort by table, exclusive first, then keep the strongest mode
        // per table (dedup_by drops the *later* element of a pair).
        locks.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| (b.1 == Exclusive).cmp(&(a.1 == Exclusive)))
        });
        locks.dedup_by(|later, earlier| later.0 == earlier.0);
        Ok(locks)
    }

    /// Lazily open the implicit transaction a free-standing statement
    /// runs in, and return the transaction id.
    fn ensure_txn(&self, state: &mut TxnState) -> TxnId {
        if state.txn.is_none() {
            let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
            state.txn = Some(ActiveTxn::new(id, true));
        }
        state.txn.as_ref().expect("just ensured").id
    }

    /// The active transaction, after [`RecDb::ensure_txn`].
    fn active(state: &mut TxnState) -> &mut ActiveTxn {
        state
            .txn
            .as_mut()
            .expect("statement with locks runs inside a transaction")
    }

    /// Acquire the statement's locks, then dispatch it. Runs inside the
    /// panic boundary of [`RecDb::execute_statement`].
    fn run_statement(
        &self,
        state: &mut TxnState,
        statement: Statement,
        guard: &QueryGuard,
    ) -> EngineResult<QueryResult> {
        let needed = self.statement_locks(&statement)?;
        if !needed.is_empty() {
            let txn_id = self.ensure_txn(state);
            for (table, mode) in &needed {
                self.locks
                    .acquire(txn_id, table, *mode, self.config.lock_timeout, Some(guard))
                    .map_err(lock_to_engine)?;
            }
        }
        match statement {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::from_pairs(
                    &columns
                        .iter()
                        .map(|c| Ok((c.name.as_str(), map_type(&c.type_name)?)))
                        .collect::<EngineResult<Vec<_>>>()?,
                );
                let lower = name.to_ascii_lowercase();
                let txn = Self::active(state);
                let _ckpt = self.ckpt_latch.read();
                self.catalog.write().create_table(&name, schema.clone())?;
                txn.note_created_table(&lower);
                self.log_statement(
                    txn,
                    WalRecord::CreateTable {
                        name: lower,
                        schema,
                    },
                )?;
                Ok(QueryResult::TableCreated(name))
            }
            Statement::DropTable { name } => {
                let lower = name.to_ascii_lowercase();
                let txn = Self::active(state);
                let _ckpt = self.ckpt_latch.read();
                let table = self.catalog.write().take_table(&lower)?;
                // Recommenders created on the table are dropped with it
                // (and restored with it on rollback).
                let dropped = {
                    let mut recs = self.recommenders.write();
                    let mut dropped = Vec::new();
                    let mut k = 0;
                    while k < recs.len() {
                        if recs[k].ratings_table().eq_ignore_ascii_case(&lower) {
                            dropped.push(recs.remove(k));
                        } else {
                            k += 1;
                        }
                    }
                    dropped
                };
                txn.note_dropped_table(table, dropped);
                self.log_statement(txn, WalRecord::DropTable { name: lower })?;
                Ok(QueryResult::TableDropped(name))
            }
            Statement::Insert { table, rows } => {
                let tuples = rows
                    .iter()
                    .map(const_tuple)
                    .collect::<EngineResult<Vec<Tuple>>>()?;
                let n = self.insert_into(state, &table, tuples)?;
                Ok(QueryResult::Inserted(n))
            }
            Statement::CreateRecommender {
                name,
                ratings_table,
                users_column,
                items_column,
                ratings_column,
                algorithm,
            } => {
                // Cheap early check; re-checked under the write lock
                // before publishing (same-name creations on *different*
                // tables are not serialized by the table lock).
                if self
                    .recommenders
                    .read()
                    .iter()
                    .any(|r| r.name().eq_ignore_ascii_case(&name))
                {
                    return Err(EngineError::RecommenderExists(name));
                }
                let algorithm: Algorithm = algorithm
                    .parse()
                    .map_err(|_| recdb_exec::ExecError::UnknownAlgorithm(algorithm.clone()))?;
                // Scan under a short read latch, then train with no
                // engine latch held — the table's X lock (already ours)
                // keeps the scanned matrix authoritative.
                let matrix = {
                    let catalog = self.catalog.read();
                    load_matrix(
                        &catalog,
                        &ratings_table,
                        &users_column,
                        &items_column,
                        &ratings_column,
                    )?
                };
                let rec = Recommender::create_from_matrix(
                    &name,
                    &ratings_table,
                    &users_column,
                    &items_column,
                    &ratings_column,
                    algorithm,
                    self.config.train,
                    self.config.hotness_threshold,
                    self.clock(),
                    matrix,
                    Some(guard),
                    Arc::clone(&self.pool),
                )?;
                let build_time = rec.build_time();
                self.observe_model_build(rec.algorithm(), build_time);
                let log_record = WalRecord::CreateRecommender {
                    name: rec.name().to_owned(),
                    table: rec.ratings_table().to_owned(),
                    users: rec.users_column().to_owned(),
                    items: rec.items_column().to_owned(),
                    ratings: rec.ratings_column().to_owned(),
                    algorithm: rec.algorithm().name().to_owned(),
                };
                let txn = Self::active(state);
                let _ckpt = self.ckpt_latch.read();
                {
                    let mut recs = self.recommenders.write();
                    if recs.iter().any(|r| r.name().eq_ignore_ascii_case(&name)) {
                        return Err(EngineError::RecommenderExists(name));
                    }
                    txn.push_undo(UndoOp::CreatedRecommender {
                        name: rec.name().to_owned(),
                    });
                    recs.push(rec);
                }
                self.log_statement(txn, log_record)?;
                Ok(QueryResult::RecommenderCreated { name, build_time })
            }
            Statement::DropRecommender { name } => {
                let txn = Self::active(state);
                let _ckpt = self.ckpt_latch.read();
                {
                    let mut recs = self.recommenders.write();
                    let Some(pos) = recs
                        .iter()
                        .position(|r| r.name().eq_ignore_ascii_case(&name))
                    else {
                        return Err(EngineError::RecommenderNotFound(name));
                    };
                    let rec = recs.remove(pos);
                    txn.push_undo(UndoOp::DroppedRecommender {
                        recommender: Box::new(rec),
                    });
                }
                self.log_statement(
                    txn,
                    WalRecord::DropRecommender {
                        name: name.to_ascii_lowercase(),
                    },
                )?;
                Ok(QueryResult::RecommenderDropped(name))
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
            } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                let lower = table.to_ascii_lowercase();
                let txn = Self::active(state);
                let _ckpt = self.ckpt_latch.read();
                self.catalog
                    .write()
                    .table_mut(&lower)?
                    .create_index(&name, &cols)?;
                txn.push_undo(UndoOp::CreatedIndex {
                    table: lower.clone(),
                    index: name.clone(),
                });
                self.log_statement(
                    txn,
                    WalRecord::CreateIndex {
                        table: lower,
                        index: name.clone(),
                        columns,
                    },
                )?;
                Ok(QueryResult::IndexCreated(name))
            }
            Statement::DropIndex { name, table } => {
                let lower = table.to_ascii_lowercase();
                let txn = Self::active(state);
                let _ckpt = self.ckpt_latch.read();
                let columns = {
                    let mut catalog = self.catalog.write();
                    let t = catalog.table_mut(&lower)?;
                    // Capture the key columns first so rollback can
                    // re-create the index.
                    let ordinals = t.index(&name)?.key_columns().to_vec();
                    let columns: Vec<String> = ordinals
                        .iter()
                        .map(|&o| {
                            t.schema()
                                .column(o)
                                .expect("index key ordinal within schema")
                                .name
                                .clone()
                        })
                        .collect();
                    t.drop_index(&name)?;
                    columns
                };
                txn.push_undo(UndoOp::DroppedIndex {
                    table: lower.clone(),
                    index: name.clone(),
                    columns,
                });
                self.log_statement(
                    txn,
                    WalRecord::DropIndex {
                        table: lower,
                        index: name.clone(),
                    },
                )?;
                Ok(QueryResult::IndexDropped(name))
            }
            Statement::Explain(select) => {
                let catalog = self.catalog.read();
                let plan = optimize(build_logical(&select, &catalog)?);
                let schema = Schema::from_pairs(&[("plan", DataType::Text)]);
                let rows = plan
                    .explain()
                    .lines()
                    .map(|l| Tuple::new(vec![recdb_storage::Value::Text(l.to_owned())]))
                    .collect();
                Ok(QueryResult::Rows(ResultSet::new(schema, rows)))
            }
            Statement::ExplainAnalyze(select) => {
                let rows = self.run_explain_analyze(&select, guard)?;
                Ok(QueryResult::Rows(rows))
            }
            Statement::Delete { table, filter } => {
                let n = self.apply_delete(state, &table, filter.as_ref())?;
                Ok(QueryResult::Deleted(n))
            }
            Statement::Update {
                table,
                assignments,
                filter,
            } => {
                let n = self.apply_update(state, &table, &assignments, filter.as_ref())?;
                Ok(QueryResult::Updated(n))
            }
            Statement::Select(select) => {
                let rows = self.run_select(&select, guard)?;
                self.metrics
                    .counter("recdb_rows_returned_total")
                    .add(rows.len() as u64);
                Ok(QueryResult::Rows(rows))
            }
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                unreachable!("transaction control dispatched in execute_statement")
            }
        }
    }

    /// Append a statement's redo record for the enclosing transaction.
    /// Implicit transactions append + fsync immediately (plain records,
    /// byte-compatible with the pre-transaction WAL format); explicit
    /// transactions wrap records in [`WalRecord::InTxn`] and defer the
    /// fsync to COMMIT. Callers hold the checkpoint latch across the
    /// memory apply and this call.
    fn log_statement(&self, txn: &mut ActiveTxn, record: WalRecord) -> EngineResult<()> {
        let Some(dur) = &self.durability else {
            return Ok(());
        };
        let mut dur = dur.lock();
        if txn.implicit {
            let result = dur.wal.append(&record).and_then(|_lsn| dur.wal.commit());
            if result.is_err() {
                // The record may or may not have reached disk. Keep the
                // applied mutation in memory — a crash-and-reopen that
                // finds the record would replay it, and live state must
                // not diverge from that outcome. (This preserves the
                // engine's pre-transaction fault-injection semantics.)
                txn.undo.clear();
            }
            result?;
        } else {
            if !txn.wrote_wal {
                txn.wrote_wal = true;
                dur.wal.append(&WalRecord::TxnBegin { txn: txn.id })?;
            }
            dur.wal.append(&WalRecord::InTxn {
                txn: txn.id,
                record: Box::new(record),
            })?;
        }
        Ok(())
    }

    /// Record one model (re)build duration in the per-algorithm histogram.
    fn observe_model_build(&self, algorithm: Algorithm, build_time: Duration) {
        self.metrics
            .histogram_with(
                "recdb_model_build_micros",
                MODEL_BUILD_BUCKETS,
                &[("algorithm", algorithm.name())],
            )
            .observe(u64::try_from(build_time.as_micros()).unwrap_or(u64::MAX));
    }

    /// Delete rows matching `filter` (all rows when `None`). Recommender
    /// statistics and the N% rule are deferred to commit.
    fn apply_delete(
        &self,
        state: &mut TxnState,
        table: &str,
        filter: Option<&Expr>,
    ) -> EngineResult<usize> {
        let lower = table.to_ascii_lowercase();
        let (rids, touched) = {
            let catalog = self.catalog.read();
            let t = catalog.table(table)?;
            let schema = t.schema().clone();
            let bound = filter.map(|f| bind(f, &schema)).transpose()?;
            let item_ordinals = self.recommender_item_ordinals(&catalog, table)?;
            let mut rids = Vec::new();
            let mut touched: Vec<(String, i64)> = Vec::new();
            for (rid, tuple) in t.heap().scan() {
                let hit = match &bound {
                    Some(b) => b.eval_predicate(&tuple)?,
                    None => true,
                };
                if hit {
                    rids.push(rid);
                    for (rec, ord) in &item_ordinals {
                        if let Some(item) = tuple.get(*ord).and_then(recdb_storage::Value::as_int) {
                            touched.push((rec.clone(), item));
                        }
                    }
                }
            }
            (rids, touched)
        };
        let txn = Self::active(state);
        let _ckpt = self.ckpt_latch.read();
        {
            let mut catalog = self.catalog.write();
            txn.save_pages(&catalog, &lower)?;
            let t = catalog.table_mut(&lower)?;
            for rid in &rids {
                t.delete(*rid)?;
            }
        }
        let n = rids.len();
        self.log_statement(
            txn,
            WalRecord::Delete {
                table: lower.clone(),
                rids,
            },
        )?;
        txn.defer_stats(lower, touched);
        Ok(n)
    }

    /// Rewrite rows matching `filter` with the SET assignments applied.
    fn apply_update(
        &self,
        state: &mut TxnState,
        table: &str,
        assignments: &[(String, Expr)],
        filter: Option<&Expr>,
    ) -> EngineResult<usize> {
        let lower = table.to_ascii_lowercase();
        let (rids, new_tuples, touched) = {
            let catalog = self.catalog.read();
            let t = catalog.table(table)?;
            let schema = t.schema().clone();
            let bound = filter.map(|f| bind(f, &schema)).transpose()?;
            let sets: Vec<(usize, recdb_exec::BoundExpr)> = assignments
                .iter()
                .map(|(col, e)| Ok((schema.resolve(col)?, bind(e, &schema)?)))
                .collect::<EngineResult<_>>()?;
            let item_ordinals = self.recommender_item_ordinals(&catalog, table)?;
            let mut rids = Vec::new();
            let mut new_tuples = Vec::new();
            let mut touched: Vec<(String, i64)> = Vec::new();
            for (rid, tuple) in t.heap().scan() {
                let hit = match &bound {
                    Some(b) => b.eval_predicate(&tuple)?,
                    None => true,
                };
                if !hit {
                    continue;
                }
                let mut values = tuple.clone().into_values();
                for (ordinal, expr) in &sets {
                    values[*ordinal] = expr.eval(&tuple)?;
                }
                let new_tuple = Tuple::new(values);
                for (rec, ord) in &item_ordinals {
                    if let Some(item) = new_tuple.get(*ord).and_then(recdb_storage::Value::as_int) {
                        touched.push((rec.clone(), item));
                    }
                }
                rids.push(rid);
                new_tuples.push(new_tuple);
            }
            (rids, new_tuples, touched)
        };
        let txn = Self::active(state);
        let _ckpt = self.ckpt_latch.read();
        {
            let mut catalog = self.catalog.write();
            txn.save_pages(&catalog, &lower)?;
            let t = catalog.table_mut(&lower)?;
            for (rid, new_tuple) in rids.iter().zip(&new_tuples) {
                t.delete(*rid)?;
                t.insert(new_tuple.clone())?;
            }
        }
        let n = rids.len();
        self.log_statement(
            txn,
            WalRecord::Update {
                table: lower.clone(),
                changes: rids.into_iter().zip(new_tuples).collect(),
            },
        )?;
        txn.defer_stats(lower, touched);
        Ok(n)
    }

    /// `(recommender name, item-column ordinal)` pairs for recommenders
    /// created on `table`.
    fn recommender_item_ordinals(
        &self,
        catalog: &Catalog,
        table: &str,
    ) -> EngineResult<Vec<(String, usize)>> {
        let table_key = table.to_ascii_lowercase();
        let t = catalog.table(table)?;
        self.recommenders
            .read()
            .iter()
            .filter(|r| r.ratings_table() == table_key)
            .map(|r| Ok((r.name().to_owned(), t.schema().resolve(r.items_column())?)))
            .collect()
    }

    /// Run the N% rule for every recommender on `table`. A cancelled or
    /// faulted rebuild leaves the previous model serving (the publish in
    /// [`Recommender::publish`] is atomic and only reached on success).
    fn run_auto_maintenance(&self, table: &str, guard: &QueryGuard) -> EngineResult<()> {
        if !self.config.auto_maintenance {
            return Ok(());
        }
        let table_key = table.to_ascii_lowercase();
        let due: Vec<String> = self
            .recommenders
            .read()
            .iter()
            .filter(|r| {
                r.ratings_table() == table_key
                    && r.needs_maintenance(self.config.maintenance_threshold_pct)
            })
            .map(|r| r.name().to_owned())
            .collect();
        for name in due {
            self.rebuild_recommender(&name, guard)?;
        }
        Ok(())
    }

    /// Rebuild one recommender's model: capture its inputs under a brief
    /// read lock, scan the ratings under a brief catalog read latch, train
    /// with *no* engine lock held, and publish under a brief write lock.
    /// Readers serve the previous model throughout.
    fn rebuild_recommender(&self, name: &str, guard: &QueryGuard) -> EngineResult<()> {
        let (algorithm, train, index, table, users, items, ratings) = {
            let recs = self.recommenders.read();
            let Some(rec) = recs.iter().find(|r| r.name() == name) else {
                return Ok(()); // dropped concurrently — nothing to rebuild
            };
            (
                rec.algorithm(),
                rec.train_config(),
                rec.index(),
                rec.ratings_table().to_owned(),
                rec.users_column().to_owned(),
                rec.items_column().to_owned(),
                rec.ratings_column().to_owned(),
            )
        };
        let matrix = {
            let catalog = self.catalog.read();
            load_matrix(&catalog, &table, &users, &items, &ratings)?
        };
        let staged = Recommender::stage_rebuild(
            algorithm,
            &train,
            index.as_deref(),
            matrix,
            Some(guard),
            &self.pool,
        )?;
        self.observe_model_build(algorithm, staged.build_time());
        let mut recs = self.recommenders.write();
        if let Some(rec) = recs.iter_mut().find(|r| r.name() == name) {
            rec.publish(staged);
        }
        Ok(())
    }

    /// Insert pre-built tuples into a table as one auto-committed
    /// transaction, updating recommender statistics and running the N%
    /// maintenance rule. This is also the bulk-loading path used by the
    /// dataset loaders.
    pub fn insert_tuples(&self, table: &str, tuples: Vec<Tuple>) -> EngineResult<usize> {
        let guard = self.config.governor.guard();
        let mut state = TxnState::default();
        let lower = table.to_ascii_lowercase();
        let result = (|| {
            let txn_id = self.ensure_txn(&mut state);
            self.locks
                .acquire(
                    txn_id,
                    &lower,
                    LockMode::Exclusive,
                    self.config.lock_timeout,
                    Some(&guard),
                )
                .map_err(lock_to_engine)?;
            self.insert_into(&mut state, table, tuples)
        })();
        match result {
            Ok(n) => {
                let txn = state.txn.take().expect("insert ran inside a transaction");
                self.finish_autocommit(txn, &guard)
                    .map_err(|e| flatten_guard_error_counted(&self.metrics, e))?;
                Ok(n)
            }
            Err(e) => {
                let e = flatten_guard_error_counted(&self.metrics, e);
                self.abort_failed_statement(&mut state, &e);
                Err(e)
            }
        }
    }

    /// The INSERT body: capture the append-only undo pre-image, append
    /// the tuples, log, and defer recommender statistics to commit.
    /// Callers hold the table's X lock.
    fn insert_into(
        &self,
        state: &mut TxnState,
        table: &str,
        tuples: Vec<Tuple>,
    ) -> EngineResult<usize> {
        let lower = table.to_ascii_lowercase();
        let n = tuples.len();
        let touched = {
            let catalog = self.catalog.read();
            let item_ordinals = self.recommender_item_ordinals(&catalog, table)?;
            let mut touched: Vec<(String, i64)> = Vec::new();
            for tuple in &tuples {
                for (rec, ord) in &item_ordinals {
                    if let Some(item) = tuple.get(*ord).and_then(recdb_storage::Value::as_int) {
                        touched.push((rec.clone(), item));
                    }
                }
            }
            touched
        };
        let txn = Self::active(state);
        let _ckpt = self.ckpt_latch.read();
        {
            let mut catalog = self.catalog.write();
            txn.save_tail(&catalog, &lower)?;
            let t = catalog.table_mut(&lower)?;
            for tuple in &tuples {
                t.insert(tuple.clone())?;
            }
        }
        self.log_statement(
            txn,
            WalRecord::Insert {
                table: lower.clone(),
                tuples,
            },
        )?;
        txn.defer_stats(lower, touched);
        Ok(n)
    }

    /// Pre-compute the full RecScoreIndex for every user of a recommender
    /// (§IV-C pre-computation). Holds the recommender write lock for the
    /// duration — recommendation queries wait; run it at load time.
    pub fn materialize(&self, recommender: &str) -> EngineResult<()> {
        let threads = self.config.build_threads;
        let guard = self.config.governor.guard();
        let mut recs = self.recommenders.write();
        let rec = recs
            .iter_mut()
            .find(|r| r.name().eq_ignore_ascii_case(recommender))
            .ok_or_else(|| EngineError::RecommenderNotFound(recommender.to_owned()))?;
        let result = rec.materialize_all_governed(threads, Some(&guard));
        self.metrics
            .gauge_with("recdb_materialized_entries", &[("recommender", rec.name())])
            .set(rec.materialized_entries() as i64);
        result.map_err(|e| flatten_guard_error_counted(&self.metrics, e))
    }

    /// Run one cache-manager pass (Algorithm 4) for a recommender at the
    /// current tick.
    pub fn run_cache_manager(
        &self,
        recommender: &str,
    ) -> EngineResult<crate::cache::CacheDecision> {
        let now = self.clock();
        let mut recs = self.recommenders.write();
        let rec = recs
            .iter_mut()
            .find(|r| r.name().eq_ignore_ascii_case(recommender))
            .ok_or_else(|| EngineError::RecommenderNotFound(recommender.to_owned()))?;
        let decision = rec.run_cache_manager(now);
        self.metrics
            .counter("recdb_cache_admitted_total")
            .add(decision.admitted.len() as u64);
        self.metrics
            .counter("recdb_cache_evicted_total")
            .add(decision.evicted.len() as u64);
        self.metrics
            .gauge_with("recdb_materialized_entries", &[("recommender", rec.name())])
            .set(rec.materialized_entries() as i64);
        Ok(decision)
    }

    fn run_select(&self, select: &SelectStatement, guard: &QueryGuard) -> EngineResult<ResultSet> {
        let catalog = self.catalog.read();
        let plan = optimize(build_logical(select, &catalog)?);
        self.record_query_stats(&plan);
        let ctx =
            ExecContext::new(&catalog, self, guard.clone()).with_metrics(Arc::clone(&self.metrics));
        Ok(execute_plan(&plan, &ctx)?)
    }

    /// Run a SELECT with per-operator profiling and render the annotated
    /// plan tree (`EXPLAIN ANALYZE`). The statement really executes —
    /// side effects on metrics and query statistics are identical to a
    /// plain run — but the result rows are discarded in favour of the
    /// profile, as in PostgreSQL.
    fn run_explain_analyze(
        &self,
        select: &SelectStatement,
        guard: &QueryGuard,
    ) -> EngineResult<ResultSet> {
        let catalog = self.catalog.read();
        let plan = optimize(build_logical(select, &catalog)?);
        self.record_query_stats(&plan);
        let ctx =
            ExecContext::new(&catalog, self, guard.clone()).with_metrics(Arc::clone(&self.metrics));
        let (rows, profile) = execute_plan_profiled(&plan, &ctx, Arc::clone(&self.wall))?;
        self.metrics
            .counter("recdb_rows_returned_total")
            .add(rows.len() as u64);
        let schema = Schema::from_pairs(&[("plan", DataType::Text)]);
        let lines = profile
            .render()
            .into_iter()
            .map(|l| Tuple::new(vec![recdb_storage::Value::Text(l)]))
            .collect();
        Ok(ResultSet::new(schema, lines))
    }

    /// Update the Users Histogram (`QC_u`, `TS_u`) for recommendation
    /// queries with a resolved user predicate.
    fn record_query_stats(&self, plan: &LogicalPlan) {
        let Some(node) = find_recommend(plan) else {
            return;
        };
        let Some(users) = &node.user_ids else {
            return;
        };
        let recs = self.recommenders.read();
        let Some(rec) = recs.iter().find(|r| {
            r.ratings_table().eq_ignore_ascii_case(&node.ratings_table)
                && r.algorithm() == node.algorithm
        }) else {
            return;
        };
        for &u in users {
            rec.record_query(u, self.clock());
        }
    }
}

impl RecommenderProvider for RecDb {
    fn model(
        &self,
        ratings_table: &str,
        algorithm: Algorithm,
    ) -> Option<Arc<recdb_algo::RecModel>> {
        self.recommenders
            .read()
            .iter()
            .find(|r| {
                r.ratings_table().eq_ignore_ascii_case(ratings_table) && r.algorithm() == algorithm
            })
            .map(Recommender::model)
    }

    fn rec_index(&self, ratings_table: &str, algorithm: Algorithm) -> Option<Arc<RecScoreIndex>> {
        self.recommenders
            .read()
            .iter()
            .find(|r| {
                r.ratings_table().eq_ignore_ascii_case(ratings_table) && r.algorithm() == algorithm
            })
            .and_then(Recommender::index)
    }
}

/// Shared read access to the catalog, [`Deref`]-transparent.
pub struct CatalogRef<'a>(RwLockReadGuard<'a, Catalog>);

impl Deref for CatalogRef<'_> {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        &self.0
    }
}

/// Exclusive access to the catalog, [`DerefMut`]-transparent. See
/// [`RecDb::catalog_mut`] for the (narrow) intended use.
pub struct CatalogMut<'a>(RwLockWriteGuard<'a, Catalog>);

impl Deref for CatalogMut<'_> {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        &self.0
    }
}

impl DerefMut for CatalogMut<'_> {
    fn deref_mut(&mut self) -> &mut Catalog {
        &mut self.0
    }
}

/// Shared read access to one recommender, [`Deref`]-transparent.
pub struct RecommenderRef<'a> {
    recs: RwLockReadGuard<'a, Vec<Recommender>>,
    idx: usize,
}

impl Deref for RecommenderRef<'_> {
    type Target = Recommender;
    fn deref(&self) -> &Recommender {
        &self.recs[self.idx]
    }
}

/// Exclusive access to one recommender, [`DerefMut`]-transparent.
pub struct RecommenderMut<'a> {
    recs: RwLockWriteGuard<'a, Vec<Recommender>>,
    idx: usize,
}

impl Deref for RecommenderMut<'_> {
    type Target = Recommender;
    fn deref(&self) -> &Recommender {
        &self.recs[self.idx]
    }
}

impl DerefMut for RecommenderMut<'_> {
    fn deref_mut(&mut self) -> &mut Recommender {
        &mut self.recs[self.idx]
    }
}

/// Reopens the checkpoint drain gate when the checkpoint finishes (or
/// fails), waking queued `BEGIN`s.
struct DrainGuard<'a> {
    gate: &'a StdMutex<TxnGate>,
    cond: &'a Condvar,
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        lock_gate(self.gate).draining = false;
        self.cond.notify_all();
    }
}

/// Lock the gate mutex ignoring poison (the gate is two plain integers;
/// no invariant can tear).
fn lock_gate(m: &StdMutex<TxnGate>) -> StdMutexGuard<'_, TxnGate> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Map a lock-layer failure to a first-class engine error.
fn lock_to_engine(e: LockError) -> EngineError {
    match e {
        LockError::Timeout { table, waited } => EngineError::LockTimeout { table, waited },
        LockError::Cancelled(g) => g.into(),
        LockError::Fault(f) => f.into(),
    }
}

/// Redo one WAL record during recovery. Uses the same catalog entry
/// points as the live engine (so heap appends land on the same record
/// ids), but skips logging, recommender statistics, and maintenance —
/// models are rebuilt once, after the whole tail is replayed.
fn replay_record(
    catalog: &mut Catalog,
    record: WalRecord,
    defs: &mut Vec<RecommenderDef>,
) -> EngineResult<()> {
    match record {
        WalRecord::CreateTable { name, schema } => {
            catalog.create_table(&name, schema)?;
        }
        WalRecord::DropTable { name } => {
            catalog.drop_table(&name)?;
            defs.retain(|d| !d.table.eq_ignore_ascii_case(&name));
        }
        WalRecord::Insert { table, tuples } => {
            let t = catalog.table_mut(&table)?;
            for tuple in tuples {
                t.insert(tuple)?;
            }
        }
        WalRecord::Delete { table, rids } => {
            let t = catalog.table_mut(&table)?;
            for rid in rids {
                t.delete(rid)?;
            }
        }
        WalRecord::Update { table, changes } => {
            let t = catalog.table_mut(&table)?;
            for (rid, tuple) in changes {
                t.delete(rid)?;
                t.insert(tuple)?;
            }
        }
        WalRecord::CreateIndex {
            table,
            index,
            columns,
        } => {
            let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            catalog.table_mut(&table)?.create_index(&index, &cols)?;
        }
        WalRecord::DropIndex { table, index } => {
            catalog.table_mut(&table)?.drop_index(&index)?;
        }
        WalRecord::CreateRecommender {
            name,
            table,
            users,
            items,
            ratings,
            algorithm,
        } => {
            defs.retain(|d| !d.name.eq_ignore_ascii_case(&name));
            defs.push(RecommenderDef {
                name,
                table,
                users,
                items,
                ratings,
                algorithm,
            });
        }
        WalRecord::DropRecommender { name } => {
            defs.retain(|d| !d.name.eq_ignore_ascii_case(&name));
        }
        // Transaction markers are consumed by the committed-set pass;
        // they carry no redo work of their own.
        WalRecord::TxnBegin { .. }
        | WalRecord::TxnCommit { .. }
        | WalRecord::TxnAbort { .. }
        | WalRecord::InTxn { .. } => {}
    }
    Ok(())
}

/// Lift governor verdicts buried in the executor layer to first-class
/// engine errors (`Cancelled` / `ResourceExhausted`).
fn flatten_guard_error(e: EngineError) -> EngineError {
    match e {
        EngineError::Exec(recdb_exec::ExecError::Guard(g)) => g.into(),
        other => other,
    }
}

/// [`flatten_guard_error`] plus metric recording: governor verdicts bump
/// `recdb_governor_cancellations_total{cause=…}` so operators can see *why*
/// queries are being killed without scraping logs.
fn flatten_guard_error_counted(metrics: &Registry, e: EngineError) -> EngineError {
    let e = flatten_guard_error(e);
    let cause = match &e {
        EngineError::Cancelled { .. } => Some("cancelled"),
        EngineError::ResourceExhausted { resource, .. } => Some(*resource),
        _ => None,
    };
    if let Some(cause) = cause {
        metrics
            .counter_with("recdb_governor_cancellations_total", &[("cause", cause)])
            .inc();
    }
    e
}

/// The wall clock used for `EXPLAIN ANALYZE` timings: the configured
/// [`RecDbConfig::profile_clock`] if present (tests inject a manual clock
/// for determinism), otherwise a real monotonic [`SystemClock`].
fn profile_clock_or_wall(config: &RecDbConfig) -> Arc<dyn Clock> {
    config
        .profile_clock
        .clone()
        .unwrap_or_else(|| Arc::new(SystemClock::new()) as Arc<dyn Clock>)
}

/// Label value for `recdb_statements_total{kind=…}`.
fn statement_kind(statement: &Statement) -> &'static str {
    match statement {
        Statement::CreateTable { .. } => "create_table",
        Statement::DropTable { .. } => "drop_table",
        Statement::Insert { .. } => "insert",
        Statement::CreateRecommender { .. } => "create_recommender",
        Statement::DropRecommender { .. } => "drop_recommender",
        Statement::Delete { .. } => "delete",
        Statement::Update { .. } => "update",
        Statement::CreateIndex { .. } => "create_index",
        Statement::DropIndex { .. } => "drop_index",
        Statement::Explain(_) => "explain",
        Statement::ExplainAnalyze(_) => "explain_analyze",
        Statement::Select(_) => "select",
        Statement::Begin => "begin",
        Statement::Commit => "commit",
        Statement::Rollback => "rollback",
    }
}

/// Best-effort extraction of a caught panic's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "statement panicked".to_owned()
    }
}

fn find_recommend(plan: &LogicalPlan) -> Option<&recdb_exec::plan::RecommendNode> {
    match plan {
        LogicalPlan::Recommend(node) => Some(node),
        LogicalPlan::RecJoin { rec, .. } => Some(rec),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. } => find_recommend(input),
        LogicalPlan::Join { left, right, .. } => {
            find_recommend(left).or_else(|| find_recommend(right))
        }
        LogicalPlan::Scan { .. } => None,
    }
}

/// Map a checksum failure in a durable file to an [`EngineError`] naming
/// the affected table (page files are named `<table>.<lsn>.tbl`; anything
/// else is the catalog manifest itself).
fn corruption_to_engine(e: StorageError) -> EngineError {
    match &e {
        StorageError::Corruption { file, .. } => {
            let table = match file.split_once('.') {
                Some((table, _)) if file.ends_with(".tbl") => table.to_owned(),
                _ => "catalog".to_owned(),
            };
            EngineError::Corruption { table, source: e }
        }
        _ => EngineError::Storage(e),
    }
}

/// Serialize recommender definitions into the checkpoint's opaque
/// metadata blob: a count followed by six strings per definition.
fn encode_recommender_meta(recommenders: &[Recommender]) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u32(&mut buf, recommenders.len() as u32);
    for r in recommenders {
        codec::put_str(&mut buf, r.name());
        codec::put_str(&mut buf, r.ratings_table());
        codec::put_str(&mut buf, r.users_column());
        codec::put_str(&mut buf, r.items_column());
        codec::put_str(&mut buf, r.ratings_column());
        codec::put_str(&mut buf, r.algorithm().name());
    }
    buf
}

/// Inverse of [`encode_recommender_meta`]. An empty blob (fresh database,
/// or a pre-recommender checkpoint) decodes to no definitions.
fn decode_recommender_meta(bytes: &[u8]) -> EngineResult<Vec<RecommenderDef>> {
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    let mut r = recdb_storage::Reader::new(bytes, "recommender metadata");
    let count = r.take_u32()? as usize;
    let mut defs = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        defs.push(RecommenderDef {
            name: r.take_str()?,
            table: r.take_str()?,
            users: r.take_str()?,
            items: r.take_str()?,
            ratings: r.take_str()?,
            algorithm: r.take_str()?,
        });
    }
    Ok(defs)
}

/// Map a SQL type name to a [`DataType`], with common synonyms.
fn map_type(name: &str) -> EngineResult<DataType> {
    match name.to_ascii_lowercase().as_str() {
        "int" | "integer" | "bigint" | "smallint" => Ok(DataType::Int),
        "float" | "real" | "double" | "numeric" | "decimal" => Ok(DataType::Float),
        "text" | "varchar" | "char" | "string" => Ok(DataType::Text),
        "bool" | "boolean" => Ok(DataType::Bool),
        "point" | "geometry" => Ok(DataType::Point),
        "rect" | "region" => Ok(DataType::Rect),
        other => Err(EngineError::UnknownType(other.to_owned())),
    }
}

/// Evaluate an INSERT row of constant expressions to a tuple.
fn const_tuple(row: &Vec<Expr>) -> EngineResult<Tuple> {
    let empty_schema = Schema::default();
    let empty_tuple = Tuple::default();
    let mut values = Vec::with_capacity(row.len());
    for expr in row {
        // A fast path for plain literals avoids the bind machinery.
        if let Expr::Literal(lit) = expr {
            values.push(literal_value(lit));
            continue;
        }
        let bound =
            bind(expr, &empty_schema).map_err(|e| EngineError::NonConstantInsert(e.to_string()))?;
        let value = bound
            .eval(&empty_tuple)
            .map_err(|e| EngineError::NonConstantInsert(e.to_string()))?;
        values.push(value);
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_storage::Value;

    /// Stand up the paper's Figure 1 database through pure SQL.
    fn figure1_db() -> RecDb {
        let db = RecDb::new();
        db.execute_script(
            "CREATE TABLE users (uid INT, name TEXT, city TEXT);
             CREATE TABLE movies (mid INT, name TEXT, genre TEXT);
             CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
             INSERT INTO users VALUES (1, 'Alice', 'Minneapolis'), (2, 'Bob', 'Austin'),
                                      (3, 'Carol', 'Minneapolis'), (4, 'Eve', 'San Diego');
             INSERT INTO movies VALUES (1, 'Spartacus', 'Action'),
                                       (2, 'Inception', 'Suspense'),
                                       (3, 'The Matrix', 'Sci-Fi');
             INSERT INTO ratings VALUES (1, 1, 1.5), (2, 2, 3.5), (2, 1, 4.5),
                                        (2, 3, 2.0), (3, 2, 1.0), (3, 1, 2.0), (4, 2, 1.0);",
        )
        .unwrap();
        db
    }

    fn with_recommender() -> RecDb {
        let db = figure1_db();
        db.execute(
            "CREATE RECOMMENDER GeneralRec ON ratings \
             USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
        )
        .unwrap();
        db
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<RecDb>();
        check::<Arc<RecDb>>();
    }

    #[test]
    fn ddl_and_inserts() {
        let db = figure1_db();
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 7);
        assert_eq!(db.catalog().table("users").unwrap().tuple_count(), 4);
    }

    #[test]
    fn create_recommender_via_sql() {
        let db = figure1_db();
        let result = db
            .execute(
                "CREATE RECOMMENDER GeneralRec ON ratings \
                 USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
            )
            .unwrap();
        assert!(matches!(
            result,
            QueryResult::RecommenderCreated { ref name, .. } if name == "GeneralRec"
        ));
        assert_eq!(db.recommender_names(), vec!["generalrec"]);
        let err = db
            .execute(
                "CREATE RECOMMENDER GeneralRec ON ratings \
                 USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING SVD",
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::RecommenderExists(_)));
    }

    #[test]
    fn paper_query1_end_to_end() {
        let db = with_recommender();
        let rows = db
            .query(
                "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10",
            )
            .unwrap();
        assert_eq!(rows.len(), 2, "user 1 has two unseen movies");
        assert_eq!(rows.value(0, "uid").unwrap(), &Value::Int(1));
    }

    #[test]
    fn missing_recommender_reported_via_sql() {
        let db = figure1_db();
        let err = db
            .query(
                "SELECT R.uid FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF",
            )
            .unwrap_err();
        assert!(err.to_string().contains("CREATE RECOMMENDER"));
    }

    #[test]
    fn drop_recommender_and_table_cascade() {
        let db = with_recommender();
        db.execute("DROP RECOMMENDER GeneralRec").unwrap();
        assert!(db.recommender_names().is_empty());
        assert!(matches!(
            db.execute("DROP RECOMMENDER GeneralRec").unwrap_err(),
            EngineError::RecommenderNotFound(_)
        ));
        // Re-create, then drop the table: the recommender goes with it.
        db.execute(
            "CREATE RECOMMENDER R2 ON ratings \
             USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
        )
        .unwrap();
        db.execute("DROP TABLE ratings").unwrap();
        assert!(db.recommender_names().is_empty());
    }

    #[test]
    fn insert_triggers_n_percent_maintenance() {
        let db = with_recommender();
        assert_eq!(
            db.recommender("GeneralRec").unwrap().model().trained_on(),
            7
        );
        // 10% of 7 ratings → a single insert triggers a rebuild.
        db.execute("INSERT INTO ratings VALUES (4, 3, 5.0)")
            .unwrap();
        let rec = db.recommender("GeneralRec").unwrap();
        assert_eq!(rec.model().trained_on(), 8, "model rebuilt");
        assert_eq!(rec.pending_updates(), 0);
        assert_eq!(rec.model().score(4, 3), 5.0);
    }

    #[test]
    fn maintenance_can_be_deferred() {
        let db = RecDb::with_config(RecDbConfig {
            auto_maintenance: false,
            ..Default::default()
        });
        db.execute_script(
            "CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
             INSERT INTO ratings VALUES (1, 1, 5.0), (2, 1, 4.0);
             CREATE RECOMMENDER R ON ratings USERS FROM uid ITEMS FROM iid \
             RATINGS FROM ratingval USING ItemCosCF;
             INSERT INTO ratings VALUES (2, 2, 3.0);",
        )
        .unwrap();
        let rec = db.recommender("R").unwrap();
        assert_eq!(rec.model().trained_on(), 2, "not rebuilt");
        assert_eq!(rec.pending_updates(), 1);
    }

    #[test]
    fn materialize_then_topk_uses_index() {
        let db = with_recommender();
        db.materialize("GeneralRec").unwrap();
        assert_eq!(
            db.recommender("GeneralRec").unwrap().materialized_entries(),
            5
        );
        let rows = db
            .query(
                "SELECT R.iid, R.ratingval FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn query_stats_recorded_for_user_predicates() {
        let db = with_recommender();
        for _ in 0..3 {
            db.query(
                "SELECT R.iid FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1",
            )
            .unwrap();
        }
        let rec = db.recommender("GeneralRec").unwrap();
        rec.with_stats(|s| {
            assert_eq!(s.user(1).unwrap().query_count, 3);
            assert!(s.user(2).is_none());
        });
    }

    #[test]
    fn type_synonyms_in_create_table() {
        let db = RecDb::new();
        db.execute(
            "CREATE TABLE t (a INTEGER, b DOUBLE, c VARCHAR, d BOOLEAN, e GEOMETRY, f REGION)",
        )
        .unwrap();
        let schema = db.catalog().table("t").unwrap().schema().clone();
        assert_eq!(schema.column(0).unwrap().data_type, DataType::Int);
        assert_eq!(schema.column(4).unwrap().data_type, DataType::Point);
        assert_eq!(schema.column(5).unwrap().data_type, DataType::Rect);
        assert!(matches!(
            db.execute("CREATE TABLE bad (a BLOB)").unwrap_err(),
            EngineError::UnknownType(_)
        ));
    }

    #[test]
    fn insert_constant_expressions() {
        let db = RecDb::new();
        db.execute("CREATE TABLE t (a INT, p POINT, r RECT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1 + 2, POINT(1, 2), RECT(0, 0, 5, 5))")
            .unwrap();
        let rows = db.query("SELECT * FROM t").unwrap();
        assert_eq!(rows.value(0, "a").unwrap(), &Value::Int(3));
        assert_eq!(rows.value(0, "p").unwrap(), &Value::Point(1.0, 2.0));
        // Non-constant rows are rejected.
        let err = db.execute("INSERT INTO t VALUES (x, POINT(1,2), RECT(0,0,1,1))");
        assert!(matches!(
            err.unwrap_err(),
            EngineError::NonConstantInsert(_)
        ));
    }

    #[test]
    fn explain_shows_optimized_plan() {
        let db = with_recommender();
        let text = db
            .explain(
                "SELECT R.iid FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1",
            )
            .unwrap();
        assert!(text.contains("FilterRecommend"), "{text}");
    }

    #[test]
    fn create_and_drop_index_via_sql() {
        let db = figure1_db();
        assert!(matches!(
            db.execute("CREATE INDEX movies_mid ON movies (mid)")
                .unwrap(),
            QueryResult::IndexCreated(_)
        ));
        assert!(db
            .catalog()
            .table("movies")
            .unwrap()
            .index("movies_mid")
            .is_ok());
        assert!(matches!(
            db.execute("DROP INDEX movies_mid ON movies").unwrap(),
            QueryResult::IndexDropped(_)
        ));
        assert!(db.execute("DROP INDEX movies_mid ON movies").is_err());
        assert!(db.execute("CREATE INDEX i ON movies (nosuch)").is_err());
    }

    #[test]
    fn explain_statement_returns_plan_rows() {
        let db = with_recommender();
        let rows = db
            .query(
                "EXPLAIN SELECT R.iid FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1",
            )
            .unwrap();
        let text: Vec<String> = rows
            .column_values("plan")
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert!(
            text.iter().any(|l| l.contains("FilterRecommend")),
            "{text:?}"
        );
    }

    #[test]
    fn clock_ticks_per_statement() {
        let db = RecDb::new();
        assert_eq!(db.clock(), 0);
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        assert_eq!(db.clock(), 2);
    }

    #[test]
    fn delete_statement_removes_rows_and_retrains() {
        let db = with_recommender();
        // Delete all of user 2's ratings (4 rows of 7 → well past N%).
        let result = db.execute("DELETE FROM ratings WHERE uid = 2").unwrap();
        assert!(matches!(result, QueryResult::Deleted(3)));
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 4);
        let rec = db.recommender("GeneralRec").unwrap();
        assert_eq!(rec.model().trained_on(), 4, "model rebuilt without user 2");
        assert_eq!(rec.model().score(2, 1), 0.0, "user 2 gone from the model");
    }

    #[test]
    fn update_statement_rewrites_rows() {
        let db = with_recommender();
        let result = db
            .execute("UPDATE ratings SET ratingval = 5.0 WHERE uid = 1 AND iid = 1")
            .unwrap();
        assert!(matches!(result, QueryResult::Updated(1)));
        let rows = db
            .query("SELECT ratingval FROM ratings WHERE uid = 1 AND iid = 1")
            .unwrap();
        assert_eq!(rows.value(0, "ratingval").unwrap(), &Value::Float(5.0));
        // The re-rate reached the model through maintenance.
        let rec = db.recommender("GeneralRec").unwrap();
        assert_eq!(rec.model().score(1, 1), 5.0);
    }

    #[test]
    fn update_with_expression_and_no_filter() {
        let db = figure1_db();
        let result = db
            .execute("UPDATE ratings SET ratingval = ratingval + 1")
            .unwrap();
        assert!(matches!(result, QueryResult::Updated(7)));
        let rows = db
            .query("SELECT ratingval FROM ratings WHERE uid = 2 AND iid = 1")
            .unwrap();
        assert_eq!(rows.value(0, "ratingval").unwrap(), &Value::Float(5.5));
    }

    #[test]
    fn delete_everything() {
        let db = figure1_db();
        let result = db.execute("DELETE FROM ratings").unwrap();
        assert!(matches!(result, QueryResult::Deleted(7)));
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 0);
    }

    #[test]
    fn aggregate_sql_through_engine() {
        let db = figure1_db();
        let rows = db
            .query(
                "SELECT genre, COUNT(*) AS n FROM movies GROUP BY genre \
                 ORDER BY genre ASC",
            )
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.value(0, "genre").unwrap().as_text(), Some("Action"));
        assert_eq!(rows.value(0, "n").unwrap(), &Value::Int(1));
        // Global aggregate.
        let rows = db
            .query("SELECT COUNT(*) AS n, AVG(ratingval) AS mean FROM ratings")
            .unwrap();
        assert_eq!(rows.value(0, "n").unwrap(), &Value::Int(7));
        let mean = rows.value(0, "mean").unwrap().as_f64().unwrap();
        assert!((mean - 15.5 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn query_on_non_select_errors() {
        let db = RecDb::new();
        assert!(db.query("CREATE TABLE t (a INT)").is_err());
    }

    // ---- transactions & concurrency ----

    #[test]
    fn explicit_txn_commit_makes_writes_visible() {
        let db = figure1_db();
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        assert!(session.in_transaction());
        session
            .execute("INSERT INTO ratings VALUES (9, 9, 4.0)")
            .unwrap();
        session
            .execute("INSERT INTO ratings VALUES (9, 8, 3.0)")
            .unwrap();
        assert!(matches!(
            session.execute("COMMIT").unwrap(),
            QueryResult::TransactionCommitted
        ));
        assert!(!session.in_transaction());
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 9);
        assert!(!db.lock_table().is_locked("ratings"), "locks released");
    }

    #[test]
    fn rollback_undoes_inserts_deletes_and_updates() {
        let db = figure1_db();
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        session
            .execute("INSERT INTO ratings VALUES (9, 9, 4.0)")
            .unwrap();
        session
            .execute("DELETE FROM ratings WHERE uid = 2")
            .unwrap();
        session
            .execute("UPDATE ratings SET ratingval = 0.0 WHERE uid = 1")
            .unwrap();
        session.execute("ROLLBACK").unwrap();
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 7);
        let rows = db
            .query("SELECT ratingval FROM ratings WHERE uid = 1 AND iid = 1")
            .unwrap();
        assert_eq!(rows.value(0, "ratingval").unwrap(), &Value::Float(1.5));
        assert!(!db.lock_table().is_locked("ratings"));
    }

    #[test]
    fn rollback_restores_ddl() {
        let db = with_recommender();
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        session.execute("CREATE TABLE scratch (a INT)").unwrap();
        session.execute("INSERT INTO scratch VALUES (1)").unwrap();
        session
            .execute("CREATE INDEX r_uid ON ratings (uid)")
            .unwrap();
        session.execute("DROP RECOMMENDER GeneralRec").unwrap();
        session.execute("DROP TABLE movies").unwrap();
        session.execute("ROLLBACK").unwrap();
        assert!(db.catalog().table("scratch").is_err(), "created table gone");
        assert!(db
            .catalog()
            .table("ratings")
            .unwrap()
            .index("r_uid")
            .is_err());
        assert_eq!(db.recommender_names(), vec!["generalrec"]);
        assert_eq!(db.catalog().table("movies").unwrap().tuple_count(), 3);
    }

    #[test]
    fn rollback_recreates_dropped_index() {
        let db = figure1_db();
        db.execute("CREATE INDEX movies_mid ON movies (mid)")
            .unwrap();
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        session.execute("DROP INDEX movies_mid ON movies").unwrap();
        session.execute("ROLLBACK").unwrap();
        assert!(db
            .catalog()
            .table("movies")
            .unwrap()
            .index("movies_mid")
            .is_ok());
    }

    #[test]
    fn transaction_control_errors() {
        let db = RecDb::new();
        let mut session = db.session();
        assert!(matches!(
            session.execute("COMMIT").unwrap_err(),
            EngineError::NoActiveTransaction
        ));
        assert!(matches!(
            session.execute("ROLLBACK").unwrap_err(),
            EngineError::NoActiveTransaction
        ));
        session.execute("BEGIN").unwrap();
        assert!(matches!(
            session.execute("BEGIN").unwrap_err(),
            EngineError::TransactionActive
        ));
        session.execute("ROLLBACK").unwrap();
    }

    #[test]
    fn statement_failure_aborts_whole_transaction() {
        let db = figure1_db();
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        session
            .execute("INSERT INTO ratings VALUES (9, 9, 4.0)")
            .unwrap();
        // A failing statement rolls the whole transaction back.
        session
            .execute("INSERT INTO nosuch VALUES (1)")
            .unwrap_err();
        assert!(!session.in_transaction());
        assert!(matches!(
            session.execute("COMMIT").unwrap_err(),
            EngineError::NoActiveTransaction
        ));
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 7);
        assert!(!db.lock_table().is_locked("ratings"));
    }

    #[test]
    fn contended_write_times_out() {
        let db = RecDb::with_config(RecDbConfig {
            lock_timeout: Duration::ZERO,
            ..Default::default()
        });
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let mut writer = db.session();
        writer.execute("BEGIN").unwrap();
        writer.execute("INSERT INTO t VALUES (1)").unwrap();
        let mut other = db.session();
        other.execute("BEGIN").unwrap();
        let err = other.execute("INSERT INTO t VALUES (2)").unwrap_err();
        assert!(
            matches!(err, EngineError::LockTimeout { ref table, .. } if table == "t"),
            "{err}"
        );
        // The timed-out transaction was rolled back; the writer commits.
        assert!(!other.in_transaction());
        writer.execute("COMMIT").unwrap();
        assert_eq!(db.catalog().table("t").unwrap().tuple_count(), 1);
    }

    #[test]
    fn concurrent_readers_share_locks() {
        // Zero lock timeout: if readers blocked each other at all, the
        // second SELECT would fail instead of sharing the lock.
        let db = RecDb::with_config(RecDbConfig {
            lock_timeout: Duration::ZERO,
            ..Default::default()
        });
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let mut r1 = db.session();
        let mut r2 = db.session();
        r1.execute("BEGIN").unwrap();
        r2.execute("BEGIN").unwrap();
        assert_eq!(r1.query("SELECT * FROM t").unwrap().len(), 1);
        assert_eq!(r2.query("SELECT * FROM t").unwrap().len(), 1);
        // But a writer cannot join the shared lock.
        let mut w = db.session();
        w.execute("BEGIN").unwrap();
        assert!(matches!(
            w.execute("INSERT INTO t VALUES (2)").unwrap_err(),
            EngineError::LockTimeout { .. }
        ));
        r1.execute("COMMIT").unwrap();
        r2.execute("COMMIT").unwrap();
    }

    #[test]
    fn dropping_session_rolls_back_open_transaction() {
        let db = figure1_db();
        {
            let mut session = db.session();
            session.execute("BEGIN").unwrap();
            session
                .execute("INSERT INTO ratings VALUES (9, 9, 4.0)")
                .unwrap();
        }
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 7);
        assert!(!db.lock_table().is_locked("ratings"));
    }

    #[test]
    fn txn_outcomes_are_counted() {
        let db = RecDb::with_config(RecDbConfig {
            lock_timeout: Duration::ZERO,
            ..Default::default()
        });
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let mut s = db.session();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        s.execute("COMMIT").unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (2)").unwrap();
        s.execute("ROLLBACK").unwrap();
        let mut holder = db.session();
        holder.execute("BEGIN").unwrap();
        holder.execute("INSERT INTO t VALUES (3)").unwrap();
        let mut loser = db.session();
        loser.execute("BEGIN").unwrap();
        loser.execute("INSERT INTO t VALUES (4)").unwrap_err();
        holder.execute("COMMIT").unwrap();
        let snap = db.metrics_snapshot();
        // CREATE TABLE + two INSERT auto-commits + two explicit commits.
        assert!(snap.counter("recdb_txn_total{outcome=\"commit\"}") >= 3);
        assert_eq!(snap.counter("recdb_txn_total{outcome=\"abort\"}"), 1);
        assert_eq!(snap.counter("recdb_txn_total{outcome=\"timeout\"}"), 1);
    }

    #[test]
    fn engine_level_execute_joins_default_session_txn() {
        let db = figure1_db();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO ratings VALUES (9, 9, 4.0)")
            .unwrap();
        db.execute("ROLLBACK").unwrap();
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 7);
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO ratings VALUES (9, 9, 4.0)")
            .unwrap();
        db.execute("COMMIT").unwrap();
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 8);
    }

    #[test]
    fn arc_shared_engine_serves_parallel_readers() {
        let db = Arc::new(with_recommender());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for _ in 0..10 {
                        let rows = db
                            .query(
                                "SELECT R.iid FROM ratings AS R \
                                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                                 WHERE R.uid = 1",
                            )
                            .unwrap();
                        assert_eq!(rows.len(), 2);
                    }
                });
            }
        });
    }

    #[test]
    fn panic_during_write_statement_releases_locks() {
        let _x = recdb_fault::exclusive();
        recdb_fault::clear();
        let db = figure1_db();
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        session
            .execute("INSERT INTO ratings VALUES (9, 9, 4.0)")
            .unwrap();
        assert!(db.lock_table().is_locked("ratings"));
        // The next write panics at its lock acquisition; the boundary
        // must contain it, abort the whole transaction, and release the
        // ratings lock already held.
        recdb_fault::arm_panic("txn::lock_acquire", 1);
        let err = session.execute("INSERT INTO users VALUES (9, 'Mal', 'X')");
        assert!(
            matches!(err.unwrap_err(), EngineError::Internal(_)),
            "panic surfaces as a contained internal error"
        );
        assert!(!session.in_transaction());
        assert!(!db.lock_table().is_locked("ratings"), "locks released");
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 7);
        // The engine keeps serving.
        db.execute("INSERT INTO ratings VALUES (9, 9, 4.0)")
            .unwrap();
        assert_eq!(db.catalog().table("ratings").unwrap().tuple_count(), 8);
        recdb_fault::clear();
    }
}
