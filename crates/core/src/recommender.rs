//! One created recommender: its trained model, maintenance state, usage
//! statistics, and materialized score index.

use crate::cache::{CacheDecision, CacheManager, UsageStats};
use crate::error::{EngineError, EngineResult};
use parking_lot::Mutex;
use recdb_algo::model::TrainConfig;
use recdb_algo::parallel::for_each_chunk;
use recdb_algo::{Algorithm, Rating, RatingsMatrix, RecModel, TrainError};
use recdb_exec::RecScoreIndex;
use recdb_guard::QueryGuard;
use recdb_storage::{BufferPool, Catalog, DEFAULT_NODE_CAPACITY};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A recommender created by `CREATE RECOMMENDER` (§III-A).
pub struct Recommender {
    name: String,
    ratings_table: String,
    users_column: String,
    items_column: String,
    ratings_column: String,
    algorithm: Algorithm,
    train_config: TrainConfig,
    model: Arc<RecModel>,
    /// Time spent building the current model (Table II's metric).
    build_time: Duration,
    /// Ratings inserted since the current model was built (the N% rule).
    pending_updates: usize,
    /// Materialized score index, swapped wholesale on maintenance.
    index: Option<Arc<RecScoreIndex>>,
    /// The buffer pool the materialized index pages through (the
    /// engine's shared pool; standalone recommenders get an unbounded
    /// private one).
    pool: Arc<BufferPool>,
    /// Usage histograms, updated from `&self` query paths.
    stats: Mutex<UsageStats>,
    /// The Algorithm 4 manager.
    cache_manager: Mutex<CacheManager>,
}

impl std::fmt::Debug for Recommender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recommender")
            .field("name", &self.name)
            .field("ratings_table", &self.ratings_table)
            .field("algorithm", &self.algorithm)
            .field("trained_on", &self.model.trained_on())
            .field("pending_updates", &self.pending_updates)
            .field(
                "materialized_entries",
                &self.index.as_ref().map(|i| i.len()).unwrap_or(0),
            )
            .finish()
    }
}

/// Fully trained rebuild artifacts, computed off to the side. The
/// concurrent engine captures a recommender's inputs under a brief read
/// lock, trains with no engine lock held, and publishes the result with
/// [`Recommender::publish`] under a brief write lock — readers keep
/// serving the previous model for the whole rebuild.
pub struct StagedRebuild {
    model: Arc<RecModel>,
    index: Option<Arc<RecScoreIndex>>,
    build_time: Duration,
}

impl StagedRebuild {
    /// Wall-clock time the staged build took (the Table II metric).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }
}

impl Recommender {
    /// Build ("initialize", §III-A) a recommender by scanning the ratings
    /// table and training the model.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        name: &str,
        catalog: &Catalog,
        ratings_table: &str,
        users_column: &str,
        items_column: &str,
        ratings_column: &str,
        algorithm: Algorithm,
        train_config: TrainConfig,
        hotness_threshold: f64,
        now: u64,
    ) -> EngineResult<Self> {
        Self::create_governed(
            name,
            catalog,
            ratings_table,
            users_column,
            items_column,
            ratings_column,
            algorithm,
            train_config,
            hotness_threshold,
            now,
            None,
        )
    }

    /// As [`Recommender::create`], under an optional resource governor:
    /// the model build observes cancellation/deadlines and the
    /// `core::materialize_worker` fault site. On error nothing is
    /// constructed — the caller's catalog state is untouched.
    #[allow(clippy::too_many_arguments)]
    pub fn create_governed(
        name: &str,
        catalog: &Catalog,
        ratings_table: &str,
        users_column: &str,
        items_column: &str,
        ratings_column: &str,
        algorithm: Algorithm,
        train_config: TrainConfig,
        hotness_threshold: f64,
        now: u64,
        governor: Option<&QueryGuard>,
    ) -> EngineResult<Self> {
        let matrix = load_matrix(
            catalog,
            ratings_table,
            users_column,
            items_column,
            ratings_column,
        )?;
        Self::create_from_matrix(
            name,
            ratings_table,
            users_column,
            items_column,
            ratings_column,
            algorithm,
            train_config,
            hotness_threshold,
            now,
            matrix,
            governor,
            Arc::clone(catalog.pool()),
        )
    }

    /// As [`Recommender::create_governed`], from an already-scanned ratings
    /// matrix. The concurrent engine scans the table under a short catalog
    /// read latch, drops it, and trains here with no engine lock held.
    #[allow(clippy::too_many_arguments)]
    pub fn create_from_matrix(
        name: &str,
        ratings_table: &str,
        users_column: &str,
        items_column: &str,
        ratings_column: &str,
        algorithm: Algorithm,
        train_config: TrainConfig,
        hotness_threshold: f64,
        now: u64,
        matrix: RatingsMatrix,
        governor: Option<&QueryGuard>,
        index_pool: Arc<BufferPool>,
    ) -> EngineResult<Self> {
        // The materialization stage of the build pipeline: nothing exists
        // to refresh on create, but the stage (and its fault site) still
        // runs so injected failures cover the whole CREATE path.
        let staged = Self::stage_rebuild(
            algorithm,
            &train_config,
            None,
            matrix,
            governor,
            &index_pool,
        )?;
        Ok(Recommender {
            name: name.to_ascii_lowercase(),
            ratings_table: ratings_table.to_ascii_lowercase(),
            users_column: users_column.to_owned(),
            items_column: items_column.to_owned(),
            ratings_column: ratings_column.to_owned(),
            algorithm,
            train_config,
            model: staged.model,
            build_time: staged.build_time,
            pending_updates: 0,
            index: staged.index,
            pool: index_pool,
            stats: Mutex::new(UsageStats::new(now)),
            cache_manager: Mutex::new(CacheManager::new(hotness_threshold)),
        })
    }

    /// Recommender name (lowercase).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ratings table the recommender was created on (lowercase).
    pub fn ratings_table(&self) -> &str {
        &self.ratings_table
    }

    /// The users-id column name.
    pub fn users_column(&self) -> &str {
        &self.users_column
    }

    /// The items-id column name.
    pub fn items_column(&self) -> &str {
        &self.items_column
    }

    /// The ratings-value column name.
    pub fn ratings_column(&self) -> &str {
        &self.ratings_column
    }

    /// The algorithm from USING.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The training configuration this recommender was created with.
    pub fn train_config(&self) -> TrainConfig {
        self.train_config
    }

    /// The trained model.
    pub fn model(&self) -> Arc<RecModel> {
        Arc::clone(&self.model)
    }

    /// Time spent building the current model (Table II).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Ratings inserted since the model was built.
    pub fn pending_updates(&self) -> usize {
        self.pending_updates
    }

    /// The materialized index, if any.
    pub fn index(&self) -> Option<Arc<RecScoreIndex>> {
        self.index.as_ref().map(Arc::clone)
    }

    /// Number of materialized `(user, item)` entries.
    pub fn materialized_entries(&self) -> usize {
        self.index.as_ref().map(|i| i.len()).unwrap_or(0)
    }

    /// Record a recommendation query by `user` (updates the Users
    /// Histogram). Called from the read path, hence `&self`.
    pub fn record_query(&self, user: i64, now: u64) {
        self.stats.lock().record_query(user, now);
    }

    /// Record a rating insertion `(user, item)` (updates the Items
    /// Histogram and the pending-update counter).
    pub fn record_insert(&mut self, item: i64, now: u64) {
        self.pending_updates += 1;
        self.stats.lock().record_update(item, now);
    }

    /// The N% maintenance rule (§III-A): rebuild once pending updates reach
    /// `threshold_pct` percent of the entries used to build the model.
    pub fn needs_maintenance(&self, threshold_pct: f64) -> bool {
        let base = self.model.trained_on().max(1) as f64;
        (self.pending_updates as f64) / base * 100.0 >= threshold_pct
    }

    /// Rebuild the model from the current table contents and refresh every
    /// materialized entry ("RECDB maintains the recommendation score for
    /// all materialized entries", §IV-D).
    pub fn maintain(&mut self, catalog: &Catalog) -> EngineResult<()> {
        self.maintain_governed(catalog, None)
    }

    /// As [`Recommender::maintain`], under an optional resource governor.
    ///
    /// The rebuild is staged: the new model and the refreshed index are
    /// computed fully before anything is published, so a cancelled or
    /// faulted rebuild returns `Err` with the previous model (and index)
    /// still serving, and a later retry starts from a consistent state.
    pub fn maintain_governed(
        &mut self,
        catalog: &Catalog,
        governor: Option<&QueryGuard>,
    ) -> EngineResult<()> {
        let matrix = load_matrix(
            catalog,
            &self.ratings_table,
            &self.users_column,
            &self.items_column,
            &self.ratings_column,
        )?;
        let staged = Self::stage_rebuild(
            self.algorithm,
            &self.train_config,
            self.index.as_deref(),
            matrix,
            governor,
            &self.pool,
        )?;
        self.publish(staged);
        Ok(())
    }

    /// Train a model on `matrix` and refresh `old_index` against it,
    /// without borrowing any recommender: all fallible work happens here,
    /// and nothing is visible until [`Recommender::publish`].
    pub fn stage_rebuild(
        algorithm: Algorithm,
        config: &TrainConfig,
        old_index: Option<&RecScoreIndex>,
        matrix: RatingsMatrix,
        governor: Option<&QueryGuard>,
        index_pool: &Arc<BufferPool>,
    ) -> EngineResult<StagedRebuild> {
        let started = Instant::now();
        let model = Arc::new(build_model(algorithm, matrix, config, governor)?);
        let index = refresh_index(old_index, &model, governor, index_pool)?;
        Ok(StagedRebuild {
            model,
            index,
            build_time: started.elapsed(),
        })
    }

    /// Swap staged rebuild artifacts in and reset the pending-update
    /// counter. Infallible by design: callers hold a write lock for just
    /// this call.
    pub fn publish(&mut self, staged: StagedRebuild) {
        self.model = staged.model;
        self.build_time = staged.build_time;
        self.pending_updates = 0;
        self.index = staged.index;
    }

    /// An empty index paging through this recommender's pool.
    fn fresh_index(&self) -> RecScoreIndex {
        RecScoreIndex::with_pool(Arc::clone(&self.pool), DEFAULT_NODE_CAPACITY)
    }

    /// Pre-compute the full unseen-item score list for one user and mark it
    /// complete (the §IV-C pre-computation that IndexRecommend serves).
    pub fn materialize_user(&mut self, user: i64) {
        let mut index = match self.index.take() {
            Some(arc) => Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()),
            None => self.fresh_index(),
        };
        materialize_user_into(&mut index, &self.model, user);
        self.index = Some(Arc::new(index));
    }

    /// Pre-compute score lists for every user known to the model, using
    /// all available cores.
    pub fn materialize_all(&mut self) {
        self.materialize_all_with(0)
    }

    /// As [`Recommender::materialize_all`], with an explicit worker-thread
    /// count (`0` = all cores). Each score is a pure function of the
    /// already-trained model, so the resulting index is identical for
    /// every thread count: workers only fan out the per-user scoring; the
    /// merge into the index happens on the calling thread in user order.
    pub fn materialize_all_with(&mut self, threads: usize) {
        self.materialize_all_governed(threads, None)
            .expect("ungoverned materialization cannot fail")
    }

    /// As [`Recommender::materialize_all_with`], under an optional
    /// resource governor. Each worker chunk evaluates the
    /// `core::materialize_worker` fault site and the guard before scoring;
    /// on any failure the existing index is left exactly as it was (the
    /// merge-and-swap only happens after every worker succeeded).
    pub fn materialize_all_governed(
        &mut self,
        threads: usize,
        governor: Option<&QueryGuard>,
    ) -> EngineResult<()> {
        let users = self.model.matrix().user_ids();
        let model = &self.model;
        let threads = recdb_algo::effective_threads(threads);
        // Workers cannot return `Err` through the fan-out, so the first
        // failure lands in a shared slot and flips a flag that makes the
        // remaining chunks bail out immediately.
        let aborted = AtomicBool::new(false);
        let abort: Mutex<Option<EngineError>> = Mutex::new(None);
        let mut per_user: Vec<(usize, Vec<(i64, f64)>)> = for_each_chunk(
            users.len(),
            threads,
            8,
            Vec::new,
            |out: &mut Vec<(usize, Vec<(i64, f64)>)>, range| {
                if aborted.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(guard) = governor {
                    let gate = recdb_fault::fail_point("core::materialize_worker")
                        .map_err(EngineError::from)
                        .and_then(|()| guard.check().map_err(EngineError::from));
                    if let Err(e) = gate {
                        aborted.store(true, Ordering::Relaxed);
                        abort.lock().get_or_insert(e);
                        return;
                    }
                }
                // `users` is the matrix's dense user-id list, so `pos` IS
                // the dense user index: scoring goes through the batched
                // kernel path with no per-pair id lookups. The governor is
                // charged once per chunk (above), not per pair.
                let matrix = model.matrix();
                let mut scored = Vec::new();
                for pos in range {
                    scored.clear();
                    model.score_unseen_into(pos, &mut scored);
                    let entries = scored
                        .iter()
                        .map(|&(i, s)| (matrix.item_id(i), s))
                        .collect();
                    out.push((pos, entries));
                }
            },
        )
        .into_iter()
        .flatten()
        .collect();
        if let Some(e) = abort.into_inner() {
            return Err(e);
        }
        per_user.sort_unstable_by_key(|&(pos, _)| pos);
        let mut index = match self.index.take() {
            Some(arc) => Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()),
            None => self.fresh_index(),
        };
        for (pos, entries) in per_user {
            let user = users[pos];
            for (item, score) in entries {
                index.insert(user, item, score);
            }
            index.mark_complete(user);
        }
        self.index = Some(Arc::new(index));
        Ok(())
    }

    /// Run the Algorithm 4 cache manager at tick `now`: refresh rates,
    /// decide admissions/evictions, and apply them to the index. Returns
    /// the decision for observability.
    pub fn run_cache_manager(&mut self, now: u64) -> CacheDecision {
        let decision = {
            let mut stats = self.stats.lock();
            let mut mgr = self.cache_manager.lock();
            let model = &self.model;
            mgr.run(&mut stats, now, |u, i| {
                model.matrix().rating_of(u, i).is_none()
            })
        };
        if decision.admitted.is_empty() && decision.evicted.is_empty() {
            return decision;
        }
        let mut index = match self.index.take() {
            Some(arc) => Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()),
            None => self.fresh_index(),
        };
        for &(u, i) in &decision.evicted {
            index.remove(u, i);
        }
        let matrix = self.model.matrix();
        for &(u, i) in &decision.admitted {
            let score = match (matrix.user_idx(u), matrix.item_idx(i)) {
                (Some(ui), Some(ii)) => self.model.predict_indexed(ui, ii).unwrap_or(0.0),
                _ => 0.0,
            };
            index.insert(u, i, score);
        }
        self.index = Some(Arc::new(index));
        decision
    }

    /// Immutable access to the usage statistics (testing/observability).
    pub fn with_stats<R>(&self, f: impl FnOnce(&UsageStats) -> R) -> R {
        f(&self.stats.lock())
    }
}

/// Train a model, routing through the guard-aware path when governed.
/// The ungoverned path is byte-for-byte the legacy one: no fail points,
/// no checks, infallible.
fn build_model(
    algorithm: Algorithm,
    matrix: RatingsMatrix,
    config: &TrainConfig,
    governor: Option<&QueryGuard>,
) -> EngineResult<RecModel> {
    match governor {
        Some(guard) => {
            RecModel::train_guarded(algorithm, matrix, config, guard).map_err(train_to_engine)
        }
        None => Ok(RecModel::train(algorithm, matrix, config)),
    }
}

fn train_to_engine(e: TrainError) -> EngineError {
    match e {
        TrainError::Guard(g) => g.into(),
        TrainError::Fault(f) => f.into(),
    }
}

/// The build pipeline's materialization stage: rebuild the score index
/// against a freshly trained model. Complete users re-materialize in
/// full; partial (cache-admitted) pairs re-score individually. The
/// `core::materialize_worker` fault site is evaluated even when there is
/// nothing to refresh, so injected failures cover create as well as
/// maintain.
fn refresh_index(
    old: Option<&RecScoreIndex>,
    model: &RecModel,
    governor: Option<&QueryGuard>,
    pool: &Arc<BufferPool>,
) -> EngineResult<Option<Arc<RecScoreIndex>>> {
    if let Some(guard) = governor {
        recdb_fault::fail_point("core::materialize_worker")?;
        guard.check().map_err(EngineError::from)?;
    }
    let Some(old) = old else { return Ok(None) };
    let mut fresh = RecScoreIndex::with_pool(Arc::clone(pool), DEFAULT_NODE_CAPACITY);
    for user in old.users() {
        if let Some(guard) = governor {
            guard.check().map_err(EngineError::from)?;
        }
        if old.is_complete(user) {
            materialize_user_into(&mut fresh, model, user);
        } else {
            let u = model.matrix().user_idx(user);
            for (item, _) in old.iter_desc(user, None, None) {
                match u.zip(model.matrix().item_idx(item)) {
                    Some((u, i)) => {
                        if model.matrix().rating_at(u, i).is_none() {
                            fresh.insert(user, item, model.predict_indexed(u, i).unwrap_or(0.0));
                        }
                    }
                    // Ids the new model doesn't know keep the legacy
                    // unpredictable-pair score of 0.0.
                    None => fresh.insert(user, item, 0.0),
                }
            }
        }
    }
    Ok(Some(Arc::new(fresh)))
}

fn materialize_user_into(index: &mut RecScoreIndex, model: &RecModel, user: i64) {
    let matrix = model.matrix();
    match matrix.user_idx(user) {
        Some(u) => {
            // Batched path: resolve the user index once, score every
            // unseen item through the model's block kernel, then map dense
            // item indexes back to ids.
            let mut scored = Vec::new();
            model.score_unseen_into(u, &mut scored);
            for (i, score) in scored {
                index.insert(user, matrix.item_id(i), score);
            }
        }
        None => {
            // Unknown user: every item is unseen and unpredictable → 0.0,
            // matching the per-pair `predict(..).unwrap_or(0.0)` behavior.
            for &item in matrix.item_ids() {
                index.insert(user, item, 0.0);
            }
        }
    }
    index.mark_complete(user);
}

/// Scan a ratings table into a [`RatingsMatrix`], resolving the three
/// named columns.
pub fn load_matrix(
    catalog: &Catalog,
    ratings_table: &str,
    users_column: &str,
    items_column: &str,
    ratings_column: &str,
) -> EngineResult<RatingsMatrix> {
    let table = catalog.table(ratings_table)?;
    let schema = table.schema();
    let u = schema.resolve(users_column)?;
    let i = schema.resolve(items_column)?;
    let r = schema.resolve(ratings_column)?;
    let mut ratings = Vec::with_capacity(table.tuple_count() as usize);
    for (_, tuple) in table.heap().scan() {
        let (Some(user), Some(item), Some(value)) = (
            tuple.get(u).and_then(recdb_storage::Value::as_int),
            tuple.get(i).and_then(recdb_storage::Value::as_int),
            tuple.get(r).and_then(recdb_storage::Value::as_f64),
        ) else {
            return Err(EngineError::Exec(recdb_exec::ExecError::Type(format!(
                "non-numeric rating triple in `{ratings_table}`: {tuple}"
            ))));
        };
        ratings.push(Rating::new(user, item, value));
    }
    Ok(RatingsMatrix::from_ratings(ratings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_storage::{DataType, Schema, Tuple, Value};

    fn catalog_with_ratings(rows: &[(i64, i64, f64)]) -> Catalog {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(
                "ratings",
                Schema::from_pairs(&[
                    ("uid", DataType::Int),
                    ("iid", DataType::Int),
                    ("ratingval", DataType::Float),
                ]),
            )
            .unwrap();
        for &(u, i, r) in rows {
            t.insert(Tuple::new(vec![
                Value::Int(u),
                Value::Int(i),
                Value::Float(r),
            ]))
            .unwrap();
        }
        cat
    }

    fn figure1_rows() -> Vec<(i64, i64, f64)> {
        vec![
            (1, 1, 1.5),
            (2, 2, 3.5),
            (2, 1, 4.5),
            (2, 3, 2.0),
            (3, 2, 1.0),
            (3, 1, 2.0),
            (4, 2, 1.0),
        ]
    }

    fn make(cat: &Catalog) -> Recommender {
        Recommender::create(
            "GeneralRec",
            cat,
            "ratings",
            "uid",
            "iid",
            "ratingval",
            Algorithm::ItemCosCF,
            TrainConfig::default(),
            0.5,
            0,
        )
        .unwrap()
    }

    #[test]
    fn create_trains_from_table() {
        let cat = catalog_with_ratings(&figure1_rows());
        let rec = make(&cat);
        assert_eq!(rec.model().trained_on(), 7);
        assert_eq!(rec.model().score(2, 1), 4.5);
        assert_eq!(rec.name(), "generalrec");
    }

    #[test]
    fn n_percent_maintenance_rule() {
        let cat = catalog_with_ratings(&figure1_rows());
        let mut rec = make(&cat);
        assert!(!rec.needs_maintenance(10.0));
        rec.record_insert(1, 1); // 1/7 ≈ 14% ≥ 10%
        assert!(rec.needs_maintenance(10.0));
        assert!(!rec.needs_maintenance(50.0));
        for k in 0..3 {
            rec.record_insert(k, 2);
        }
        assert!(rec.needs_maintenance(50.0), "4/7 ≈ 57%");
    }

    #[test]
    fn maintain_retrains_and_resets_counter() {
        let mut cat = catalog_with_ratings(&figure1_rows());
        let mut rec = make(&cat);
        // New rating arrives in the table and is recorded.
        cat.table_mut("ratings")
            .unwrap()
            .insert(Tuple::new(vec![
                Value::Int(4),
                Value::Int(3),
                Value::Float(5.0),
            ]))
            .unwrap();
        rec.record_insert(3, 1);
        rec.maintain(&cat).unwrap();
        assert_eq!(rec.pending_updates(), 0);
        assert_eq!(rec.model().trained_on(), 8);
        assert_eq!(rec.model().score(4, 3), 5.0, "new rating visible");
    }

    #[test]
    fn materialize_user_builds_complete_list() {
        let cat = catalog_with_ratings(&figure1_rows());
        let mut rec = make(&cat);
        rec.materialize_user(1);
        let idx = rec.index().unwrap();
        assert!(idx.is_complete(1));
        // User 1 rated item 1 → 2 unseen items materialized.
        assert_eq!(idx.iter_desc(1, None, None).count(), 2);
        assert!(!idx.is_complete(2));
    }

    #[test]
    fn materialize_all_covers_every_user() {
        let cat = catalog_with_ratings(&figure1_rows());
        let mut rec = make(&cat);
        rec.materialize_all();
        let idx = rec.index().unwrap();
        // User 2 rated all three items → no entries, but still complete.
        assert_eq!(idx.user_count(), 3);
        // 4 users × 3 items − 7 rated = 5 entries.
        assert_eq!(idx.len(), 5);
        for u in 1..=4 {
            assert!(idx.is_complete(u));
        }
    }

    #[test]
    fn materialize_all_parallel_matches_serial() {
        let cat = catalog_with_ratings(&figure1_rows());
        let mut serial = make(&cat);
        serial.materialize_all_with(1);
        let serial_idx = serial.index().unwrap();
        for threads in [2, 4, 0] {
            let mut par = make(&cat);
            par.materialize_all_with(threads);
            let idx = par.index().unwrap();
            assert_eq!(idx.len(), serial_idx.len(), "threads {threads}");
            assert_eq!(idx.user_count(), serial_idx.user_count());
            for u in 1..=4 {
                assert_eq!(idx.is_complete(u), serial_idx.is_complete(u));
                let a: Vec<_> = idx.iter_desc(u, None, None).collect();
                let b: Vec<_> = serial_idx.iter_desc(u, None, None).collect();
                assert_eq!(a, b, "user {u}, threads {threads}");
            }
        }
    }

    #[test]
    fn maintain_refreshes_materialized_entries() {
        let mut cat = catalog_with_ratings(&figure1_rows());
        let mut rec = make(&cat);
        rec.materialize_user(4);
        let before = rec.index().unwrap().get(4, 1);
        assert!(before.is_some());
        // User 4 rates item 1 → after maintenance the pair is seen and must
        // leave the index, while the user list stays complete.
        cat.table_mut("ratings")
            .unwrap()
            .insert(Tuple::new(vec![
                Value::Int(4),
                Value::Int(1),
                Value::Float(2.0),
            ]))
            .unwrap();
        rec.record_insert(1, 1);
        rec.maintain(&cat).unwrap();
        let idx = rec.index().unwrap();
        assert_eq!(idx.get(4, 1), None, "now-rated pair dematerialized");
        assert!(idx.is_complete(4));
        assert!(idx.get(4, 3).is_some(), "still-unseen pair retained");
    }

    #[test]
    fn cache_manager_admits_hot_pairs_into_index() {
        let cat = catalog_with_ratings(&figure1_rows());
        let mut rec = make(&cat);
        // User 1 queries a lot; item 3 is updated a lot.
        for _ in 0..10 {
            rec.record_query(1, 5);
        }
        rec.record_insert(3, 5);
        let decision = rec.run_cache_manager(10);
        assert!(decision.admitted.contains(&(1, 3)));
        let idx = rec.index().unwrap();
        assert!(idx.get(1, 3).is_some());
        assert!(!idx.is_complete(1), "pair admission is partial");
    }

    #[test]
    fn cache_manager_evicts_cold_pairs() {
        let cat = catalog_with_ratings(&figure1_rows());
        let mut rec = make(&cat);
        rec.materialize_user(4); // contains (4, 1) and (4, 3)
                                 // Heat: user 1 hot, user 4 cold; item 1 hot, item 3 cold-ish.
        for _ in 0..100 {
            rec.record_query(1, 5);
        }
        rec.record_query(4, 5);
        for _ in 0..100 {
            rec.record_insert(1, 5);
        }
        rec.record_insert(3, 5);
        let decision = rec.run_cache_manager(10);
        assert!(decision.evicted.contains(&(4, 3)), "{decision:?}");
        let idx = rec.index().unwrap();
        assert_eq!(idx.get(4, 3), None);
        assert!(!idx.is_complete(4), "eviction breaks completeness");
    }

    #[test]
    fn load_matrix_rejects_bad_columns() {
        let cat = catalog_with_ratings(&figure1_rows());
        assert!(load_matrix(&cat, "ratings", "nope", "iid", "ratingval").is_err());
        assert!(load_matrix(&cat, "missing", "uid", "iid", "ratingval").is_err());
    }

    #[test]
    fn build_time_is_recorded() {
        let cat = catalog_with_ratings(&figure1_rows());
        let rec = make(&cat);
        // Tiny model, but the timer must have run.
        assert!(rec.build_time() > Duration::ZERO);
    }
}
