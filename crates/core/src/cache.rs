//! The adaptive caching / materialization manager (§IV-D, Algorithm 4).
//!
//! The engine keeps, per recommender, a *Users Histogram* (query counts
//! `QC_u`, last-query timestamps `TS_u`) and an *Items Histogram* (update
//! counts `UC_i`, last-update timestamps `TS_i`). The cache manager runs
//! periodically; each run:
//!
//! 1. selects the users/items touched since the previous run,
//! 2. refreshes demand rates `D_u = QC_u / (TS_now − TS_init)` and
//!    consumption rates `P_i = UC_i / (TS_now − TS_init)` along with their
//!    maxima,
//! 3. scores every touched unseen pair with
//!    `Hot(u,i) = (D_u / D_MAX) · (P_i / P_MAX)` and routes it to the
//!    admission list (materialize in the RecScoreIndex) when
//!    `Hot ≥ HOTNESS-THRESHOLD`, else the eviction list.
//!
//! Timestamps are logical ticks supplied by the engine (one per executed
//! statement) so behaviour is deterministic and testable; the unit of time
//! cancels out of the hotness ratio.

use std::collections::HashMap;

/// Per-user entry of the Users Histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UserStat {
    /// `QC_u` — recommendation queries issued by the user since creation.
    pub query_count: u64,
    /// `TS_u` — tick of the user's last recommendation query.
    pub last_query: u64,
    /// `D_u` — demand rate, refreshed by the cache manager.
    pub demand_rate: f64,
}

/// Per-item entry of the Items Histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ItemStat {
    /// `UC_i` — rating insertions touching the item since creation.
    pub update_count: u64,
    /// `TS_i` — tick of the item's last update.
    pub last_update: u64,
    /// `P_i` — consumption rate, refreshed by the cache manager.
    pub consumption_rate: f64,
}

/// The statistics block of one recommender.
#[derive(Debug, Clone)]
pub struct UsageStats {
    users: HashMap<i64, UserStat>,
    items: HashMap<i64, ItemStat>,
    /// `TS_init` — tick at which the recommender was created.
    ts_init: u64,
    /// `D_MAX` across all users seen so far.
    d_max: f64,
    /// `P_MAX` across all items seen so far.
    p_max: f64,
}

impl UsageStats {
    /// Fresh statistics for a recommender created at `ts_init`.
    pub fn new(ts_init: u64) -> Self {
        UsageStats {
            users: HashMap::new(),
            items: HashMap::new(),
            ts_init,
            d_max: 0.0,
            p_max: 0.0,
        }
    }

    /// Record a recommendation query by `user` at tick `now`.
    pub fn record_query(&mut self, user: i64, now: u64) {
        let s = self.users.entry(user).or_default();
        s.query_count += 1;
        s.last_query = now;
    }

    /// Record a rating insertion touching `item` at tick `now`.
    pub fn record_update(&mut self, item: i64, now: u64) {
        let s = self.items.entry(item).or_default();
        s.update_count += 1;
        s.last_update = now;
    }

    /// The user histogram entry, if the user has been seen.
    pub fn user(&self, user: i64) -> Option<&UserStat> {
        self.users.get(&user)
    }

    /// The item histogram entry, if the item has been seen.
    pub fn item(&self, item: i64) -> Option<&ItemStat> {
        self.items.get(&item)
    }

    /// `D_MAX`.
    pub fn d_max(&self) -> f64 {
        self.d_max
    }

    /// `P_MAX`.
    pub fn p_max(&self) -> f64 {
        self.p_max
    }
}

/// What one cache-manager run decided (§IV-D Step 2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheDecision {
    /// User/item pairs to materialize.
    pub admitted: Vec<(i64, i64)>,
    /// User/item pairs to dematerialize.
    pub evicted: Vec<(i64, i64)>,
}

/// The cache manager: runs Algorithm 4 against a statistics block.
#[derive(Debug, Clone)]
pub struct CacheManager {
    /// `HOTNESS-THRESHOLD` ∈ [0, 1]: 0 materializes everything, 1 nothing.
    pub hotness_threshold: f64,
    /// Tick of the previous run (`TS_mat`).
    last_run: u64,
}

impl CacheManager {
    /// A manager that has never run.
    pub fn new(hotness_threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hotness_threshold),
            "HOTNESS-THRESHOLD must be in [0, 1]"
        );
        CacheManager {
            hotness_threshold,
            last_run: 0,
        }
    }

    /// Tick of the previous run.
    pub fn last_run(&self) -> u64 {
        self.last_run
    }

    /// Run Algorithm 4 at tick `now`. `is_unseen(u, i)` reports whether the
    /// pair is unseen by the user (only unseen pairs are materialization
    /// candidates — line 10). Mutates the rates/maxima in `stats` (Step 1)
    /// and returns the admission/eviction lists (Step 2).
    pub fn run(
        &mut self,
        stats: &mut UsageStats,
        now: u64,
        mut is_unseen: impl FnMut(i64, i64) -> bool,
    ) -> CacheDecision {
        let elapsed = now.saturating_sub(stats.ts_init).max(1) as f64;

        // Users/items touched since the last run (U′ and I′).
        let touched_users: Vec<i64> = stats
            .users
            .iter()
            .filter(|(_, s)| s.last_query > self.last_run)
            .map(|(&u, _)| u)
            .collect();
        let touched_items: Vec<i64> = stats
            .items
            .iter()
            .filter(|(_, s)| s.last_update > self.last_run)
            .map(|(&i, _)| i)
            .collect();

        // STEP 1: refresh rates and maxima.
        for &i in &touched_items {
            let s = stats.items.get_mut(&i).expect("touched item exists");
            s.consumption_rate = s.update_count as f64 / elapsed;
            if s.consumption_rate > stats.p_max {
                stats.p_max = s.consumption_rate;
            }
        }
        for &u in &touched_users {
            let s = stats.users.get_mut(&u).expect("touched user exists");
            s.demand_rate = s.query_count as f64 / elapsed;
            if s.demand_rate > stats.d_max {
                stats.d_max = s.demand_rate;
            }
        }

        // STEP 2: hotness decision per touched unseen pair.
        let mut decision = CacheDecision::default();
        if stats.d_max > 0.0 && stats.p_max > 0.0 {
            for &u in &touched_users {
                let du = stats.users[&u].demand_rate / stats.d_max;
                for &i in &touched_items {
                    if !is_unseen(u, i) {
                        continue;
                    }
                    let pi = stats.items[&i].consumption_rate / stats.p_max;
                    let hotness = du * pi;
                    if hotness >= self.hotness_threshold {
                        decision.admitted.push((u, i));
                    } else {
                        decision.evicted.push((u, i));
                    }
                }
            }
        }
        self.last_run = now;
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table I worked example, numbers reproduced exactly:
    /// TS_init = 10, cache manager invoked at TS = 15.
    #[test]
    fn paper_table1_example() {
        let mut stats = UsageStats::new(10);
        // Users Histogram: Alice QC=100 TS=10... the paper's TS_u values
        // (10, 12) only gate membership in U′; replay the counts.
        for _ in 0..100 {
            stats.record_query(1, 12); // Alice
        }
        for _ in 0..10 {
            stats.record_query(2, 12); // Bob
        }
        // Items Histogram: Spartacus UC=1000, Inception UC=10, Matrix UC=100.
        for _ in 0..1000 {
            stats.record_update(101, 12); // Spartacus
        }
        for _ in 0..10 {
            stats.record_update(102, 12); // Inception
        }
        for _ in 0..100 {
            stats.record_update(103, 12); // The Matrix
        }

        let mut mgr = CacheManager::new(0.5);
        let decision = mgr.run(&mut stats, 15, |_, _| true);

        // Rates match Table I: D_Alice = 100/5 = 20, D_Bob = 10/5 = 2,
        // P_Spartacus = 1000/5 = 200, P_Inception = 2, P_Matrix = 20.
        assert_eq!(stats.user(1).unwrap().demand_rate, 20.0);
        assert_eq!(stats.user(2).unwrap().demand_rate, 2.0);
        assert_eq!(stats.item(101).unwrap().consumption_rate, 200.0);
        assert_eq!(stats.item(102).unwrap().consumption_rate, 2.0);
        assert_eq!(stats.item(103).unwrap().consumption_rate, 20.0);
        assert_eq!(stats.d_max(), 20.0);
        assert_eq!(stats.p_max(), 200.0);

        // Hotness ratios (Table I(c)): only 〈Alice, Spartacus〉 = 1.0 is
        // ≥ 0.5; every other pair is evicted.
        assert_eq!(decision.admitted, vec![(1, 101)]);
        assert_eq!(decision.evicted.len(), 5);
        assert!(
            decision.evicted.contains(&(2, 102)),
            "Bob/Inception ≈ 0.001"
        );
    }

    #[test]
    fn threshold_zero_materializes_everything_touched() {
        let mut stats = UsageStats::new(0);
        stats.record_query(1, 5);
        stats.record_update(10, 5);
        stats.record_update(11, 5);
        let mut mgr = CacheManager::new(0.0);
        let d = mgr.run(&mut stats, 10, |_, _| true);
        assert_eq!(d.admitted.len(), 2);
        assert!(d.evicted.is_empty());
    }

    #[test]
    fn threshold_one_materializes_only_perfect_heat() {
        let mut stats = UsageStats::new(0);
        stats.record_query(1, 5);
        stats.record_query(1, 5);
        stats.record_query(2, 5); // colder user
        stats.record_update(10, 5);
        let mut mgr = CacheManager::new(1.0);
        let d = mgr.run(&mut stats, 10, |_, _| true);
        // Only the hottest user × hottest item reaches 1.0.
        assert_eq!(d.admitted, vec![(1, 10)]);
        assert!(d.evicted.contains(&(2, 10)));
    }

    #[test]
    fn rated_pairs_are_not_candidates() {
        let mut stats = UsageStats::new(0);
        stats.record_query(1, 5);
        stats.record_update(10, 5);
        let mut mgr = CacheManager::new(0.0);
        let d = mgr.run(&mut stats, 10, |_, _| false); // everything already rated
        assert!(d.admitted.is_empty());
        assert!(d.evicted.is_empty());
    }

    #[test]
    fn second_run_only_considers_newly_touched() {
        let mut stats = UsageStats::new(0);
        stats.record_query(1, 5);
        stats.record_update(10, 5);
        let mut mgr = CacheManager::new(0.0);
        let first = mgr.run(&mut stats, 10, |_, _| true);
        assert_eq!(first.admitted.len(), 1);
        // Nothing touched since tick 10 → empty decision.
        let second = mgr.run(&mut stats, 20, |_, _| true);
        assert_eq!(second, CacheDecision::default());
        // New activity re-enters consideration.
        stats.record_query(2, 25);
        stats.record_update(11, 25);
        let third = mgr.run(&mut stats, 30, |_, _| true);
        assert!(!third.admitted.is_empty() || !third.evicted.is_empty());
    }

    #[test]
    fn no_activity_at_all_is_a_noop() {
        let mut stats = UsageStats::new(0);
        let mut mgr = CacheManager::new(0.5);
        let d = mgr.run(&mut stats, 100, |_, _| true);
        assert_eq!(d, CacheDecision::default());
    }

    #[test]
    #[should_panic(expected = "HOTNESS-THRESHOLD")]
    fn invalid_threshold_rejected() {
        let _ = CacheManager::new(1.5);
    }

    #[test]
    fn rates_use_elapsed_since_creation() {
        // Same counts, recommender created earlier ⇒ lower rates, but
        // hotness (a ratio of ratios) is unchanged.
        let mut fresh = UsageStats::new(90);
        let mut old = UsageStats::new(0);
        for stats in [&mut fresh, &mut old] {
            stats.record_query(1, 95);
            stats.record_update(10, 95);
        }
        let mut m1 = CacheManager::new(0.5);
        let mut m2 = CacheManager::new(0.5);
        let d1 = m1.run(&mut fresh, 100, |_, _| true);
        let d2 = m2.run(&mut old, 100, |_, _| true);
        assert!(fresh.user(1).unwrap().demand_rate > old.user(1).unwrap().demand_rate);
        assert_eq!(d1.admitted, d2.admitted);
    }
}
