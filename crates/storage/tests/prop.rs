//! Property-based tests for the storage substrate: the binary tuple
//! format, the slotted page, the heap, and the B-tree index are each
//! checked against simple reference models.

use proptest::prelude::*;
use recdb_storage::{
    BTree, BTreeIndex, BufferPool, Column, DataType, HeapTable, Page, Rid, Schema, Tuple, Value,
};
use std::sync::Arc;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[ -~]{0,40}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(x, y)| Value::Point(x, y)),
        (-1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6)
            .prop_map(|(a, b, c, d)| Value::Rect(a, b, c, d)),
    ]
}

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(value_strategy(), 0..8).prop_map(Tuple::new)
}

proptest! {
    /// Binary encode → decode is the identity, and the encoded size is
    /// exactly what `encoded_size` predicts.
    #[test]
    fn tuple_roundtrip(tuple in tuple_strategy()) {
        let mut buf = Vec::new();
        tuple.encode_into(&mut buf);
        prop_assert_eq!(buf.len(), tuple.encoded_size());
        let (decoded, used) = Tuple::decode(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(decoded, tuple);
    }

    /// Decoding any strict prefix of an encoding fails cleanly (no panic,
    /// no garbage tuple) — unless the prefix happens to be a valid
    /// encoding of a shorter arity, which the length header prevents.
    #[test]
    fn tuple_truncation_never_panics(tuple in tuple_strategy(), cut_frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        tuple.encode_into(&mut buf);
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        if cut < buf.len() {
            prop_assert!(Tuple::decode(&buf[..cut]).is_err());
        }
    }

    /// A page behaves like an append-only Vec with tombstones.
    #[test]
    fn page_matches_vec_model(
        tuples in proptest::collection::vec(tuple_strategy(), 1..40),
        deletions in proptest::collection::vec(any::<prop::sample::Index>(), 0..10),
    ) {
        let mut page = Page::new();
        let mut model: Vec<Option<Tuple>> = Vec::new();
        for t in &tuples {
            if page.fits(t.encoded_size()) {
                let slot = page.insert(t).unwrap();
                prop_assert_eq!(slot as usize, model.len());
                model.push(Some(t.clone()));
            }
        }
        for idx in &deletions {
            if model.is_empty() { break; }
            let slot = idx.index(model.len());
            if model[slot].is_some() {
                page.delete(slot as u16).unwrap();
                model[slot] = None;
            }
        }
        prop_assert_eq!(page.live_count(), model.iter().flatten().count());
        let live: Vec<(u16, Tuple)> = page.iter_live().collect();
        let expected: Vec<(u16, Tuple)> = model
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.clone().map(|t| (i as u16, t)))
            .collect();
        prop_assert_eq!(live, expected);
    }

    /// Heap scan returns exactly the inserted-and-not-deleted tuples in
    /// insertion order, across page boundaries.
    #[test]
    fn heap_matches_vec_model(
        rows in proptest::collection::vec((any::<i64>(), -1e9f64..1e9), 1..300),
        deletions in proptest::collection::vec(any::<prop::sample::Index>(), 0..40),
    ) {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Float),
        ]);
        let mut heap = HeapTable::new(schema);
        let mut rids: Vec<(Rid, Tuple)> = Vec::new();
        for (k, v) in &rows {
            let t = Tuple::new(vec![Value::Int(*k), Value::Float(*v)]);
            let rid = heap.insert(t.clone()).unwrap();
            rids.push((rid, t));
        }
        let mut deleted = std::collections::HashSet::new();
        for idx in &deletions {
            let i = idx.index(rids.len());
            if deleted.insert(i) {
                heap.delete(rids[i].0).unwrap();
            }
        }
        let survivors: Vec<Tuple> = rids
            .iter()
            .enumerate()
            .filter(|(i, _)| !deleted.contains(i))
            .map(|(_, (_, t))| t.clone())
            .collect();
        let scanned: Vec<Tuple> = heap.scan().map(|(_, t)| t).collect();
        prop_assert_eq!(scanned, survivors);
        prop_assert_eq!(heap.tuple_count() as usize, rids.len() - deleted.len());
    }

    /// BTreeIndex point lookups and full ordered iteration agree with a
    /// reference BTreeMap<i64, Vec<Rid>>.
    #[test]
    fn index_matches_btreemap_model(
        entries in proptest::collection::vec((-50i64..50, 0u16..200), 1..150),
        removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..30),
    ) {
        let mut idx = BTreeIndex::new("prop", vec![0]);
        let mut model: std::collections::BTreeMap<i64, Vec<Rid>> = Default::default();
        for (k, slot) in &entries {
            let rid = Rid::new(0, *slot);
            idx.insert(vec![Value::Int(*k)], rid);
            model.entry(*k).or_default().push(rid);
        }
        for r in &removals {
            let (k, slot) = entries[r.index(entries.len())];
            let rid = Rid::new(0, slot);
            let in_model = model.get_mut(&k).map(|v| {
                if let Some(pos) = v.iter().position(|&x| x == rid) {
                    v.swap_remove(pos);
                    true
                } else {
                    false
                }
            }).unwrap_or(false);
            if in_model && model[&k].is_empty() {
                model.remove(&k);
            }
            prop_assert_eq!(idx.remove(&vec![Value::Int(k)], rid), in_model);
        }
        // Point lookups agree (as sets).
        for k in -50i64..50 {
            let mut got = idx.lookup(&vec![Value::Int(k)]);
            got.sort();
            let mut want = model.get(&k).cloned().unwrap_or_default();
            want.sort();
            prop_assert_eq!(got, want, "key {}", k);
        }
        // Ascending iteration is key-ordered and complete.
        let keys: Vec<i64> = idx
            .iter_asc()
            .map(|(k, _)| k[0].as_int().unwrap())
            .collect();
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(keys.len() as u64, idx.len());
        prop_assert_eq!(
            idx.len(),
            model.values().map(|v| v.len() as u64).sum::<u64>()
        );
    }

    /// Value total order is transitive-consistent with itself when used
    /// through sort (i.e. sorting never panics and yields a weakly
    /// increasing sequence under `total_cmp`).
    #[test]
    fn value_order_is_sortable(mut values in proptest::collection::vec(value_strategy(), 0..60)) {
        values.sort_by(|a, b| a.total_cmp(b));
        prop_assert!(values
            .windows(2)
            .all(|w| w[0].total_cmp(&w[1]) != std::cmp::Ordering::Greater));
    }

    /// The paged B+-tree agrees with a BTreeSet model through inserts,
    /// duplicate inserts, and removals — under a deliberately tiny node
    /// capacity (deep trees, frequent splits) and a 4-frame pool
    /// (constant eviction), with no pins leaked.
    #[test]
    fn paged_btree_matches_btreeset_model(
        inserts in proptest::collection::vec(any::<u64>(), 1..400),
        removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..80),
    ) {
        let pool = Arc::new(BufferPool::in_memory(4));
        let mut tree = BTree::create(Arc::clone(&pool), "prop_btree", 5).unwrap();
        let mut model = std::collections::BTreeSet::new();
        for &k in &inserts {
            let key = prop_key(k);
            prop_assert_eq!(tree.insert(key).unwrap(), model.insert(key));
        }
        for r in &removals {
            let key = prop_key(inserts[r.index(inserts.len())]);
            prop_assert_eq!(tree.remove(&key).unwrap(), model.remove(&key));
        }
        prop_assert_eq!(tree.len() as usize, model.len());
        for &k in inserts.iter().take(40) {
            let key = prop_key(k);
            prop_assert_eq!(tree.contains(&key).unwrap(), model.contains(&key));
        }
        prop_assert_eq!(tree.keys().unwrap(), model.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(pool.pinned_pages(), 0, "scan must unpin every leaf");
    }

    /// Range scans over the paged B+-tree return exactly the model's
    /// half-open window `[lo, hi)`, in order.
    #[test]
    fn paged_btree_range_scan_matches_model(
        inserts in proptest::collection::vec(any::<u64>(), 1..300),
        lo in any::<u64>(),
        hi in any::<u64>(),
    ) {
        let pool = Arc::new(BufferPool::in_memory(4));
        let mut tree = BTree::create(Arc::clone(&pool), "prop_btree_range", 6).unwrap();
        let mut model = std::collections::BTreeSet::new();
        for &k in &inserts {
            tree.insert(prop_key(k)).unwrap();
            model.insert(prop_key(k));
        }
        // Order the window in *key* space — prop_key deliberately
        // scrambles u64 order to spread inserts across nodes.
        let (lo, hi) = (prop_key(lo), prop_key(hi));
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut got = Vec::new();
        tree.for_each_range(&lo, Some(&hi), |k| {
            got.push(*k);
            true
        })
        .unwrap();
        let want: Vec<[u8; 24]> = model.range(lo..hi).copied().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(pool.pinned_pages(), 0);
    }
}

/// Spread a `u64` across the 24-byte key so adjacent seeds land in
/// different nodes (the low byte varies fastest in the high key bytes).
fn prop_key(k: u64) -> [u8; 24] {
    let mut key = [0u8; 24];
    key[..8].copy_from_slice(&k.rotate_left(32).to_be_bytes());
    key[8..16].copy_from_slice(&k.to_be_bytes());
    key[16..24].copy_from_slice(&(!k).to_be_bytes());
    key
}
