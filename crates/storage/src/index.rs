//! Ordered secondary indexes.
//!
//! [`BTreeIndex`] maps composite keys (`Vec<Value>`, compared with the
//! total order from [`crate::value::Value`]) to record ids. It supports
//! point lookups, inclusive range scans, and ordered iteration in both
//! directions — everything the paper's `RecScoreIndex` B+-trees and primary
//! key indexes need.
//!
//! Lookups charge ⌈log₂ n⌉ page reads to the attached [`IoStats`] as a
//! simple B-tree height proxy, so index access paths are visibly cheaper
//! than scans in the cost model.

use crate::heap::Rid;
use crate::stats::IoStats;
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

/// Composite index key.
pub type IndexKey = Vec<Value>;

/// An ordered index from composite keys to record ids (non-unique).
#[derive(Debug)]
pub struct BTreeIndex {
    name: String,
    /// Ordinals of the indexed columns in the base table schema.
    key_columns: Vec<usize>,
    map: BTreeMap<IndexKey, Vec<Rid>>,
    entries: u64,
    stats: Arc<IoStats>,
}

impl BTreeIndex {
    /// An empty index over the given column ordinals.
    pub fn new(name: impl Into<String>, key_columns: Vec<usize>) -> Self {
        BTreeIndex {
            name: name.into(),
            key_columns,
            map: BTreeMap::new(),
            entries: 0,
            stats: Arc::new(IoStats::new()),
        }
    }

    /// Attach shared I/O counters.
    pub fn with_stats(mut self, stats: Arc<IoStats>) -> Self {
        self.stats = stats;
        self
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordinals of the indexed columns.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Number of `(key, rid)` entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Charge a log-height traversal to the cost model.
    fn charge_descent(&self) {
        let h = (self.map.len().max(2) as f64).log2().ceil() as u64;
        self.stats.record_page_reads(h);
    }

    /// Extract this index's key from a full table tuple.
    pub fn key_of(&self, tuple: &crate::tuple::Tuple) -> IndexKey {
        self.key_columns
            .iter()
            .map(|&i| tuple.get(i).cloned().unwrap_or(Value::Null))
            .collect()
    }

    /// Insert an entry.
    pub fn insert(&mut self, key: IndexKey, rid: Rid) {
        self.map.entry(key).or_default().push(rid);
        self.entries += 1;
    }

    /// Remove one entry matching `(key, rid)`. Returns whether it existed.
    pub fn remove(&mut self, key: &IndexKey, rid: Rid) -> bool {
        if let Some(rids) = self.map.get_mut(key) {
            if let Some(pos) = rids.iter().position(|&r| r == rid) {
                rids.swap_remove(pos);
                if rids.is_empty() {
                    self.map.remove(key);
                }
                self.entries -= 1;
                return true;
            }
        }
        false
    }

    /// Point lookup: all rids for exactly `key`.
    pub fn lookup(&self, key: &IndexKey) -> Vec<Rid> {
        self.charge_descent();
        self.map.get(key).cloned().unwrap_or_default()
    }

    /// Range scan over `[low, high]` bounds (either side optional),
    /// ascending key order.
    pub fn range(
        &self,
        low: Option<&IndexKey>,
        high: Option<&IndexKey>,
    ) -> impl Iterator<Item = (&IndexKey, Rid)> + '_ {
        self.charge_descent();
        let lo: Bound<IndexKey> = match low {
            Some(k) => Bound::Included(k.clone()),
            None => Bound::Unbounded,
        };
        let hi: Bound<IndexKey> = match high {
            Some(k) => Bound::Included(k.clone()),
            None => Bound::Unbounded,
        };
        self.map
            .range((lo, hi))
            .flat_map(|(k, rids)| rids.iter().map(move |&r| (k, r)))
    }

    /// Full ordered iteration, ascending.
    pub fn iter_asc(&self) -> impl Iterator<Item = (&IndexKey, Rid)> + '_ {
        self.charge_descent();
        self.map
            .iter()
            .flat_map(|(k, rids)| rids.iter().map(move |&r| (k, r)))
    }

    /// Full ordered iteration, descending — how `IndexRecommend` walks the
    /// per-user score tree to produce top-k answers without sorting.
    pub fn iter_desc(&self) -> impl Iterator<Item = (&IndexKey, Rid)> + '_ {
        self.charge_descent();
        self.map
            .iter()
            .rev()
            .flat_map(|(k, rids)| rids.iter().map(move |&r| (k, r)))
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: i64) -> IndexKey {
        vec![Value::Int(v)]
    }

    #[test]
    fn point_lookup_non_unique() {
        let mut idx = BTreeIndex::new("ratings_uid", vec![0]);
        idx.insert(k(1), Rid::new(0, 0));
        idx.insert(k(1), Rid::new(0, 1));
        idx.insert(k(2), Rid::new(0, 2));
        let mut got = idx.lookup(&k(1));
        got.sort();
        assert_eq!(got, vec![Rid::new(0, 0), Rid::new(0, 1)]);
        assert_eq!(idx.lookup(&k(3)), vec![]);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn range_scan_inclusive() {
        let mut idx = BTreeIndex::new("i", vec![0]);
        for v in 0..10 {
            idx.insert(k(v), Rid::new(0, v as u16));
        }
        let got: Vec<i64> = idx
            .range(Some(&k(3)), Some(&k(6)))
            .map(|(key, _)| key[0].as_int().unwrap())
            .collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
        let open: Vec<i64> = idx
            .range(Some(&k(8)), None)
            .map(|(key, _)| key[0].as_int().unwrap())
            .collect();
        assert_eq!(open, vec![8, 9]);
    }

    #[test]
    fn descending_iteration_orders_by_key() {
        let mut idx = BTreeIndex::new("scores", vec![0]);
        for (score, item) in [(4.5, 1), (2.0, 2), (5.0, 3), (3.5, 4)] {
            idx.insert(vec![Value::Float(score)], Rid::new(0, item));
        }
        let order: Vec<u16> = idx.iter_desc().map(|(_, r)| r.slot).collect();
        assert_eq!(order, vec![3, 1, 4, 2]);
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        let mut idx = BTreeIndex::new("c", vec![0, 1]);
        idx.insert(vec![Value::Int(1), Value::Int(9)], Rid::new(0, 0));
        idx.insert(vec![Value::Int(2), Value::Int(0)], Rid::new(0, 1));
        idx.insert(vec![Value::Int(1), Value::Int(1)], Rid::new(0, 2));
        let order: Vec<u16> = idx.iter_asc().map(|(_, r)| r.slot).collect();
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn remove_specific_entry() {
        let mut idx = BTreeIndex::new("i", vec![0]);
        idx.insert(k(1), Rid::new(0, 0));
        idx.insert(k(1), Rid::new(0, 1));
        assert!(idx.remove(&k(1), Rid::new(0, 0)));
        assert!(!idx.remove(&k(1), Rid::new(0, 0)), "already gone");
        assert_eq!(idx.lookup(&k(1)), vec![Rid::new(0, 1)]);
        assert!(idx.remove(&k(1), Rid::new(0, 1)));
        assert!(idx.is_empty());
    }

    #[test]
    fn lookups_charge_logarithmic_io() {
        let mut idx = BTreeIndex::new("i", vec![0]);
        for v in 0..1024 {
            idx.insert(k(v), Rid::new(0, 0));
        }
        idx.stats.reset();
        idx.lookup(&k(5));
        assert_eq!(idx.stats.page_reads(), 10, "log2(1024) = 10");
    }

    #[test]
    fn key_of_extracts_indexed_columns() {
        let idx = BTreeIndex::new("i", vec![2, 0]);
        let t = crate::tuple::Tuple::new(vec![
            Value::Int(7),
            Value::Text("x".into()),
            Value::Float(1.5),
        ]);
        assert_eq!(idx.key_of(&t), vec![Value::Float(1.5), Value::Int(7)]);
    }
}
