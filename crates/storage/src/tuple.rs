//! Tuples (rows) and their binary encoding.
//!
//! The encoding is a length-prefixed sequence of tagged values:
//!
//! ```text
//! tuple  := u16 arity, value*
//! value  := u8 tag, payload
//! tag    := 0 Null | 1 Int | 2 Float | 3 Text | 4 Bool | 5 Point | 6 Rect
//! ```
//!
//! Integers and floats are little-endian; text is a `u32` length followed by
//! UTF-8 bytes. The format is what [`crate::page::Page`] stores in its slots.

use crate::error::{StorageError, StorageResult};
use crate::value::Value;
use std::fmt;

/// A row of values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values, in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at ordinal `i`.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Consume the tuple, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Concatenate two tuples (join output row).
    pub fn join(&self, right: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + right.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&right.values);
        Tuple { values }
    }

    /// Project a subset of values by ordinal (out-of-range ordinals are
    /// skipped, mirroring [`crate::schema::Schema::project`]).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices
                .iter()
                .filter_map(|&i| self.values.get(i).cloned())
                .collect(),
        }
    }

    /// Size of the binary encoding in bytes.
    pub fn encoded_size(&self) -> usize {
        2 + self.values.iter().map(Value::encoded_size).sum::<usize>()
    }

    /// Append the binary encoding to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        debug_assert!(self.values.len() <= u16::MAX as usize);
        buf.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            match v {
                Value::Null => buf.push(0),
                Value::Int(x) => {
                    buf.push(1);
                    buf.extend_from_slice(&x.to_le_bytes());
                }
                Value::Float(x) => {
                    buf.push(2);
                    buf.extend_from_slice(&x.to_le_bytes());
                }
                Value::Text(s) => {
                    buf.push(3);
                    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    buf.extend_from_slice(s.as_bytes());
                }
                Value::Bool(b) => {
                    buf.push(4);
                    buf.push(*b as u8);
                }
                Value::Point(x, y) => {
                    buf.push(5);
                    buf.extend_from_slice(&x.to_le_bytes());
                    buf.extend_from_slice(&y.to_le_bytes());
                }
                Value::Rect(a, b, c, d) => {
                    buf.push(6);
                    for v in [a, b, c, d] {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
    }

    /// Decode a tuple from the front of `bytes`, returning the tuple and the
    /// number of bytes consumed.
    pub fn decode(bytes: &[u8]) -> StorageResult<(Tuple, usize)> {
        let corrupt = |msg: &str| StorageError::Corrupt(msg.to_owned());
        if bytes.len() < 2 {
            return Err(corrupt("truncated arity"));
        }
        let arity = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        // Fixed-width reads: slice then convert, with both the bounds
        // check and the width check surfacing as `Corrupt` rather than
        // panicking on adversarial page bytes.
        let need8 = |off: usize| -> StorageResult<[u8; 8]> {
            bytes
                .get(off..off + 8)
                .and_then(|s| <[u8; 8]>::try_from(s).ok())
                .ok_or_else(|| corrupt("truncated payload"))
        };
        let need4 = |off: usize| -> StorageResult<[u8; 4]> {
            bytes
                .get(off..off + 4)
                .and_then(|s| <[u8; 4]>::try_from(s).ok())
                .ok_or_else(|| corrupt("truncated payload"))
        };
        let mut off = 2;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            let tag = *bytes.get(off).ok_or_else(|| corrupt("truncated tag"))?;
            off += 1;
            let v = match tag {
                0 => Value::Null,
                1 => {
                    let b = need8(off)?;
                    off += 8;
                    Value::Int(i64::from_le_bytes(b))
                }
                2 => {
                    let b = need8(off)?;
                    off += 8;
                    Value::Float(f64::from_le_bytes(b))
                }
                3 => {
                    let lb = need4(off)?;
                    off += 4;
                    let len = u32::from_le_bytes(lb) as usize;
                    let raw = bytes
                        .get(off..off + len)
                        .ok_or_else(|| corrupt("truncated text"))?;
                    off += len;
                    Value::Text(
                        std::str::from_utf8(raw)
                            .map_err(|_| corrupt("invalid utf8"))?
                            .to_owned(),
                    )
                }
                4 => {
                    let b = *bytes.get(off).ok_or_else(|| corrupt("truncated bool"))?;
                    off += 1;
                    Value::Bool(b != 0)
                }
                5 => {
                    let xb = need8(off)?;
                    let yb = need8(off + 8)?;
                    off += 16;
                    Value::Point(f64::from_le_bytes(xb), f64::from_le_bytes(yb))
                }
                6 => {
                    let mut vals = [0.0f64; 4];
                    for (k, v) in vals.iter_mut().enumerate() {
                        *v = f64::from_le_bytes(need8(off + k * 8)?);
                    }
                    off += 32;
                    Value::Rect(vals[0], vals[1], vals[2], vals[3])
                }
                t => return Err(StorageError::Corrupt(format!("unknown value tag {t}"))),
            };
            values.push(v);
        }
        Ok((Tuple { values }, off))
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        Tuple::new(vec![
            Value::Int(42),
            Value::Float(3.5),
            Value::Text("The Matrix".into()),
            Value::Null,
            Value::Bool(true),
            Value::Point(-93.2, 44.9),
            Value::Rect(0.0, 0.0, 10.5, 20.25),
        ])
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        assert_eq!(buf.len(), t.encoded_size());
        let (back, used) = Tuple::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, t);
    }

    #[test]
    fn decode_two_consecutive_tuples() {
        let a = Tuple::new(vec![Value::Int(1)]);
        let b = Tuple::new(vec![Value::Text("x".into())]);
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        b.encode_into(&mut buf);
        let (da, n) = Tuple::decode(&buf).unwrap();
        let (db, m) = Tuple::decode(&buf[n..]).unwrap();
        assert_eq!(da, a);
        assert_eq!(db, b);
        assert_eq!(n + m, buf.len());
    }

    #[test]
    fn decode_rejects_truncation_at_every_prefix() {
        let t = sample();
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                Tuple::decode(&buf[..cut]).is_err(),
                "prefix of {cut} bytes should not decode"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_tag_and_bad_utf8() {
        // arity 1, tag 9.
        let buf = vec![1, 0, 9];
        assert!(matches!(Tuple::decode(&buf), Err(StorageError::Corrupt(_))));
        // arity 1, text of length 1 with invalid UTF-8.
        let buf = vec![1, 0, 3, 1, 0, 0, 0, 0xFF];
        assert!(matches!(Tuple::decode(&buf), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn join_and_project() {
        let l = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        let r = Tuple::new(vec![Value::Text("a".into())]);
        let j = l.join(&r);
        assert_eq!(j.arity(), 3);
        let p = j.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Text("a".into()), Value::Int(1)]);
    }

    #[test]
    fn display_is_parenthesized() {
        let t = Tuple::new(vec![Value::Int(1), Value::Text("x".into())]);
        assert_eq!(t.to_string(), "(1, x)");
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t = Tuple::default();
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let (back, used) = Tuple::decode(&buf).unwrap();
        assert_eq!(back, t);
        assert_eq!(used, 2);
    }
}
