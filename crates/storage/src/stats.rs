//! Page-I/O counters — the cost model behind the paper's §IV-A analysis.
//!
//! The RecDB paper expresses operator cost in pages fetched (`||I||`,
//! `α_u × ||I||`, …). Every block-granular access in this crate bumps these
//! counters so benches and tests can assert cost *shapes* (e.g. that
//! `FilterRecommend` touches a fraction of the pages `Recommend` does)
//! independent of wall-clock noise.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic page read/write counters. Cheap to share: all methods take
/// `&self` (interior atomics), so a table can count reads during scans.
#[derive(Debug, Default)]
pub struct IoStats {
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    tuple_reads: AtomicU64,
    tuple_writes: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Record `n` page reads.
    pub fn record_page_reads(&self, n: u64) {
        self.page_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` page writes.
    pub fn record_page_writes(&self, n: u64) {
        self.page_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` tuple reads.
    pub fn record_tuple_reads(&self, n: u64) {
        self.tuple_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` tuple writes.
    pub fn record_tuple_writes(&self, n: u64) {
        self.tuple_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Total page reads so far.
    pub fn page_reads(&self) -> u64 {
        self.page_reads.load(Ordering::Relaxed)
    }

    /// Total page writes so far.
    pub fn page_writes(&self) -> u64 {
        self.page_writes.load(Ordering::Relaxed)
    }

    /// Total tuple reads so far.
    pub fn tuple_reads(&self) -> u64 {
        self.tuple_reads.load(Ordering::Relaxed)
    }

    /// Total tuple writes so far.
    pub fn tuple_writes(&self) -> u64 {
        self.tuple_writes.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero (between bench iterations).
    pub fn reset(&self) {
        self.page_reads.store(0, Ordering::Relaxed);
        self.page_writes.store(0, Ordering::Relaxed);
        self.tuple_reads.store(0, Ordering::Relaxed);
        self.tuple_writes.store(0, Ordering::Relaxed);
    }

    /// Snapshot of `(page_reads, page_writes, tuple_reads, tuple_writes)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.page_reads(),
            self.page_writes(),
            self.tuple_reads(),
            self.tuple_writes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_page_reads(3);
        s.record_page_reads(2);
        s.record_page_writes(1);
        s.record_tuple_reads(100);
        s.record_tuple_writes(7);
        assert_eq!(s.snapshot(), (5, 1, 100, 7));
        s.reset();
        assert_eq!(s.snapshot(), (0, 0, 0, 0));
    }

    #[test]
    fn counting_through_shared_reference() {
        let s = IoStats::new();
        let r: &IoStats = &s;
        r.record_page_reads(1);
        assert_eq!(s.page_reads(), 1);
    }
}
