//! The table catalog: named tables, each a heap plus its indexes.
//!
//! Index maintenance is transparent: [`Table::insert`] and [`Table::delete`]
//! keep every secondary index in sync with the heap.

use crate::error::{StorageError, StorageResult};
use crate::heap::{HeapTable, Rid};
use crate::index::BTreeIndex;
use crate::page::Page;
use crate::pool::BufferPool;
use crate::schema::Schema;
use crate::stats::IoStats;
use crate::tuple::Tuple;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named relation: heap storage plus secondary indexes.
#[derive(Debug)]
pub struct Table {
    name: String,
    heap: HeapTable,
    indexes: Vec<BTreeIndex>,
}

impl Table {
    /// A fresh table whose heap pages through `pool`.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        stats: Arc<IoStats>,
        pool: Arc<BufferPool>,
    ) -> Self {
        let name = name.into();
        let heap = HeapTable::with_pool(schema, stats, pool, &name);
        Table {
            name,
            heap,
            indexes: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        self.heap.schema()
    }

    /// The underlying heap (read access for scans).
    pub fn heap(&self) -> &HeapTable {
        &self.heap
    }

    /// Mutable heap access, reserved for the crate-internal recovery path
    /// (checkpoint restore installs pages directly).
    pub(crate) fn heap_mut(&mut self) -> &mut HeapTable {
        &mut self.heap
    }

    /// Number of live tuples.
    pub fn tuple_count(&self) -> u64 {
        self.heap.tuple_count()
    }

    /// Create a secondary index over the named columns and backfill it from
    /// the current heap contents.
    pub fn create_index(&mut self, index_name: &str, columns: &[&str]) -> StorageResult<()> {
        if self.indexes.iter().any(|i| i.name() == index_name) {
            return Err(StorageError::IndexExists(index_name.to_owned()));
        }
        let ordinals: Vec<usize> = columns
            .iter()
            .map(|c| self.schema().resolve(c))
            .collect::<StorageResult<_>>()?;
        let mut idx =
            BTreeIndex::new(index_name, ordinals).with_stats(Arc::clone(self.heap.stats()));
        for (rid, tuple) in self.heap.scan() {
            idx.insert(idx.key_of(&tuple), rid);
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// Drop an index by name.
    pub fn drop_index(&mut self, index_name: &str) -> StorageResult<()> {
        let pos = self
            .indexes
            .iter()
            .position(|i| i.name() == index_name)
            .ok_or_else(|| StorageError::IndexNotFound(index_name.to_owned()))?;
        self.indexes.remove(pos);
        Ok(())
    }

    /// Fetch an index by name.
    pub fn index(&self, index_name: &str) -> StorageResult<&BTreeIndex> {
        self.indexes
            .iter()
            .find(|i| i.name() == index_name)
            .ok_or_else(|| StorageError::IndexNotFound(index_name.to_owned()))
    }

    /// Find any index whose leading key column is `column`, the way a
    /// planner probes for a usable access path.
    pub fn index_on(&self, column: &str) -> Option<&BTreeIndex> {
        let ordinal = self.schema().resolve(column).ok()?;
        self.indexes
            .iter()
            .find(|i| i.key_columns().first() == Some(&ordinal))
    }

    /// All indexes.
    pub fn indexes(&self) -> &[BTreeIndex] {
        &self.indexes
    }

    /// Insert a tuple into the heap and every index.
    pub fn insert(&mut self, tuple: Tuple) -> StorageResult<Rid> {
        let rid = self.heap.insert(tuple)?;
        if !self.indexes.is_empty() {
            let stored = self.heap.get(rid)?;
            for idx in &mut self.indexes {
                idx.insert(idx.key_of(&stored), rid);
            }
        }
        Ok(rid)
    }

    /// Insert many tuples.
    pub fn insert_many(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> StorageResult<Vec<Rid>> {
        tuples.into_iter().map(|t| self.insert(t)).collect()
    }

    /// Delete a tuple from the heap and every index.
    pub fn delete(&mut self, rid: Rid) -> StorageResult<()> {
        let stored = self.heap.get(rid)?;
        self.heap.delete(rid)?;
        for idx in &mut self.indexes {
            idx.remove(&idx.key_of(&stored), rid);
        }
        Ok(())
    }

    /// Fetch a tuple by rid.
    pub fn get(&self, rid: Rid) -> StorageResult<Tuple> {
        self.heap.get(rid)
    }

    /// Drop all rows (heap and indexes).
    pub fn truncate(&mut self) -> StorageResult<()> {
        self.heap.truncate()?;
        for idx in &mut self.indexes {
            idx.clear();
        }
        Ok(())
    }

    /// Clone every heap page — the pre-image a transaction captures
    /// before its first scattered write to this table (DELETE/UPDATE).
    pub fn snapshot_pages(&self) -> StorageResult<Vec<Page>> {
        self.heap.pages_snapshot()
    }

    /// The heap extent an append-only pre-image needs: the page count and
    /// a copy of the current last page (see [`Table::rollback_tail`]).
    pub fn snapshot_tail(&self) -> StorageResult<(usize, Option<Page>)> {
        let count = self.heap.page_count();
        let last = if count == 0 {
            None
        } else {
            Some(self.heap.page_image(count as u32 - 1)?)
        };
        Ok((count, last))
    }

    /// Undo appends past a [`Table::snapshot_tail`] point and rebuild the
    /// secondary indexes from the restored heap.
    pub fn rollback_tail(
        &mut self,
        page_count: usize,
        last_page: Option<Page>,
    ) -> StorageResult<()> {
        self.heap.rollback_tail(page_count, last_page)?;
        self.rebuild_indexes();
        Ok(())
    }

    /// Restore a full [`Table::snapshot_pages`] pre-image and rebuild the
    /// secondary indexes from it.
    pub fn rollback_pages(&mut self, pages: Vec<Page>) -> StorageResult<()> {
        self.heap.rollback_pages(pages)?;
        self.rebuild_indexes();
        Ok(())
    }

    fn rebuild_indexes(&mut self) {
        let heap = &self.heap;
        for idx in &mut self.indexes {
            idx.clear();
            for (rid, tuple) in heap.scan() {
                idx.insert(idx.key_of(&tuple), rid);
            }
        }
    }
}

/// The database catalog: a named collection of tables sharing one set of
/// I/O counters.
#[derive(Debug)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    stats: Arc<IoStats>,
    pool: Arc<BufferPool>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog over a private, unbounded buffer pool.
    pub fn new() -> Self {
        Catalog::with_pool(Arc::new(BufferPool::unbounded()))
    }

    /// An empty catalog whose tables page through `pool` (the engine
    /// passes its bounded, metrics-attached pool here).
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        Catalog {
            tables: BTreeMap::new(),
            stats: Arc::new(IoStats::new()),
            pool,
        }
    }

    /// The shared buffer pool every table in this catalog pages through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The shared I/O counters charged by every table in this catalog.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Create a table. Table names are case-insensitive (stored folded to
    /// lowercase, like PostgreSQL's unquoted identifiers).
    pub fn create_table(&mut self, name: &str, schema: Schema) -> StorageResult<&mut Table> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(StorageError::TableExists(name.to_owned()));
        }
        let table = Table::new(
            key.clone(),
            schema,
            Arc::clone(&self.stats),
            Arc::clone(&self.pool),
        );
        Ok(self.tables.entry(key).or_insert(table))
    }

    /// Drop a table.
    pub fn drop_table(&mut self, name: &str) -> StorageResult<()> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| StorageError::TableNotFound(name.to_owned()))
    }

    /// Remove a table and hand it back whole (heap, indexes and all) —
    /// the pre-image a transaction keeps so `DROP TABLE` can be undone.
    pub fn take_table(&mut self, name: &str) -> StorageResult<Table> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| StorageError::TableNotFound(name.to_owned()))
    }

    /// Re-install a table removed with [`Catalog::take_table`].
    pub fn restore_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_owned(), table);
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> StorageResult<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| StorageError::TableNotFound(name.to_owned()))
    }

    /// Look up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> StorageResult<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| StorageError::TableNotFound(name.to_owned()))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Iterate every table in name order (checkpoint writer).
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Iterate every table mutably in name order (checkpoint writer:
    /// draining dirty-page sets after a successful snapshot).
    pub fn tables_mut(&mut self) -> impl Iterator<Item = &mut Table> {
        self.tables.values_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::{DataType, Value};

    fn ratings_schema() -> Schema {
        Schema::new(vec![
            Column::new("uid", DataType::Int),
            Column::new("iid", DataType::Int),
            Column::new("ratingval", DataType::Float),
        ])
    }

    fn row(u: i64, i: i64, r: f64) -> Tuple {
        Tuple::new(vec![Value::Int(u), Value::Int(i), Value::Float(r)])
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let mut cat = Catalog::new();
        cat.create_table("Ratings", ratings_schema()).unwrap();
        assert!(cat.table("ratings").is_ok());
        assert!(cat.table("RATINGS").is_ok());
        assert!(matches!(
            cat.create_table("ratings", ratings_schema()),
            Err(StorageError::TableExists(_))
        ));
        assert_eq!(cat.table_names(), vec!["ratings"]);
    }

    #[test]
    fn drop_table() {
        let mut cat = Catalog::new();
        cat.create_table("t", ratings_schema()).unwrap();
        cat.drop_table("T").unwrap();
        assert!(matches!(
            cat.table("t"),
            Err(StorageError::TableNotFound(_))
        ));
        assert!(cat.drop_table("t").is_err());
    }

    #[test]
    fn index_maintained_on_insert_and_delete() {
        let mut cat = Catalog::new();
        let t = cat.create_table("ratings", ratings_schema()).unwrap();
        t.create_index("ratings_uid", &["uid"]).unwrap();
        let rid1 = t.insert(row(1, 10, 4.0)).unwrap();
        let rid2 = t.insert(row(1, 11, 3.0)).unwrap();
        t.insert(row(2, 10, 5.0)).unwrap();
        let idx = t.index("ratings_uid").unwrap();
        assert_eq!(idx.lookup(&vec![Value::Int(1)]).len(), 2);
        t.delete(rid1).unwrap();
        let idx = t.index("ratings_uid").unwrap();
        assert_eq!(idx.lookup(&vec![Value::Int(1)]), vec![rid2]);
    }

    #[test]
    fn index_backfills_existing_rows() {
        let mut cat = Catalog::new();
        let t = cat.create_table("ratings", ratings_schema()).unwrap();
        for u in 0..50 {
            t.insert(row(u, u * 3, 2.5)).unwrap();
        }
        t.create_index("by_iid", &["iid"]).unwrap();
        let idx = t.index("by_iid").unwrap();
        assert_eq!(idx.len(), 50);
        assert_eq!(idx.lookup(&vec![Value::Int(30)]).len(), 1);
    }

    #[test]
    fn index_on_finds_leading_column() {
        let mut cat = Catalog::new();
        let t = cat.create_table("ratings", ratings_schema()).unwrap();
        t.create_index("by_uid_iid", &["uid", "iid"]).unwrap();
        assert!(t.index_on("uid").is_some());
        assert!(t.index_on("iid").is_none(), "iid is not a leading column");
        assert!(t.index_on("nope").is_none());
    }

    #[test]
    fn drop_index_removes_it() {
        let mut cat = Catalog::new();
        let t = cat.create_table("r", ratings_schema()).unwrap();
        t.create_index("i", &["uid"]).unwrap();
        t.drop_index("i").unwrap();
        assert!(t.index("i").is_err());
        assert!(matches!(
            t.drop_index("i"),
            Err(StorageError::IndexNotFound(_))
        ));
        // Inserts after the drop don't touch the removed index.
        t.insert(row(1, 1, 1.0)).unwrap();
        assert!(t.indexes().is_empty());
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut cat = Catalog::new();
        let t = cat.create_table("ratings", ratings_schema()).unwrap();
        t.create_index("i", &["uid"]).unwrap();
        assert!(matches!(
            t.create_index("i", &["iid"]),
            Err(StorageError::IndexExists(_))
        ));
    }

    #[test]
    fn shared_stats_across_tables() {
        let mut cat = Catalog::new();
        cat.create_table("a", ratings_schema()).unwrap();
        cat.create_table("b", ratings_schema()).unwrap();
        cat.table_mut("a").unwrap().insert(row(1, 1, 1.0)).unwrap();
        cat.table_mut("b").unwrap().insert(row(2, 2, 2.0)).unwrap();
        assert_eq!(cat.stats().page_writes(), 2);
    }

    #[test]
    fn truncate_clears_heap_and_indexes() {
        let mut cat = Catalog::new();
        let t = cat.create_table("r", ratings_schema()).unwrap();
        t.create_index("i", &["uid"]).unwrap();
        t.insert(row(1, 1, 1.0)).unwrap();
        t.truncate().unwrap();
        assert_eq!(t.tuple_count(), 0);
        assert!(t.index("i").unwrap().is_empty());
    }

    #[test]
    fn rollback_tail_undoes_appends_and_resyncs_indexes() {
        let mut cat = Catalog::new();
        let t = cat.create_table("r", ratings_schema()).unwrap();
        t.create_index("i", &["uid"]).unwrap();
        t.insert(row(1, 1, 1.0)).unwrap();
        t.heap_mut().take_dirty_pages(); // pretend a checkpoint ran

        let (pages, last) = t.snapshot_tail().unwrap();
        t.insert(row(2, 2, 2.0)).unwrap();
        t.insert(row(3, 3, 3.0)).unwrap();
        t.rollback_tail(pages, last).unwrap();

        assert_eq!(t.tuple_count(), 1);
        assert_eq!(t.index("i").unwrap().len(), 1);
        assert!(
            t.heap().is_dirty(),
            "a rolled-back table diverges from the checkpoint image"
        );
        // The heap is byte-identical to the pre-append state, so a fresh
        // insert lands at the same rid an untouched run would assign.
        let rid = t.insert(row(4, 4, 4.0)).unwrap();
        assert_eq!(rid, Rid::new(0, 1));
    }

    #[test]
    fn rollback_pages_restores_deleted_rows() {
        let mut cat = Catalog::new();
        let t = cat.create_table("r", ratings_schema()).unwrap();
        t.create_index("i", &["uid"]).unwrap();
        let rid1 = t.insert(row(1, 1, 1.0)).unwrap();
        t.insert(row(2, 2, 2.0)).unwrap();

        let snapshot = t.snapshot_pages().unwrap();
        t.delete(rid1).unwrap();
        assert_eq!(t.tuple_count(), 1);
        t.rollback_pages(snapshot).unwrap();

        assert_eq!(t.tuple_count(), 2);
        assert_eq!(t.get(rid1).unwrap(), row(1, 1, 1.0));
        assert_eq!(t.index("i").unwrap().len(), 2);
    }

    #[test]
    fn take_and_restore_table_roundtrip() {
        let mut cat = Catalog::new();
        let t = cat.create_table("R", ratings_schema()).unwrap();
        t.create_index("i", &["uid"]).unwrap();
        t.insert(row(1, 1, 1.0)).unwrap();

        let taken = cat.take_table("r").unwrap();
        assert!(!cat.contains("r"));
        cat.restore_table(taken);
        let t = cat.table("R").unwrap();
        assert_eq!(t.tuple_count(), 1);
        assert_eq!(t.index("i").unwrap().len(), 1);
        assert!(cat.take_table("missing").is_err());
    }
}
