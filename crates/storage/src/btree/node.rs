//! On-disk B+-tree node format.
//!
//! A node serializes to one [`PAGE_SIZE`] checksummed block, parallel to
//! the heap's slotted-page block format but with its own magic (`RBTN`) so
//! a heap block can never be mistaken for an index block:
//!
//! ```text
//! 0..4    magic "RBTN"
//! 4..8    CRC32 over bytes 8..PAGE_SIZE
//! 8       node kind: 0 = branch, 1 = leaf
//! 9..11   key count (u16)
//! 11..15  right-sibling page number (leaf chain; NO_PAGE if none)
//! 15..    keys (KEY_SIZE bytes each), then — branches only —
//!         child page numbers (u32 × (key count + 1)), then zero padding
//! ```
//!
//! Keys are opaque fixed-width byte strings compared lexicographically;
//! the index layer (RecScoreIndex) chooses an order-preserving encoding so
//! byte order equals logical order.

use crate::checksum::crc32;
use crate::error::{StorageError, StorageResult};
use crate::page::PAGE_SIZE;

/// Fixed key width: `(user id, score, item id)` packs into 8 + 8 + 8 bytes.
pub const KEY_SIZE: usize = 24;

/// A B+-tree key: an opaque, lexicographically ordered byte string.
pub type Key = [u8; KEY_SIZE];

/// Sentinel page number meaning "no page" (end of the leaf chain).
pub const NO_PAGE: u32 = u32::MAX;

/// Fixed header bytes before the key area.
const NODE_HEADER_SIZE: usize = 15;

/// Most keys a leaf can hold and still encode into one block.
pub const MAX_LEAF_KEYS: usize = (PAGE_SIZE - NODE_HEADER_SIZE) / KEY_SIZE;

/// Most keys a branch can hold: each key costs `KEY_SIZE` bytes plus one
/// `u32` child, and there is one extra child pointer.
pub const MAX_BRANCH_KEYS: usize = (PAGE_SIZE - NODE_HEADER_SIZE - 4) / (KEY_SIZE + 4);

const NODE_MAGIC: u32 = u32::from_le_bytes(*b"RBTN");

/// One B+-tree node: a leaf (sorted keys + sibling pointer) or a branch
/// (separator keys + child page numbers, `children.len() == keys.len() + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Whether this node is a leaf.
    pub is_leaf: bool,
    /// Sorted keys. For a branch these are separators: child `i` holds
    /// keys `< keys[i]`, child `i + 1` holds keys `>= keys[i]`.
    pub keys: Vec<Key>,
    /// Child page numbers (branches only; empty for leaves).
    pub children: Vec<u32>,
    /// Right sibling in the leaf chain (leaves only; [`NO_PAGE`] if none).
    pub next: u32,
}

impl Node {
    /// An empty leaf with no right sibling.
    pub fn leaf() -> Self {
        Node {
            is_leaf: true,
            keys: Vec::new(),
            children: Vec::new(),
            next: NO_PAGE,
        }
    }

    /// A branch over the given separators and children.
    pub fn branch(keys: Vec<Key>, children: Vec<u32>) -> Self {
        debug_assert_eq!(children.len(), keys.len() + 1);
        Node {
            is_leaf: false,
            keys,
            children,
            next: NO_PAGE,
        }
    }

    /// Number of keys currently stored.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Encode into one [`PAGE_SIZE`] block (see module docs for layout).
    pub fn encode_block(&self) -> Vec<u8> {
        debug_assert!(self.keys.len() <= u16::MAX as usize);
        debug_assert!(if self.is_leaf {
            self.children.is_empty() && self.keys.len() <= MAX_LEAF_KEYS
        } else {
            self.children.len() == self.keys.len() + 1 && self.keys.len() <= MAX_BRANCH_KEYS
        });
        let mut block = Vec::with_capacity(PAGE_SIZE);
        block.extend_from_slice(&NODE_MAGIC.to_le_bytes());
        block.extend_from_slice(&[0u8; 4]); // CRC placeholder
        block.push(self.is_leaf as u8);
        block.extend_from_slice(&(self.keys.len() as u16).to_le_bytes());
        block.extend_from_slice(&self.next.to_le_bytes());
        for key in &self.keys {
            block.extend_from_slice(key);
        }
        if !self.is_leaf {
            for &child in &self.children {
                block.extend_from_slice(&child.to_le_bytes());
            }
        }
        block.resize(PAGE_SIZE, 0);
        let crc = crc32(&block[8..]);
        block[4..8].copy_from_slice(&crc.to_le_bytes());
        block
    }

    /// Decode one block back into a node, verifying the checksum first.
    /// `file` and `page_no` only label corruption errors.
    pub fn decode_block(block: &[u8], file: &str, page_no: u32) -> StorageResult<Node> {
        if block.len() != PAGE_SIZE {
            return Err(StorageError::Corruption {
                file: file.to_owned(),
                page: page_no,
                expected: PAGE_SIZE as u32,
                found: block.len() as u32,
            });
        }
        let stored_crc = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let actual_crc = crc32(&block[8..]);
        if stored_crc != actual_crc {
            return Err(StorageError::Corruption {
                file: file.to_owned(),
                page: page_no,
                expected: stored_crc,
                found: actual_crc,
            });
        }
        let magic = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        if magic != NODE_MAGIC {
            return Err(StorageError::Corrupt(format!(
                "index block in `{file}` page {page_no} has bad magic {magic:#010x}"
            )));
        }
        let bad = |msg: &str| StorageError::Corrupt(format!("`{file}` page {page_no}: {msg}"));
        let is_leaf = match block[8] {
            0 => false,
            1 => true,
            other => return Err(bad(&format!("node kind byte is {other}"))),
        };
        let key_count = u16::from_le_bytes([block[9], block[10]]) as usize;
        let next = u32::from_le_bytes([block[11], block[12], block[13], block[14]]);
        let max = if is_leaf {
            MAX_LEAF_KEYS
        } else {
            MAX_BRANCH_KEYS
        };
        if key_count > max {
            return Err(bad(&format!("{key_count} keys overflow the block")));
        }
        let mut keys = Vec::with_capacity(key_count);
        for i in 0..key_count {
            let at = NODE_HEADER_SIZE + i * KEY_SIZE;
            let mut key = [0u8; KEY_SIZE];
            key.copy_from_slice(&block[at..at + KEY_SIZE]);
            keys.push(key);
        }
        let mut children = Vec::new();
        if !is_leaf {
            let base = NODE_HEADER_SIZE + key_count * KEY_SIZE;
            children.reserve(key_count + 1);
            for i in 0..=key_count {
                let at = base + i * 4;
                children.push(u32::from_le_bytes(
                    block[at..at + 4]
                        .try_into()
                        .expect("fixed-width child slice"),
                ));
            }
        }
        Ok(Node {
            is_leaf,
            keys,
            children,
            next,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> Key {
        let mut k = [0u8; KEY_SIZE];
        k[0] = n;
        k
    }

    #[test]
    fn leaf_roundtrip() {
        let mut n = Node::leaf();
        n.keys = (0..50).map(key).collect();
        n.next = 7;
        let block = n.encode_block();
        assert_eq!(block.len(), PAGE_SIZE);
        let back = Node::decode_block(&block, "idx", 3).unwrap();
        assert_eq!(back, n);
        // Decode→encode is byte-identical, like heap pages.
        assert_eq!(back.encode_block(), block);
    }

    #[test]
    fn branch_roundtrip() {
        let n = Node::branch(vec![key(10), key(20)], vec![1, 2, 3]);
        let back = Node::decode_block(&n.encode_block(), "idx", 0).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn corruption_is_detected() {
        let mut n = Node::leaf();
        n.keys = (0..10).map(key).collect();
        let mut block = n.encode_block();
        block[100] ^= 0x01;
        assert!(matches!(
            Node::decode_block(&block, "idx", 5),
            Err(StorageError::Corruption { page: 5, .. })
        ));
        assert!(Node::decode_block(&block[..100], "idx", 0).is_err());
    }

    #[test]
    fn heap_block_is_rejected_by_magic() {
        let page = crate::page::Page::new();
        let block = page.encode_block(0);
        assert!(matches!(
            Node::decode_block(&block, "idx", 0),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn capacity_constants_fit_a_block() {
        let mut leaf = Node::leaf();
        leaf.keys = vec![[0xAB; KEY_SIZE]; MAX_LEAF_KEYS];
        assert_eq!(leaf.encode_block().len(), PAGE_SIZE);
        let branch = Node::branch(
            vec![[0xCD; KEY_SIZE]; MAX_BRANCH_KEYS],
            vec![0; MAX_BRANCH_KEYS + 1],
        );
        assert_eq!(branch.encode_block().len(), PAGE_SIZE);
        const { assert!(MAX_LEAF_KEYS > 300) };
        const { assert!(MAX_BRANCH_KEYS > 250) };
    }
}
