//! A paged B+-tree over buffer-pool frames.
//!
//! This is the disk-resident index structure behind the engine's
//! RecScoreIndex: fixed-width 24-byte keys (the index layer packs
//! `(user id, score, item id)` into an order-preserving encoding), nodes
//! stored one per 8 KiB block through the [`BufferPool`], and leaves
//! chained left-to-right for range scans. The shape follows the classic
//! textbook B+-tree (and the simpledb-style `index/btree` exemplars):
//!
//! * the **root is always page 0** of the tree's pool file, so the tree
//!   needs no separate superblock — a root split copies both halves into
//!   fresh pages and rewrites page 0 as a branch;
//! * splits happen **preemptively on the way down**: any full child on
//!   the descent path is split before descending into it, so an insert
//!   into a leaf can never cascade upward. An injected failure at the
//!   `storage::btree_split` fail point therefore leaves the tree valid —
//!   completed splits stand on their own and the key is simply not
//!   inserted;
//! * deletes do not rebalance (like PostgreSQL's `nbtree`, which only
//!   reclaims fully-empty pages). Empty leaves stay in the chain and are
//!   skipped by scans; a `clear()` resets the file outright.
//!
//! Node fan-out is configurable (`max_keys`), clamped to what fits one
//! block. Production trees use [`DEFAULT_NODE_CAPACITY`]; tests shrink it
//! to force deep trees and splits from tiny datasets.

pub mod node;

use crate::error::StorageResult;
use crate::pool::{BufferPool, FileId, FileKind, FrameData};
use node::Node;
pub use node::{Key, KEY_SIZE, MAX_BRANCH_KEYS, MAX_LEAF_KEYS, NO_PAGE};
use std::sync::Arc;

/// Default maximum keys per node (both leaf and branch). 256 keys × 24
/// bytes fills ~75% of a block, leaving headroom for the header.
pub const DEFAULT_NODE_CAPACITY: usize = 256;

/// Page number of the root node, fixed for the life of the tree.
const ROOT_PAGE: u32 = 0;

/// A B+-tree of fixed-width keys, paged through a [`BufferPool`].
#[derive(Debug)]
pub struct BTree {
    pool: Arc<BufferPool>,
    file: FileId,
    max_keys: usize,
    len: u64,
}

impl BTree {
    /// Create an empty tree as a new file in `pool`. `label` names the
    /// tree in corruption errors; `max_keys` bounds node fan-out (clamped
    /// to `[4, block capacity]`).
    pub fn create(pool: Arc<BufferPool>, label: &str, max_keys: usize) -> StorageResult<Self> {
        let max_keys = max_keys.clamp(4, MAX_LEAF_KEYS.min(MAX_BRANCH_KEYS));
        let file = pool.create_file(FileKind::Index, label);
        let root = pool.allocate_page(file, FrameData::Node(Node::leaf()))?;
        debug_assert_eq!(root, ROOT_PAGE);
        Ok(BTree {
            pool,
            file,
            max_keys,
            len: 0,
        })
    }

    /// Number of keys in the tree.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer pool this tree pages through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Node pages allocated so far (for sizing diagnostics).
    pub fn node_pages(&self) -> u32 {
        self.pool.page_count(self.file)
    }

    /// Configured maximum keys per node.
    pub fn max_keys(&self) -> usize {
        self.max_keys
    }

    /// Drop every key, resetting the file to a single empty root leaf.
    pub fn clear(&mut self) -> StorageResult<()> {
        self.pool.truncate_file(self.file, 0)?;
        let root = self
            .pool
            .allocate_page(self.file, FrameData::Node(Node::leaf()))?;
        debug_assert_eq!(root, ROOT_PAGE);
        self.len = 0;
        Ok(())
    }

    /// Insert `key`. Returns `false` (without change) if it was already
    /// present.
    pub fn insert(&mut self, key: Key) -> StorageResult<bool> {
        // Preemptive split: never descend into a full node.
        let root_full = self
            .pool
            .with_node(self.file, ROOT_PAGE, |n| n.keys.len() >= self.max_keys)?;
        if root_full {
            self.split_root()?;
        }
        let mut pno = ROOT_PAGE;
        loop {
            enum Step {
                Inserted(bool),
                Descend { child: u32, idx: usize },
            }
            let step = self.pool.with_node_mut(self.file, pno, |n| {
                if n.is_leaf {
                    match n.keys.binary_search(&key) {
                        Ok(_) => Step::Inserted(false),
                        Err(at) => {
                            n.keys.insert(at, key);
                            Step::Inserted(true)
                        }
                    }
                } else {
                    let idx = n.keys.partition_point(|k| k <= &key);
                    Step::Descend {
                        child: n.children[idx],
                        idx,
                    }
                }
            })?;
            match step {
                Step::Inserted(added) => {
                    if added {
                        self.len += 1;
                    }
                    return Ok(added);
                }
                Step::Descend { child, idx, .. } => {
                    let full = self
                        .pool
                        .with_node(self.file, child, |n| n.keys.len() >= self.max_keys)?;
                    if full {
                        self.split_child(pno, idx)?;
                        // The split may have redirected our key to the new
                        // right sibling; recompute the child from the
                        // updated parent.
                        pno = self.pool.with_node(self.file, pno, |n| {
                            let idx = n.keys.partition_point(|k| k <= &key);
                            n.children[idx]
                        })?;
                    } else {
                        pno = child;
                    }
                }
            }
        }
    }

    /// Remove `key`. Returns `false` if it was not present. No rebalance:
    /// an emptied leaf stays in the chain until [`BTree::clear`].
    pub fn remove(&mut self, key: &Key) -> StorageResult<bool> {
        let mut pno = ROOT_PAGE;
        loop {
            let next = self.pool.with_node_mut(self.file, pno, |n| {
                if n.is_leaf {
                    match n.keys.binary_search(key) {
                        Ok(at) => {
                            n.keys.remove(at);
                            Ok(true)
                        }
                        Err(_) => Ok(false),
                    }
                } else {
                    let idx = n.keys.partition_point(|k| k <= key);
                    Err(n.children[idx])
                }
            })?;
            match next {
                Ok(removed) => {
                    if removed {
                        self.len -= 1;
                    }
                    return Ok(removed);
                }
                Err(child) => pno = child,
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &Key) -> StorageResult<bool> {
        let (leaf, _) = self.seek_leaf(key)?;
        self.pool
            .with_node(self.file, leaf, |n| n.keys.binary_search(key).is_ok())
    }

    /// Visit keys in `[lo, hi)` in ascending order (`hi = None` means "to
    /// the end"). The callback returns `false` to stop early. Keys are
    /// copied out one leaf at a time, so the callback runs without the
    /// pool locked and may itself use the pool.
    pub fn for_each_range(
        &self,
        lo: &Key,
        hi: Option<&Key>,
        mut f: impl FnMut(&Key) -> bool,
    ) -> StorageResult<()> {
        let (mut pno, _) = self.seek_leaf(lo)?;
        loop {
            // Pin the leaf across the batch copy; the pin also makes the
            // pool's pinned-pages gauge observable during scans.
            self.pool.pin(self.file, pno)?;
            let (batch, next, done) = {
                let res = self.pool.with_node(self.file, pno, |n| {
                    let start = n.keys.partition_point(|k| k < lo);
                    // An inverted range (`hi < lo`) clamps to empty
                    // rather than slicing backwards.
                    let end = match hi {
                        Some(hi) => n.keys.partition_point(|k| k < hi).max(start),
                        None => n.keys.len(),
                    };
                    // A leaf whose last key reaches `hi` completes the
                    // range; an empty leaf never does.
                    let done = match (hi, n.keys.last()) {
                        (Some(hi), Some(last)) => last >= hi,
                        _ => false,
                    };
                    (n.keys[start..end].to_vec(), n.next, done)
                });
                self.pool.unpin(self.file, pno);
                res?
            };
            for key in &batch {
                if !f(key) {
                    return Ok(());
                }
            }
            if done || next == NO_PAGE {
                return Ok(());
            }
            pno = next;
        }
    }

    /// Every key in ascending order (used by clone/debug paths).
    pub fn keys(&self) -> StorageResult<Vec<Key>> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.for_each_range(&[0u8; KEY_SIZE], None, |k| {
            out.push(*k);
            true
        })?;
        Ok(out)
    }

    /// Tree height in levels (1 = root is a leaf). Diagnostic.
    pub fn height(&self) -> StorageResult<u32> {
        let mut pno = ROOT_PAGE;
        let mut h = 1;
        loop {
            let child = self.pool.with_node(self.file, pno, |n| {
                if n.is_leaf {
                    None
                } else {
                    Some(n.children[0])
                }
            })?;
            match child {
                Some(c) => {
                    pno = c;
                    h += 1;
                }
                None => return Ok(h),
            }
        }
    }

    /// Descend to the leaf that would hold `key`, returning its page and
    /// the descent depth.
    fn seek_leaf(&self, key: &Key) -> StorageResult<(u32, u32)> {
        let mut pno = ROOT_PAGE;
        let mut depth = 0;
        loop {
            let next = self.pool.with_node(self.file, pno, |n| {
                if n.is_leaf {
                    None
                } else {
                    Some(n.children[n.keys.partition_point(|k| k <= key)])
                }
            })?;
            match next {
                Some(child) => {
                    pno = child;
                    depth += 1;
                }
                None => return Ok((pno, depth)),
            }
        }
    }

    /// Split the full root in place: copy its halves into two fresh pages
    /// and rewrite page 0 as a branch over them. This is the only
    /// operation that changes the tree's height.
    fn split_root(&mut self) -> StorageResult<()> {
        recdb_fault::fail_point("storage::btree_split")?;
        let root = self.pool.with_node(self.file, ROOT_PAGE, |n| n.clone())?;
        let (left, right, sep) = split_node(root);
        let left_pno = self.pool.allocate_page(self.file, FrameData::Node(left))?;
        let right_pno = self.pool.allocate_page(self.file, FrameData::Node(right))?;
        // Wire the leaf chain through the two copies.
        self.pool.with_node_mut(self.file, left_pno, |n| {
            if n.is_leaf {
                n.next = right_pno;
            }
        })?;
        self.pool.with_node_mut(self.file, ROOT_PAGE, |n| {
            *n = Node::branch(vec![sep], vec![left_pno, right_pno]);
        })?;
        Ok(())
    }

    /// Split the full child at `parent.children[idx]`, inserting the new
    /// separator and right sibling into the parent (which has room: the
    /// caller split it preemptively on the way down).
    fn split_child(&mut self, parent: u32, idx: usize) -> StorageResult<()> {
        recdb_fault::fail_point("storage::btree_split")?;
        let child_pno = self
            .pool
            .with_node(self.file, parent, |n| n.children[idx])?;
        let child = self.pool.with_node(self.file, child_pno, |n| n.clone())?;
        let (left, right, sep) = split_node(child);
        let right_pno = self.pool.allocate_page(self.file, FrameData::Node(right))?;
        self.pool.with_node_mut(self.file, child_pno, |n| {
            let was_leaf = left.is_leaf;
            *n = left;
            if was_leaf {
                n.next = right_pno;
            }
        })?;
        self.pool.with_node_mut(self.file, parent, |n| {
            n.keys.insert(idx, sep);
            n.children.insert(idx + 1, right_pno);
        })?;
        Ok(())
    }
}

/// Split one overfull node into `(left, right, separator)`. For leaves
/// the separator is copied up (it stays in the right leaf); for branches
/// the middle key moves up. The caller wires leaf `next` pointers.
fn split_node(mut node: Node) -> (Node, Node, Key) {
    let mid = node.keys.len() / 2;
    if node.is_leaf {
        let right_keys = node.keys.split_off(mid);
        let sep = right_keys[0];
        let right = Node {
            is_leaf: true,
            keys: right_keys,
            children: Vec::new(),
            next: node.next,
        };
        (node, right, sep)
    } else {
        let mut right_keys = node.keys.split_off(mid);
        let sep = right_keys.remove(0);
        let right_children = node.children.split_off(mid + 1);
        let right = Node::branch(right_keys, right_children);
        (node, right, sep)
    }
}

impl Drop for BTree {
    fn drop(&mut self) {
        self.pool.remove_file(self.file);
    }
}

impl Clone for BTree {
    /// Deep-copy the tree into a fresh file in the same pool by bulk
    /// inserting keys in ascending order (which keeps the copy's leaves
    /// right-packed).
    fn clone(&self) -> Self {
        let mut copy = BTree::create(
            Arc::clone(&self.pool),
            &format!("clone-of-file-{}", self.file),
            self.max_keys,
        )
        .expect("allocating a root leaf for a tree clone");
        let copied: StorageResult<()> = self.for_each_range(&[0u8; KEY_SIZE], None, |k| {
            copy.insert(*k)
                .expect("re-inserting a key into a tree clone");
            true
        });
        copied.expect("scanning a tree during clone");
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StorageError;

    fn key(n: u64) -> Key {
        let mut k = [0u8; KEY_SIZE];
        k[..8].copy_from_slice(&n.to_be_bytes());
        k
    }

    fn small_tree(max_keys: usize) -> BTree {
        BTree::create(Arc::new(BufferPool::unbounded()), "t", max_keys).unwrap()
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut t = small_tree(4);
        for n in 0..100 {
            assert!(t.insert(key(n)).unwrap());
        }
        assert_eq!(t.len(), 100);
        assert!(!t.insert(key(50)).unwrap(), "duplicate insert must no-op");
        assert_eq!(t.len(), 100);
        for n in 0..100 {
            assert!(t.contains(&key(n)).unwrap(), "missing key {n}");
        }
        assert!(!t.contains(&key(100)).unwrap());
        assert!(t.remove(&key(30)).unwrap());
        assert!(!t.remove(&key(30)).unwrap());
        assert!(!t.contains(&key(30)).unwrap());
        assert_eq!(t.len(), 99);
    }

    #[test]
    fn keys_come_back_sorted_regardless_of_insert_order() {
        let mut t = small_tree(4);
        // Insert in a scrambled deterministic order.
        for n in 0..500u64 {
            t.insert(key((n * 331) % 500)).unwrap();
        }
        let keys = t.keys().unwrap();
        assert_eq!(keys.len(), 500);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(t.height().unwrap() >= 3, "fan-out 4 over 500 keys is deep");
    }

    #[test]
    fn range_scan_respects_bounds_and_early_stop() {
        let mut t = small_tree(5);
        for n in 0..200 {
            t.insert(key(n)).unwrap();
        }
        let mut got = Vec::new();
        t.for_each_range(&key(50), Some(&key(60)), |k| {
            got.push(*k);
            true
        })
        .unwrap();
        assert_eq!(got, (50..60).map(key).collect::<Vec<_>>());

        let mut count = 0;
        t.for_each_range(&key(0), None, |_| {
            count += 1;
            count < 7
        })
        .unwrap();
        assert_eq!(count, 7);
    }

    #[test]
    fn scan_skips_emptied_leaves() {
        let mut t = small_tree(4);
        for n in 0..100 {
            t.insert(key(n)).unwrap();
        }
        // Hollow out the middle: leaves there become empty but stay chained.
        for n in 20..80 {
            t.remove(&key(n)).unwrap();
        }
        let keys = t.keys().unwrap();
        let expected: Vec<Key> = (0..20).chain(80..100).map(key).collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn clear_resets_to_empty_root() {
        let mut t = small_tree(4);
        for n in 0..300 {
            t.insert(key(n)).unwrap();
        }
        assert!(t.node_pages() > 10);
        t.clear().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.node_pages(), 1);
        t.insert(key(7)).unwrap();
        assert_eq!(t.keys().unwrap(), vec![key(7)]);
    }

    #[test]
    fn clone_is_deep_and_equal() {
        let mut t = small_tree(6);
        for n in 0..150 {
            t.insert(key(n * 3)).unwrap();
        }
        let mut c = t.clone();
        assert_eq!(c.keys().unwrap(), t.keys().unwrap());
        c.insert(key(1)).unwrap();
        assert!(!t.contains(&key(1)).unwrap(), "clone shares state");
    }

    #[test]
    fn works_under_a_tiny_pool() {
        let pool = Arc::new(BufferPool::in_memory(4));
        let mut t = BTree::create(Arc::clone(&pool), "t", 8).unwrap();
        for n in 0..2000 {
            t.insert(key((n * 7919) % 2000)).unwrap();
        }
        assert_eq!(t.len(), 2000);
        assert!(pool.evictions() > 0, "a 4-frame pool must evict");
        let keys = t.keys().unwrap();
        assert_eq!(keys.len(), 2000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(pool.pinned_pages(), 0, "scan leaked a pin");
    }

    #[test]
    fn split_fail_point_leaves_tree_consistent() {
        let _x = recdb_fault::exclusive();
        let mut t = small_tree(4);
        recdb_fault::arm_error("storage::btree_split", 3);
        let mut inserted = Vec::new();
        let mut failed = 0;
        for n in 0..50 {
            match t.insert(key(n)) {
                Ok(true) => inserted.push(n),
                Ok(false) => unreachable!("keys are distinct"),
                Err(StorageError::FaultInjected(_)) => failed += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        recdb_fault::clear();
        assert_eq!(failed, 1, "exactly the armed split fails");
        // Every acknowledged insert is readable; the failed one is absent.
        let keys = t.keys().unwrap();
        assert_eq!(keys.len(), inserted.len());
        assert_eq!(t.len(), inserted.len() as u64);
        for n in inserted {
            assert!(t.contains(&key(n)).unwrap());
        }
    }
}
