//! Little-endian binary encoding helpers shared by every durable format
//! (page-file manifests, WAL records, checkpoint metadata).
//!
//! Writers push onto a `Vec<u8>`; readers consume from a [`Reader`] whose
//! every accessor bounds-checks and surfaces truncation as
//! [`StorageError::Corrupt`] instead of panicking — durable bytes are
//! adversarial input by definition.

use crate::error::{StorageError, StorageResult};

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a little-endian `u16`.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` length prefix followed by UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
    /// Context string baked into truncation errors (`"wal record"`,
    /// `"manifest"`, …).
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, labelling errors with `what`.
    pub fn new(bytes: &'a [u8], what: &'static str) -> Self {
        Reader { bytes, at: 0, what }
    }

    fn corrupt(&self, need: &str) -> StorageError {
        StorageError::Corrupt(format!(
            "truncated {} at byte {}: expected {need}",
            self.what, self.at
        ))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The unconsumed tail, without advancing. Pair with [`Reader::skip`]
    /// for formats that embed self-delimiting payloads (e.g. tuples).
    pub fn rest(&self) -> &'a [u8] {
        &self.bytes[self.at..]
    }

    /// Advance past `n` bytes previously inspected via [`Reader::rest`].
    pub fn skip(&mut self, n: usize) -> StorageResult<()> {
        self.take(n).map(|_| ())
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        let s = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or_else(|| self.corrupt("raw bytes"))?;
        self.at += n;
        Ok(s)
    }

    /// Take a `u8`.
    pub fn take_u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Take a little-endian `u16`.
    pub fn take_u16(&mut self) -> StorageResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Take a little-endian `u32`.
    pub fn take_u32(&mut self) -> StorageResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Take a little-endian `u64`.
    pub fn take_u64(&mut self) -> StorageResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("fixed-width slice")))
    }

    /// Take a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> StorageResult<String> {
        let len = self.take_u32()? as usize;
        if len > self.remaining() {
            return Err(self.corrupt("string payload"));
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StorageError::Corrupt(format!("invalid UTF-8 in {}", self.what)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 700);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "héap");
        let mut r = Reader::new(&buf, "test");
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u16().unwrap(), 700);
        assert_eq!(r.take_u32().unwrap(), 70_000);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_str().unwrap(), "héap");
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut], "test");
            assert!(r.take_str().is_err(), "prefix {cut} must not decode");
        }
        // A length prefix pointing past the end must not allocate or panic.
        let mut bogus = Vec::new();
        put_u32(&mut bogus, u32::MAX);
        let mut r = Reader::new(&bogus, "test");
        assert!(matches!(r.take_str(), Err(StorageError::Corrupt(_))));
    }
}
