//! Slotted pages: the unit of I/O for the cost model.
//!
//! A [`Page`] is a fixed-capacity (8 KiB, PostgreSQL's default block size)
//! container of binary-encoded tuples. Tuples are appended to a data area
//! and addressed by slot number through a slot directory, exactly like a
//! simplified PostgreSQL heap page. Deletion marks a slot dead without
//! compacting; the space is reclaimed only on [`Page::compact`].

use crate::error::{StorageError, StorageResult};
use crate::tuple::Tuple;

/// Page capacity in bytes (PostgreSQL's default block size).
pub const PAGE_SIZE: usize = 8192;

/// Per-slot bookkeeping overhead we budget for, in bytes.
const SLOT_OVERHEAD: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    offset: u32,
    len: u32,
    live: bool,
}

/// A fixed-capacity slotted page of encoded tuples.
#[derive(Debug, Clone, Default)]
pub struct Page {
    data: Vec<u8>,
    slots: Vec<Slot>,
}

impl Page {
    /// An empty page.
    pub fn new() -> Self {
        Page::default()
    }

    /// Number of slots, live or dead.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of live tuples.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.live).count()
    }

    /// Bytes used, counting data and slot-directory overhead.
    pub fn used_bytes(&self) -> usize {
        self.data.len() + self.slots.len() * SLOT_OVERHEAD
    }

    /// Whether a tuple of `encoded` bytes fits in the remaining space.
    pub fn fits(&self, encoded: usize) -> bool {
        self.used_bytes() + encoded + SLOT_OVERHEAD <= PAGE_SIZE
    }

    /// Append a tuple, returning its slot number.
    ///
    /// Fails with [`StorageError::TupleTooLarge`] if the tuple could never
    /// fit even in an empty page; callers should allocate a new page when a
    /// fitting tuple doesn't fit *here* (checked via [`Page::fits`]).
    pub fn insert(&mut self, tuple: &Tuple) -> StorageResult<u16> {
        let size = tuple.encoded_size();
        if size + SLOT_OVERHEAD > PAGE_SIZE {
            return Err(StorageError::TupleTooLarge {
                size,
                max: PAGE_SIZE - SLOT_OVERHEAD,
            });
        }
        debug_assert!(self.fits(size), "caller must check Page::fits first");
        let offset = self.data.len() as u32;
        tuple.encode_into(&mut self.data);
        let slot = self.slots.len() as u16;
        self.slots.push(Slot {
            offset,
            len: size as u32,
            live: true,
        });
        Ok(slot)
    }

    /// Read the tuple in `slot`, if it is live.
    pub fn get(&self, slot: u16) -> StorageResult<Tuple> {
        let s = self
            .slots
            .get(slot as usize)
            .filter(|s| s.live)
            .ok_or(StorageError::InvalidRid { page: 0, slot })?;
        let raw = &self.data[s.offset as usize..(s.offset + s.len) as usize];
        let (tuple, used) = Tuple::decode(raw)?;
        debug_assert_eq!(used, s.len as usize);
        Ok(tuple)
    }

    /// Mark `slot` dead. Idempotent for already-dead slots is an error to
    /// surface double-delete bugs.
    pub fn delete(&mut self, slot: u16) -> StorageResult<()> {
        let s = self
            .slots
            .get_mut(slot as usize)
            .ok_or(StorageError::InvalidRid { page: 0, slot })?;
        if !s.live {
            return Err(StorageError::InvalidRid { page: 0, slot });
        }
        s.live = false;
        Ok(())
    }

    /// Iterate live `(slot, tuple)` pairs in slot order.
    pub fn iter_live(&self) -> impl Iterator<Item = (u16, Tuple)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            if s.live {
                let raw = &self.data[s.offset as usize..(s.offset + s.len) as usize];
                let (tuple, _) = Tuple::decode(raw).expect("page data is self-consistent");
                Some((i as u16, tuple))
            } else {
                None
            }
        })
    }

    /// Rewrite the page keeping only live tuples. Slot numbers change;
    /// returns the mapping `old slot → new slot`.
    pub fn compact(&mut self) -> Vec<(u16, u16)> {
        let mut mapping = Vec::new();
        let mut data = Vec::with_capacity(self.data.len());
        let mut slots = Vec::with_capacity(self.live_count());
        for (i, s) in self.slots.iter().enumerate() {
            if s.live {
                let offset = data.len() as u32;
                data.extend_from_slice(&self.data[s.offset as usize..(s.offset + s.len) as usize]);
                mapping.push((i as u16, slots.len() as u16));
                slots.push(Slot {
                    offset,
                    len: s.len,
                    live: true,
                });
            }
        }
        self.data = data;
        self.slots = slots;
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![
            Value::Int(i),
            Value::Float(i as f64 / 2.0),
            Value::Text(format!("movie-{i}")),
        ])
    }

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let s0 = p.insert(&row(0)).unwrap();
        let s1 = p.insert(&row(1)).unwrap();
        assert_eq!(p.get(s0).unwrap(), row(0));
        assert_eq!(p.get(s1).unwrap(), row(1));
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn page_fills_up_near_8k() {
        let mut p = Page::new();
        let mut n = 0;
        while p.fits(row(n).encoded_size()) {
            p.insert(&row(n)).unwrap();
            n += 1;
        }
        assert!(p.used_bytes() <= PAGE_SIZE);
        // A ~45-byte tuple should pack well over 100 rows per 8 KiB page.
        assert!(n > 100, "only packed {n} tuples");
    }

    #[test]
    fn oversized_tuple_rejected() {
        let mut p = Page::new();
        let big = Tuple::new(vec![Value::Text("x".repeat(PAGE_SIZE))]);
        assert!(matches!(
            p.insert(&big),
            Err(StorageError::TupleTooLarge { .. })
        ));
    }

    #[test]
    fn delete_hides_tuple_and_double_delete_errors() {
        let mut p = Page::new();
        let s = p.insert(&row(7)).unwrap();
        p.delete(s).unwrap();
        assert!(p.get(s).is_err());
        assert_eq!(p.live_count(), 0);
        assert!(p.delete(s).is_err());
    }

    #[test]
    fn iter_live_skips_dead() {
        let mut p = Page::new();
        for i in 0..5 {
            p.insert(&row(i)).unwrap();
        }
        p.delete(1).unwrap();
        p.delete(3).unwrap();
        let got: Vec<i64> = p
            .iter_live()
            .map(|(_, t)| t.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(got, vec![0, 2, 4]);
    }

    #[test]
    fn compact_reclaims_space_and_remaps_slots() {
        let mut p = Page::new();
        for i in 0..10 {
            p.insert(&row(i)).unwrap();
        }
        let before = p.used_bytes();
        for s in [0u16, 2, 4, 6, 8] {
            p.delete(s).unwrap();
        }
        let mapping = p.compact();
        assert!(p.used_bytes() < before);
        assert_eq!(mapping, vec![(1, 0), (3, 1), (5, 2), (7, 3), (9, 4)]);
        assert_eq!(p.get(0).unwrap(), row(1));
        assert_eq!(p.live_count(), 5);
    }

    #[test]
    fn get_out_of_range_slot_errors() {
        let p = Page::new();
        assert!(p.get(0).is_err());
        assert!(p.get(999).is_err());
    }
}
