//! Slotted pages: the unit of I/O for the cost model.
//!
//! A [`Page`] is a fixed-capacity (8 KiB, PostgreSQL's default block size)
//! container of binary-encoded tuples. Tuples are appended to a data area
//! and addressed by slot number through a slot directory, exactly like a
//! simplified PostgreSQL heap page. Deletion marks a slot dead without
//! compacting; the space is reclaimed only on [`Page::compact`].

use crate::checksum::crc32;
use crate::error::{StorageError, StorageResult};
use crate::tuple::Tuple;

/// Page capacity in bytes (PostgreSQL's default block size).
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved for the on-disk block header: magic (4), CRC32 (4),
/// LSN (8), slot count (2), data length (4). Budgeted by [`Page::fits`]
/// so any in-memory page can always be encoded to one disk block.
pub const PAGE_HEADER_SIZE: usize = 22;

/// Per-slot bookkeeping overhead we budget for, in bytes: offset (4),
/// length (4), live flag (1) — the exact on-disk slot entry size.
const SLOT_OVERHEAD: usize = 9;

/// Magic number leading every encoded page block (`RPGB`).
const PAGE_MAGIC: u32 = u32::from_le_bytes(*b"RPGB");

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    offset: u32,
    len: u32,
    live: bool,
}

/// A fixed-capacity slotted page of encoded tuples.
#[derive(Debug, Clone, Default)]
pub struct Page {
    data: Vec<u8>,
    slots: Vec<Slot>,
}

impl Page {
    /// An empty page.
    pub fn new() -> Self {
        Page::default()
    }

    /// Number of slots, live or dead.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of live tuples.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.live).count()
    }

    /// Bytes used, counting data and slot-directory overhead.
    pub fn used_bytes(&self) -> usize {
        self.data.len() + self.slots.len() * SLOT_OVERHEAD
    }

    /// Whether a tuple of `encoded` bytes fits in the remaining space,
    /// leaving room for the on-disk block header so every page remains
    /// encodable as exactly one [`PAGE_SIZE`] block.
    pub fn fits(&self, encoded: usize) -> bool {
        PAGE_HEADER_SIZE + self.used_bytes() + encoded + SLOT_OVERHEAD <= PAGE_SIZE
    }

    /// Append a tuple, returning its slot number.
    ///
    /// Fails with [`StorageError::TupleTooLarge`] if the tuple could never
    /// fit even in an empty page; callers should allocate a new page when a
    /// fitting tuple doesn't fit *here* (checked via [`Page::fits`]).
    pub fn insert(&mut self, tuple: &Tuple) -> StorageResult<u16> {
        let size = tuple.encoded_size();
        if size + SLOT_OVERHEAD + PAGE_HEADER_SIZE > PAGE_SIZE {
            return Err(StorageError::TupleTooLarge {
                size,
                max: PAGE_SIZE - SLOT_OVERHEAD - PAGE_HEADER_SIZE,
            });
        }
        debug_assert!(self.fits(size), "caller must check Page::fits first");
        let offset = self.data.len() as u32;
        tuple.encode_into(&mut self.data);
        let slot = self.slots.len() as u16;
        self.slots.push(Slot {
            offset,
            len: size as u32,
            live: true,
        });
        Ok(slot)
    }

    /// Read the tuple in `slot`, if it is live.
    pub fn get(&self, slot: u16) -> StorageResult<Tuple> {
        let s = self
            .slots
            .get(slot as usize)
            .filter(|s| s.live)
            .ok_or(StorageError::InvalidRid { page: 0, slot })?;
        let raw = &self.data[s.offset as usize..(s.offset + s.len) as usize];
        let (tuple, used) = Tuple::decode(raw)?;
        debug_assert_eq!(used, s.len as usize);
        Ok(tuple)
    }

    /// Mark `slot` dead. Idempotent for already-dead slots is an error to
    /// surface double-delete bugs.
    pub fn delete(&mut self, slot: u16) -> StorageResult<()> {
        let s = self
            .slots
            .get_mut(slot as usize)
            .ok_or(StorageError::InvalidRid { page: 0, slot })?;
        if !s.live {
            return Err(StorageError::InvalidRid { page: 0, slot });
        }
        s.live = false;
        Ok(())
    }

    /// Iterate live `(slot, tuple)` pairs in slot order.
    pub fn iter_live(&self) -> impl Iterator<Item = (u16, Tuple)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            if s.live {
                let raw = &self.data[s.offset as usize..(s.offset + s.len) as usize];
                let (tuple, _) = Tuple::decode(raw).expect("page data is self-consistent");
                Some((i as u16, tuple))
            } else {
                None
            }
        })
    }

    /// Rewrite the page keeping only live tuples. Slot numbers change;
    /// returns the mapping `old slot → new slot`.
    pub fn compact(&mut self) -> Vec<(u16, u16)> {
        let mut mapping = Vec::new();
        let mut data = Vec::with_capacity(self.data.len());
        let mut slots = Vec::with_capacity(self.live_count());
        for (i, s) in self.slots.iter().enumerate() {
            if s.live {
                let offset = data.len() as u32;
                data.extend_from_slice(&self.data[s.offset as usize..(s.offset + s.len) as usize]);
                mapping.push((i as u16, slots.len() as u16));
                slots.push(Slot {
                    offset,
                    len: s.len,
                    live: true,
                });
            }
        }
        self.data = data;
        self.slots = slots;
        mapping
    }

    /// Encode the page as one [`PAGE_SIZE`] disk block:
    ///
    /// ```text
    /// 0..4    magic "RPGB"
    /// 4..8    CRC32 over bytes 8..PAGE_SIZE
    /// 8..16   LSN of the last change covered by this image
    /// 16..18  slot count (live and dead — slot numbers are stable)
    /// 18..22  data-area length
    /// 22..    slot entries (offset u32, len u32, live u8), then data,
    ///         then zero padding
    /// ```
    ///
    /// The encoding is a pure function of `(slots, data, lsn)`, so a
    /// decode→encode cycle is byte-identical — the invariant page
    /// checksums rely on.
    pub fn encode_block(&self, lsn: u64) -> Vec<u8> {
        debug_assert!(PAGE_HEADER_SIZE + self.used_bytes() <= PAGE_SIZE);
        let mut block = Vec::with_capacity(PAGE_SIZE);
        block.extend_from_slice(&PAGE_MAGIC.to_le_bytes());
        block.extend_from_slice(&[0u8; 4]); // CRC placeholder
        block.extend_from_slice(&lsn.to_le_bytes());
        block.extend_from_slice(&(self.slots.len() as u16).to_le_bytes());
        block.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        for s in &self.slots {
            block.extend_from_slice(&s.offset.to_le_bytes());
            block.extend_from_slice(&s.len.to_le_bytes());
            block.push(s.live as u8);
        }
        block.extend_from_slice(&self.data);
        block.resize(PAGE_SIZE, 0);
        let crc = crc32(&block[8..]);
        block[4..8].copy_from_slice(&crc.to_le_bytes());
        block
    }

    /// Decode one disk block back into a page, verifying the checksum
    /// first. `file` and `page_no` only label the
    /// [`StorageError::Corruption`] error so a bad block names its exact
    /// location. Returns the page and the LSN stamped in the header.
    pub fn decode_block(block: &[u8], file: &str, page_no: u32) -> StorageResult<(Page, u64)> {
        let corruption = |expected: u32, found: u32| StorageError::Corruption {
            file: file.to_owned(),
            page: page_no,
            expected,
            found,
        };
        if block.len() != PAGE_SIZE {
            return Err(corruption(PAGE_SIZE as u32, block.len() as u32));
        }
        let stored_crc = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let actual_crc = crc32(&block[8..]);
        if stored_crc != actual_crc {
            return Err(corruption(stored_crc, actual_crc));
        }
        let magic = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        if magic != PAGE_MAGIC {
            return Err(StorageError::Corrupt(format!(
                "page block in `{file}` page {page_no} has bad magic {magic:#010x}"
            )));
        }
        let lsn = u64::from_le_bytes(block[8..16].try_into().expect("fixed-width header slice"));
        let slot_count = u16::from_le_bytes([block[16], block[17]]) as usize;
        let data_len = u32::from_le_bytes([block[18], block[19], block[20], block[21]]) as usize;
        let slots_end = PAGE_HEADER_SIZE + slot_count * SLOT_OVERHEAD;
        let bad_layout =
            |msg: &str| StorageError::Corrupt(format!("`{file}` page {page_no}: {msg}"));
        if slots_end + data_len > PAGE_SIZE {
            return Err(bad_layout("slot directory and data overflow the block"));
        }
        let mut slots = Vec::with_capacity(slot_count);
        for i in 0..slot_count {
            let at = PAGE_HEADER_SIZE + i * SLOT_OVERHEAD;
            let offset = u32::from_le_bytes(
                block[at..at + 4]
                    .try_into()
                    .expect("fixed-width slot slice"),
            );
            let len = u32::from_le_bytes(
                block[at + 4..at + 8]
                    .try_into()
                    .expect("fixed-width slot slice"),
            );
            let live = match block[at + 8] {
                0 => false,
                1 => true,
                other => return Err(bad_layout(&format!("slot {i} live flag is {other}"))),
            };
            if (offset as usize) + (len as usize) > data_len {
                return Err(bad_layout(&format!("slot {i} points past the data area")));
            }
            slots.push(Slot { offset, len, live });
        }
        let data = block[slots_end..slots_end + data_len].to_vec();
        Ok((Page { data, slots }, lsn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![
            Value::Int(i),
            Value::Float(i as f64 / 2.0),
            Value::Text(format!("movie-{i}")),
        ])
    }

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let s0 = p.insert(&row(0)).unwrap();
        let s1 = p.insert(&row(1)).unwrap();
        assert_eq!(p.get(s0).unwrap(), row(0));
        assert_eq!(p.get(s1).unwrap(), row(1));
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn page_fills_up_near_8k() {
        let mut p = Page::new();
        let mut n = 0;
        while p.fits(row(n).encoded_size()) {
            p.insert(&row(n)).unwrap();
            n += 1;
        }
        assert!(p.used_bytes() <= PAGE_SIZE);
        // A ~45-byte tuple should pack well over 100 rows per 8 KiB page.
        assert!(n > 100, "only packed {n} tuples");
    }

    #[test]
    fn oversized_tuple_rejected() {
        let mut p = Page::new();
        let big = Tuple::new(vec![Value::Text("x".repeat(PAGE_SIZE))]);
        assert!(matches!(
            p.insert(&big),
            Err(StorageError::TupleTooLarge { .. })
        ));
    }

    #[test]
    fn delete_hides_tuple_and_double_delete_errors() {
        let mut p = Page::new();
        let s = p.insert(&row(7)).unwrap();
        p.delete(s).unwrap();
        assert!(p.get(s).is_err());
        assert_eq!(p.live_count(), 0);
        assert!(p.delete(s).is_err());
    }

    #[test]
    fn iter_live_skips_dead() {
        let mut p = Page::new();
        for i in 0..5 {
            p.insert(&row(i)).unwrap();
        }
        p.delete(1).unwrap();
        p.delete(3).unwrap();
        let got: Vec<i64> = p
            .iter_live()
            .map(|(_, t)| t.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(got, vec![0, 2, 4]);
    }

    #[test]
    fn compact_reclaims_space_and_remaps_slots() {
        let mut p = Page::new();
        for i in 0..10 {
            p.insert(&row(i)).unwrap();
        }
        let before = p.used_bytes();
        for s in [0u16, 2, 4, 6, 8] {
            p.delete(s).unwrap();
        }
        let mapping = p.compact();
        assert!(p.used_bytes() < before);
        assert_eq!(mapping, vec![(1, 0), (3, 1), (5, 2), (7, 3), (9, 4)]);
        assert_eq!(p.get(0).unwrap(), row(1));
        assert_eq!(p.live_count(), 5);
    }

    #[test]
    fn get_out_of_range_slot_errors() {
        let p = Page::new();
        assert!(p.get(0).is_err());
        assert!(p.get(999).is_err());
    }

    #[test]
    fn block_roundtrip_preserves_slots_and_lsn() {
        let mut p = Page::new();
        for i in 0..20 {
            p.insert(&row(i)).unwrap();
        }
        p.delete(3).unwrap();
        p.delete(17).unwrap();
        let block = p.encode_block(42);
        assert_eq!(block.len(), PAGE_SIZE);
        let (back, lsn) = Page::decode_block(&block, "t.tbl", 0).unwrap();
        assert_eq!(lsn, 42);
        // Dead slots survive the disk trip: slot numbers (RIDs) are stable.
        assert_eq!(back.slot_count(), 20);
        assert_eq!(back.live_count(), 18);
        assert!(back.get(3).is_err());
        assert_eq!(back.get(5).unwrap(), row(5));
    }

    #[test]
    fn decode_encode_cycle_is_byte_identical() {
        let mut p = Page::new();
        for i in 0..50 {
            p.insert(&row(i)).unwrap();
        }
        for s in [1u16, 9, 30] {
            p.delete(s).unwrap();
        }
        let block = p.encode_block(7);
        let (decoded, lsn) = Page::decode_block(&block, "t.tbl", 0).unwrap();
        assert_eq!(decoded.encode_block(lsn), block);
    }

    #[test]
    fn compacted_page_reencodes_byte_identically() {
        // Satellite: compaction must leave the page in a canonical state —
        // a decode→encode cycle of the compacted image is byte-identical,
        // which is what keeps page checksums stable across checkpoints.
        let mut p = Page::new();
        for i in 0..40 {
            p.insert(&row(i)).unwrap();
        }
        for s in (0u16..40).step_by(3) {
            p.delete(s).unwrap();
        }
        p.compact();
        // Invariants after compaction: every slot live, data contiguous in
        // slot order with no gaps.
        assert_eq!(p.live_count(), p.slot_count());
        let mut expected_offset = 0u32;
        for i in 0..p.slot_count() {
            let s = p.slots[i];
            assert!(s.live);
            assert_eq!(s.offset, expected_offset, "slot {i} leaves a gap");
            expected_offset += s.len;
        }
        assert_eq!(expected_offset as usize, p.data.len());
        let block = p.encode_block(3);
        let (decoded, lsn) = Page::decode_block(&block, "t.tbl", 0).unwrap();
        assert_eq!(decoded.encode_block(lsn), block);
    }

    #[test]
    fn corrupt_block_is_detected_with_location() {
        let mut p = Page::new();
        for i in 0..10 {
            p.insert(&row(i)).unwrap();
        }
        let good = p.encode_block(1);
        // Flip a single bit anywhere in the checksummed region.
        for at in [8usize, 100, PAGE_SIZE - 1] {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            match Page::decode_block(&bad, "ratings.5.tbl", 9) {
                Err(StorageError::Corruption {
                    file,
                    page,
                    expected,
                    found,
                }) => {
                    assert_eq!(file, "ratings.5.tbl");
                    assert_eq!(page, 9);
                    assert_ne!(expected, found);
                }
                other => panic!("byte {at}: expected Corruption, got {other:?}"),
            }
        }
        // A corrupted stored CRC is also a checksum mismatch.
        let mut bad = good.clone();
        bad[5] ^= 0xFF;
        assert!(matches!(
            Page::decode_block(&bad, "t.tbl", 0),
            Err(StorageError::Corruption { .. })
        ));
        // Truncated blocks are rejected.
        assert!(Page::decode_block(&good[..100], "t.tbl", 0).is_err());
    }

    #[test]
    fn empty_page_block_roundtrip() {
        let p = Page::new();
        let block = p.encode_block(0);
        let (back, lsn) = Page::decode_block(&block, "t.tbl", 0).unwrap();
        assert_eq!(lsn, 0);
        assert_eq!(back.slot_count(), 0);
        assert_eq!(back.encode_block(0), block);
    }
}
