//! CRC32 (IEEE 802.3) checksums for on-disk page blocks and log records.
//!
//! The durability layer checksums every unit it writes — WAL records and
//! 8 KiB page blocks — so torn writes and bit rot are *detected* at read
//! time instead of silently decoding garbage. CRC32 is the classic choice
//! for this job (PostgreSQL uses CRC-32C for both WAL and data checksums);
//! the polynomial here is the reflected IEEE one, table-driven with a
//! compile-time table.

/// The 256-entry lookup table for the reflected IEEE polynomial
/// `0xEDB88320`, built at compile time.
const CRC_TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let data = b"the committed prefix must be intact".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
