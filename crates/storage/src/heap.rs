//! Heap tables: page-based relations with block-at-a-time scans.
//!
//! A [`HeapTable`] owns a vector of [`Page`]s and a [`Schema`]. Inserts are
//! type-checked against the schema (with implicit `Int → Float` widening,
//! like PostgreSQL's numeric coercion) and packed into the last page with
//! free space. Scans go page by page, charging one page read per block to
//! the table's [`IoStats`] — the granularity the paper's block-nested-loop
//! operators are defined over.

use crate::error::{StorageError, StorageResult};
use crate::page::Page;
use crate::schema::Schema;
use crate::stats::IoStats;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Record id: (page number, slot number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page number within the heap.
    pub page: u32,
    /// Slot number within the page.
    pub slot: u16,
}

impl Rid {
    /// Construct a record id.
    pub fn new(page: u32, slot: u16) -> Self {
        Rid { page, slot }
    }
}

/// A page-based heap relation.
#[derive(Debug)]
pub struct HeapTable {
    schema: Schema,
    pages: Vec<Page>,
    live_tuples: u64,
    stats: Arc<IoStats>,
    /// Pages mutated since the last [`HeapTable::take_dirty_pages`] —
    /// the checkpointer's change detector.
    dirty: BTreeSet<u32>,
}

impl HeapTable {
    /// An empty heap with the given schema and fresh I/O counters.
    pub fn new(schema: Schema) -> Self {
        HeapTable {
            schema,
            pages: Vec::new(),
            live_tuples: 0,
            stats: Arc::new(IoStats::new()),
            dirty: BTreeSet::new(),
        }
    }

    /// An empty heap that charges I/O to shared counters (so a whole
    /// database can be accounted together).
    pub fn with_stats(schema: Schema, stats: Arc<IoStats>) -> Self {
        HeapTable {
            schema,
            pages: Vec::new(),
            live_tuples: 0,
            stats,
            dirty: BTreeSet::new(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Number of pages (the paper's `||I||`).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of live tuples.
    pub fn tuple_count(&self) -> u64 {
        self.live_tuples
    }

    /// Validate a tuple against the schema, applying `Int → Float`
    /// widening where the column is `Float`.
    fn coerce(&self, tuple: Tuple) -> StorageResult<Tuple> {
        if tuple.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        let mut values = tuple.into_values();
        for (i, v) in values.iter_mut().enumerate() {
            let col = self.schema.column(i).expect("arity checked");
            if !v.conforms_to(col.data_type) {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.data_type.to_string(),
                    got: v
                        .data_type()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "Null".to_owned()),
                });
            }
            if col.data_type == DataType::Float {
                if let Value::Int(x) = v {
                    *v = Value::Float(*x as f64);
                }
            }
        }
        Ok(Tuple::new(values))
    }

    /// Insert a tuple, returning its record id. Charges one page write.
    pub fn insert(&mut self, tuple: Tuple) -> StorageResult<Rid> {
        recdb_fault::fail_point("storage::heap_append")?;
        let tuple = self.coerce(tuple)?;
        let size = tuple.encoded_size();
        let need_new = match self.pages.last() {
            Some(p) => !p.fits(size),
            None => true,
        };
        if need_new {
            self.pages.push(Page::new());
        }
        let page_no = (self.pages.len() - 1) as u32;
        let page = self
            .pages
            .last_mut()
            .ok_or_else(|| StorageError::Corrupt("heap has no pages after append".into()))?;
        let slot = page.insert(&tuple)?;
        self.live_tuples += 1;
        self.dirty.insert(page_no);
        self.stats.record_page_writes(1);
        self.stats.record_tuple_writes(1);
        Ok(Rid::new(page_no, slot))
    }

    /// Bulk-insert tuples, returning their record ids.
    pub fn insert_many(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> StorageResult<Vec<Rid>> {
        tuples.into_iter().map(|t| self.insert(t)).collect()
    }

    /// Fetch one tuple by record id. Charges one page read.
    pub fn get(&self, rid: Rid) -> StorageResult<Tuple> {
        let page = self
            .pages
            .get(rid.page as usize)
            .ok_or(StorageError::InvalidRid {
                page: rid.page,
                slot: rid.slot,
            })?;
        self.stats.record_page_reads(1);
        self.stats.record_tuple_reads(1);
        page.get(rid.slot).map_err(|_| StorageError::InvalidRid {
            page: rid.page,
            slot: rid.slot,
        })
    }

    /// Delete one tuple by record id.
    pub fn delete(&mut self, rid: Rid) -> StorageResult<()> {
        let page = self
            .pages
            .get_mut(rid.page as usize)
            .ok_or(StorageError::InvalidRid {
                page: rid.page,
                slot: rid.slot,
            })?;
        page.delete(rid.slot)
            .map_err(|_| StorageError::InvalidRid {
                page: rid.page,
                slot: rid.slot,
            })?;
        self.live_tuples -= 1;
        self.dirty.insert(rid.page);
        self.stats.record_page_writes(1);
        Ok(())
    }

    /// Remove every tuple, keeping the schema. Used by OnTopDB when it
    /// reloads its predictions table.
    pub fn truncate(&mut self) {
        for pno in 0..self.pages.len() {
            self.dirty.insert(pno as u32);
        }
        self.pages.clear();
        self.live_tuples = 0;
    }

    /// The raw pages, in page-number order (checkpoint writer).
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Replace the heap contents with pages recovered from disk,
    /// recomputing the live-tuple count. The restored state counts as
    /// clean: it is exactly what the checkpoint holds.
    pub fn restore_pages(&mut self, pages: Vec<Page>) {
        self.live_tuples = pages.iter().map(|p| p.live_count() as u64).sum();
        self.pages = pages;
        self.dirty.clear();
    }

    /// Undo a transaction's appends: truncate back to `page_count` pages
    /// and restore the saved image of what was then the last page. Unlike
    /// [`HeapTable::restore_pages`] the result diverges from the last
    /// checkpoint image, so every affected page number is marked dirty.
    pub fn rollback_tail(&mut self, page_count: usize, last_page: Option<Page>) {
        let affected = self.pages.len().max(page_count);
        self.pages.truncate(page_count);
        if let Some(page) = last_page {
            if page_count > 0 {
                self.pages[page_count - 1] = page;
            }
        }
        self.live_tuples = self.pages.iter().map(|p| p.live_count() as u64).sum();
        for pno in page_count.saturating_sub(1)..affected {
            self.dirty.insert(pno as u32);
        }
    }

    /// Undo arbitrary mutations by restoring a full pre-transaction page
    /// snapshot. Every page number covered by either image is marked
    /// dirty (contrast [`HeapTable::restore_pages`], which installs a
    /// checkpoint image and counts as clean).
    pub fn rollback_pages(&mut self, pages: Vec<Page>) {
        let affected = self.pages.len().max(pages.len());
        self.live_tuples = pages.iter().map(|p| p.live_count() as u64).sum();
        self.pages = pages;
        for pno in 0..affected {
            self.dirty.insert(pno as u32);
        }
    }

    /// Whether any page changed since the last checkpoint.
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Drain the dirty-page set (called once the checkpointer has written
    /// a consistent image of this heap).
    pub fn take_dirty_pages(&mut self) -> BTreeSet<u32> {
        std::mem::take(&mut self.dirty)
    }

    /// Full scan, tuple at a time. Charges one page read per page visited.
    pub fn scan(&self) -> impl Iterator<Item = (Rid, Tuple)> + '_ {
        self.scan_pages().flatten()
    }

    /// Read one page's live tuples by page number, or `None` past the end.
    /// Charges one page read. This is the cursor-style access path physical
    /// scan operators use (they cannot hold a borrowing iterator).
    pub fn read_page(&self, page_no: u32) -> Option<Vec<(Rid, Tuple)>> {
        let page = self.pages.get(page_no as usize)?;
        self.stats.record_page_reads(1);
        let tuples: Vec<(Rid, Tuple)> = page
            .iter_live()
            .map(|(slot, tuple)| (Rid::new(page_no, slot), tuple))
            .collect();
        self.stats.record_tuple_reads(tuples.len() as u64);
        Some(tuples)
    }

    /// Block-at-a-time scan: an iterator of per-page tuple iterators.
    ///
    /// This is the access path the paper's Algorithm 1/2 pseudo-code uses
    /// ("load ... block by block in Memory"). Each yielded block charges one
    /// page read when produced.
    pub fn scan_pages(
        &self,
    ) -> impl Iterator<Item = Box<dyn Iterator<Item = (Rid, Tuple)> + '_>> + '_ {
        self.pages.iter().enumerate().map(move |(pno, page)| {
            self.stats.record_page_reads(1);
            let iter = page.iter_live().map(move |(slot, tuple)| {
                self.stats.record_tuple_reads(1);
                (Rid::new(pno as u32, slot), tuple)
            });
            Box::new(iter) as Box<dyn Iterator<Item = (Rid, Tuple)> + '_>
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn ratings() -> HeapTable {
        HeapTable::new(Schema::new(vec![
            Column::new("uid", DataType::Int),
            Column::new("iid", DataType::Int),
            Column::new("ratingval", DataType::Float),
        ]))
    }

    fn row(u: i64, i: i64, r: f64) -> Tuple {
        Tuple::new(vec![Value::Int(u), Value::Int(i), Value::Float(r)])
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = ratings();
        let rid = t.insert(row(1, 2, 4.5)).unwrap();
        assert_eq!(t.get(rid).unwrap(), row(1, 2, 4.5));
        assert_eq!(t.tuple_count(), 1);
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = ratings();
        let rid = t
            .insert(Tuple::new(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(4),
            ]))
            .unwrap();
        let got = t.get(rid).unwrap();
        assert_eq!(got.get(2).unwrap(), &Value::Float(4.0));
    }

    #[test]
    fn arity_and_type_checked() {
        let mut t = ratings();
        assert!(matches!(
            t.insert(Tuple::new(vec![Value::Int(1)])),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.insert(Tuple::new(vec![
                Value::Text("x".into()),
                Value::Int(2),
                Value::Float(1.0)
            ])),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn scan_returns_all_in_insert_order() {
        let mut t = ratings();
        for i in 0..1000 {
            t.insert(row(i, i * 2, (i % 5) as f64)).unwrap();
        }
        let uids: Vec<i64> = t
            .scan()
            .map(|(_, tup)| tup.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(uids.len(), 1000);
        assert!(uids.windows(2).all(|w| w[0] < w[1]));
        assert!(t.page_count() > 1, "1000 rows should span pages");
    }

    #[test]
    fn scan_charges_one_read_per_page() {
        let mut t = ratings();
        for i in 0..2000 {
            t.insert(row(i, i, 1.0)).unwrap();
        }
        let pages = t.page_count() as u64;
        t.stats().reset();
        let n = t.scan().count();
        assert_eq!(n, 2000);
        assert_eq!(t.stats().page_reads(), pages);
        assert_eq!(t.stats().tuple_reads(), 2000);
    }

    #[test]
    fn delete_then_scan_skips() {
        let mut t = ratings();
        let rids: Vec<Rid> = (0..10).map(|i| t.insert(row(i, i, 1.0)).unwrap()).collect();
        t.delete(rids[3]).unwrap();
        t.delete(rids[7]).unwrap();
        let uids: Vec<i64> = t
            .scan()
            .map(|(_, tup)| tup.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(uids, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        assert_eq!(t.tuple_count(), 8);
        assert!(t.get(rids[3]).is_err());
    }

    #[test]
    fn truncate_empties_table() {
        let mut t = ratings();
        for i in 0..10 {
            t.insert(row(i, i, 1.0)).unwrap();
        }
        t.truncate();
        assert_eq!(t.tuple_count(), 0);
        assert_eq!(t.scan().count(), 0);
        assert_eq!(t.page_count(), 0);
    }

    #[test]
    fn block_scan_yields_page_granular_blocks() {
        let mut t = ratings();
        for i in 0..2000 {
            t.insert(row(i, i, 1.0)).unwrap();
        }
        let blocks: Vec<usize> = t.scan_pages().map(|b| b.count()).collect();
        assert_eq!(blocks.len(), t.page_count());
        assert_eq!(blocks.iter().sum::<usize>(), 2000);
        // All pages except possibly the last are full to within one tuple.
        let full = blocks[0];
        assert!(blocks[..blocks.len() - 1].iter().all(|&c| c == full));
    }
}
