//! Heap tables: page-based relations with block-at-a-time scans.
//!
//! A [`HeapTable`] owns a paged file inside a [`BufferPool`] and a
//! [`Schema`]. Inserts are type-checked against the schema (with implicit
//! `Int → Float` widening, like PostgreSQL's numeric coercion) and packed
//! into the last page with free space. Scans go page by page, charging one
//! page read per block to the table's [`IoStats`] — the granularity the
//! paper's block-nested-loop operators are defined over.
//!
//! Pages are materialized in pool frames on demand: under a bounded pool a
//! table much larger than RAM scans in bounded memory, with cold pages
//! faulted in from the pool's backing store. The pool's backing store is
//! scratch (recovery uses the checkpoint + WAL, never the spill files), so
//! heap-level dirty tracking for the checkpointer (`take_dirty_pages`) is
//! independent of frame-level dirty bits inside the pool.

use crate::error::{StorageError, StorageResult};
use crate::page::Page;
use crate::pool::{BufferPool, FileId, FileKind, FrameData};
use crate::schema::Schema;
use crate::stats::IoStats;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Record id: (page number, slot number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page number within the heap.
    pub page: u32,
    /// Slot number within the page.
    pub slot: u16,
}

impl Rid {
    /// Construct a record id.
    pub fn new(page: u32, slot: u16) -> Self {
        Rid { page, slot }
    }
}

/// A page-based heap relation, paged through a [`BufferPool`].
#[derive(Debug)]
pub struct HeapTable {
    schema: Schema,
    pool: Arc<BufferPool>,
    file: FileId,
    live_tuples: u64,
    stats: Arc<IoStats>,
    /// Pages mutated since the last [`HeapTable::take_dirty_pages`] —
    /// the checkpointer's change detector.
    dirty: BTreeSet<u32>,
}

impl HeapTable {
    /// An empty heap with the given schema, fresh I/O counters, and a
    /// private unbounded pool (ad-hoc tables outside an engine).
    pub fn new(schema: Schema) -> Self {
        HeapTable::with_pool(
            schema,
            Arc::new(IoStats::new()),
            Arc::new(BufferPool::unbounded()),
            "heap",
        )
    }

    /// An empty heap that charges I/O to shared counters (so a whole
    /// database can be accounted together), with a private unbounded pool.
    pub fn with_stats(schema: Schema, stats: Arc<IoStats>) -> Self {
        HeapTable::with_pool(schema, stats, Arc::new(BufferPool::unbounded()), "heap")
    }

    /// An empty heap paged through a shared buffer pool. `label` names
    /// the heap's pool file in corruption errors (conventionally the
    /// table name).
    pub fn with_pool(
        schema: Schema,
        stats: Arc<IoStats>,
        pool: Arc<BufferPool>,
        label: &str,
    ) -> Self {
        let file = pool.create_file(FileKind::Heap, label);
        HeapTable {
            schema,
            pool,
            file,
            live_tuples: 0,
            stats,
            dirty: BTreeSet::new(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// The buffer pool this heap pages through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Number of pages (the paper's `||I||`).
    pub fn page_count(&self) -> usize {
        self.pool.page_count(self.file) as usize
    }

    /// Number of live tuples.
    pub fn tuple_count(&self) -> u64 {
        self.live_tuples
    }

    /// Validate a tuple against the schema, applying `Int → Float`
    /// widening where the column is `Float`.
    fn coerce(&self, tuple: Tuple) -> StorageResult<Tuple> {
        if tuple.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        let mut values = tuple.into_values();
        for (i, v) in values.iter_mut().enumerate() {
            let col = self.schema.column(i).expect("arity checked");
            if !v.conforms_to(col.data_type) {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.data_type.to_string(),
                    got: v
                        .data_type()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "Null".to_owned()),
                });
            }
            if col.data_type == DataType::Float {
                if let Value::Int(x) = v {
                    *v = Value::Float(*x as f64);
                }
            }
        }
        Ok(Tuple::new(values))
    }

    /// Insert a tuple, returning its record id. Charges one page write.
    pub fn insert(&mut self, tuple: Tuple) -> StorageResult<Rid> {
        recdb_fault::fail_point("storage::heap_append")?;
        let tuple = self.coerce(tuple)?;
        let size = tuple.encoded_size();
        let page_count = self.pool.page_count(self.file);
        let need_new = page_count == 0
            || !self
                .pool
                .with_page(self.file, page_count - 1, |p| p.fits(size))?;
        let page_no = if need_new {
            self.pool
                .allocate_page(self.file, FrameData::Heap(Page::new()))?
        } else {
            page_count - 1
        };
        let slot = self
            .pool
            .with_page_mut(self.file, page_no, |p| p.insert(&tuple))??;
        self.live_tuples += 1;
        self.dirty.insert(page_no);
        self.stats.record_page_writes(1);
        self.stats.record_tuple_writes(1);
        Ok(Rid::new(page_no, slot))
    }

    /// Bulk-insert tuples, returning their record ids.
    pub fn insert_many(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> StorageResult<Vec<Rid>> {
        tuples.into_iter().map(|t| self.insert(t)).collect()
    }

    /// Fetch one tuple by record id. Charges one page read.
    pub fn get(&self, rid: Rid) -> StorageResult<Tuple> {
        let invalid = || StorageError::InvalidRid {
            page: rid.page,
            slot: rid.slot,
        };
        if rid.page >= self.pool.page_count(self.file) {
            return Err(invalid());
        }
        self.stats.record_page_reads(1);
        self.stats.record_tuple_reads(1);
        self.pool
            .with_page(self.file, rid.page, |p| p.get(rid.slot))?
            .map_err(|_| invalid())
    }

    /// Delete one tuple by record id.
    pub fn delete(&mut self, rid: Rid) -> StorageResult<()> {
        let invalid = || StorageError::InvalidRid {
            page: rid.page,
            slot: rid.slot,
        };
        if rid.page >= self.pool.page_count(self.file) {
            return Err(invalid());
        }
        self.pool
            .with_page_mut(self.file, rid.page, |p| p.delete(rid.slot))?
            .map_err(|_| invalid())?;
        self.live_tuples -= 1;
        self.dirty.insert(rid.page);
        self.stats.record_page_writes(1);
        Ok(())
    }

    /// Remove every tuple, keeping the schema. Used by OnTopDB when it
    /// reloads its predictions table.
    pub fn truncate(&mut self) -> StorageResult<()> {
        for pno in 0..self.page_count() {
            self.dirty.insert(pno as u32);
        }
        self.pool.truncate_file(self.file, 0)?;
        self.live_tuples = 0;
        Ok(())
    }

    /// A copy of one page (checkpoint writer, transaction pre-images).
    pub fn page_image(&self, page_no: u32) -> StorageResult<Page> {
        self.pool.with_page(self.file, page_no, |p| p.clone())
    }

    /// One page encoded as a checksummed disk block stamped with `lsn`
    /// (the checkpoint writer's fast path: no intermediate page clone).
    pub fn encode_page_block(&self, page_no: u32, lsn: u64) -> StorageResult<Vec<u8>> {
        self.pool
            .with_page(self.file, page_no, |p| p.encode_block(lsn))
    }

    /// Copies of all pages in page-number order (transaction pre-images).
    pub fn pages_snapshot(&self) -> StorageResult<Vec<Page>> {
        (0..self.page_count() as u32)
            .map(|pno| self.page_image(pno))
            .collect()
    }

    /// Replace the heap contents with pages recovered from disk,
    /// recomputing the live-tuple count. The restored state counts as
    /// clean: it is exactly what the checkpoint holds.
    pub fn restore_pages(&mut self, pages: Vec<Page>) -> StorageResult<()> {
        self.pool.truncate_file(self.file, 0)?;
        self.live_tuples = pages.iter().map(|p| p.live_count() as u64).sum();
        for (pno, page) in pages.into_iter().enumerate() {
            self.pool
                .install_page(self.file, pno as u32, FrameData::Heap(page))?;
        }
        self.dirty.clear();
        Ok(())
    }

    /// Undo a transaction's appends: truncate back to `page_count` pages
    /// and restore the saved image of what was then the last page. Unlike
    /// [`HeapTable::restore_pages`] the result diverges from the last
    /// checkpoint image, so every affected page number is marked dirty.
    pub fn rollback_tail(
        &mut self,
        page_count: usize,
        last_page: Option<Page>,
    ) -> StorageResult<()> {
        let affected = self.page_count().max(page_count);
        self.pool.truncate_file(self.file, page_count as u32)?;
        if let Some(page) = last_page {
            if page_count > 0 {
                self.pool.install_page(
                    self.file,
                    (page_count - 1) as u32,
                    FrameData::Heap(page),
                )?;
            }
        }
        self.live_tuples = self.recount_live()?;
        for pno in page_count.saturating_sub(1)..affected {
            self.dirty.insert(pno as u32);
        }
        Ok(())
    }

    /// Undo arbitrary mutations by restoring a full pre-transaction page
    /// snapshot. Every page number covered by either image is marked
    /// dirty (contrast [`HeapTable::restore_pages`], which installs a
    /// checkpoint image and counts as clean).
    pub fn rollback_pages(&mut self, pages: Vec<Page>) -> StorageResult<()> {
        let affected = self.page_count().max(pages.len());
        self.pool.truncate_file(self.file, 0)?;
        self.live_tuples = pages.iter().map(|p| p.live_count() as u64).sum();
        for (pno, page) in pages.into_iter().enumerate() {
            self.pool
                .install_page(self.file, pno as u32, FrameData::Heap(page))?;
        }
        for pno in 0..affected {
            self.dirty.insert(pno as u32);
        }
        Ok(())
    }

    fn recount_live(&self) -> StorageResult<u64> {
        (0..self.page_count() as u32)
            .map(|pno| {
                self.pool
                    .with_page(self.file, pno, |p| p.live_count() as u64)
            })
            .sum()
    }

    /// Whether any page changed since the last checkpoint.
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Drain the dirty-page set (called once the checkpointer has written
    /// a consistent image of this heap).
    pub fn take_dirty_pages(&mut self) -> BTreeSet<u32> {
        std::mem::take(&mut self.dirty)
    }

    /// Full scan, tuple at a time. Charges one page read per page visited.
    pub fn scan(&self) -> impl Iterator<Item = (Rid, Tuple)> + '_ {
        self.scan_pages().flatten()
    }

    /// Read one page's live tuples by page number, or `None` past the end.
    /// Charges one page read. This is the cursor-style access path physical
    /// scan operators use (they cannot hold a borrowing iterator).
    ///
    /// Panics if the buffer pool cannot produce the page (a corrupt spill
    /// block or an all-pinned pool): scan iterators have no error channel,
    /// and both conditions are process-local invariant violations rather
    /// than recoverable input errors.
    pub fn read_page(&self, page_no: u32) -> Option<Vec<(Rid, Tuple)>> {
        if page_no >= self.pool.page_count(self.file) {
            return None;
        }
        self.stats.record_page_reads(1);
        let tuples: Vec<(Rid, Tuple)> = self
            .pool
            .with_page(self.file, page_no, |page| {
                page.iter_live()
                    .map(|(slot, tuple)| (Rid::new(page_no, slot), tuple))
                    .collect()
            })
            .expect("buffer pool read failed during scan");
        self.stats.record_tuple_reads(tuples.len() as u64);
        Some(tuples)
    }

    /// Block-at-a-time scan: an iterator of per-page tuple iterators.
    ///
    /// This is the access path the paper's Algorithm 1/2 pseudo-code uses
    /// ("load ... block by block in Memory"). Each yielded block charges one
    /// page read when produced, faulting the page into the pool if it was
    /// evicted — only one block's tuples are materialized at a time.
    pub fn scan_pages(
        &self,
    ) -> impl Iterator<Item = Box<dyn Iterator<Item = (Rid, Tuple)> + '_>> + '_ {
        (0..self.pool.page_count(self.file)).map(move |pno| {
            let tuples = self.read_page(pno).unwrap_or_default();
            Box::new(tuples.into_iter()) as Box<dyn Iterator<Item = (Rid, Tuple)> + '_>
        })
    }
}

impl Drop for HeapTable {
    fn drop(&mut self) {
        self.pool.remove_file(self.file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn ratings() -> HeapTable {
        HeapTable::new(Schema::new(vec![
            Column::new("uid", DataType::Int),
            Column::new("iid", DataType::Int),
            Column::new("ratingval", DataType::Float),
        ]))
    }

    fn row(u: i64, i: i64, r: f64) -> Tuple {
        Tuple::new(vec![Value::Int(u), Value::Int(i), Value::Float(r)])
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = ratings();
        let rid = t.insert(row(1, 2, 4.5)).unwrap();
        assert_eq!(t.get(rid).unwrap(), row(1, 2, 4.5));
        assert_eq!(t.tuple_count(), 1);
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = ratings();
        let rid = t
            .insert(Tuple::new(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(4),
            ]))
            .unwrap();
        let got = t.get(rid).unwrap();
        assert_eq!(got.get(2).unwrap(), &Value::Float(4.0));
    }

    #[test]
    fn arity_and_type_checked() {
        let mut t = ratings();
        assert!(matches!(
            t.insert(Tuple::new(vec![Value::Int(1)])),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.insert(Tuple::new(vec![
                Value::Text("x".into()),
                Value::Int(2),
                Value::Float(1.0)
            ])),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn scan_returns_all_in_insert_order() {
        let mut t = ratings();
        for i in 0..1000 {
            t.insert(row(i, i * 2, (i % 5) as f64)).unwrap();
        }
        let uids: Vec<i64> = t
            .scan()
            .map(|(_, tup)| tup.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(uids.len(), 1000);
        assert!(uids.windows(2).all(|w| w[0] < w[1]));
        assert!(t.page_count() > 1, "1000 rows should span pages");
    }

    #[test]
    fn scan_charges_one_read_per_page() {
        let mut t = ratings();
        for i in 0..2000 {
            t.insert(row(i, i, 1.0)).unwrap();
        }
        let pages = t.page_count() as u64;
        t.stats().reset();
        let n = t.scan().count();
        assert_eq!(n, 2000);
        assert_eq!(t.stats().page_reads(), pages);
        assert_eq!(t.stats().tuple_reads(), 2000);
    }

    #[test]
    fn delete_then_scan_skips() {
        let mut t = ratings();
        let rids: Vec<Rid> = (0..10).map(|i| t.insert(row(i, i, 1.0)).unwrap()).collect();
        t.delete(rids[3]).unwrap();
        t.delete(rids[7]).unwrap();
        let uids: Vec<i64> = t
            .scan()
            .map(|(_, tup)| tup.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(uids, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        assert_eq!(t.tuple_count(), 8);
        assert!(t.get(rids[3]).is_err());
    }

    #[test]
    fn truncate_empties_table() {
        let mut t = ratings();
        for i in 0..10 {
            t.insert(row(i, i, 1.0)).unwrap();
        }
        t.truncate().unwrap();
        assert_eq!(t.tuple_count(), 0);
        assert_eq!(t.scan().count(), 0);
        assert_eq!(t.page_count(), 0);
    }

    #[test]
    fn block_scan_yields_page_granular_blocks() {
        let mut t = ratings();
        for i in 0..2000 {
            t.insert(row(i, i, 1.0)).unwrap();
        }
        let blocks: Vec<usize> = t.scan_pages().map(|b| b.count()).collect();
        assert_eq!(blocks.len(), t.page_count());
        assert_eq!(blocks.iter().sum::<usize>(), 2000);
        // All pages except possibly the last are full to within one tuple.
        let full = blocks[0];
        assert!(blocks[..blocks.len() - 1].iter().all(|&c| c == full));
    }

    #[test]
    fn scans_are_identical_under_a_tiny_pool() {
        // The eviction-pressure contract in miniature: a pool of 2 frames
        // over a multi-page table returns exactly what an unbounded heap
        // returns, and leaves nothing pinned.
        let schema = Schema::new(vec![
            Column::new("uid", DataType::Int),
            Column::new("iid", DataType::Int),
            Column::new("ratingval", DataType::Float),
        ]);
        let pool = Arc::new(BufferPool::in_memory(2));
        let mut bounded =
            HeapTable::with_pool(schema, Arc::new(IoStats::new()), Arc::clone(&pool), "r");
        let mut unbounded = ratings();
        for i in 0..2000 {
            bounded.insert(row(i, i, (i % 7) as f64)).unwrap();
            unbounded.insert(row(i, i, (i % 7) as f64)).unwrap();
        }
        assert!(bounded.page_count() > 4);
        assert!(pool.evictions() > 0);
        let a: Vec<(Rid, Tuple)> = bounded.scan().collect();
        let b: Vec<(Rid, Tuple)> = unbounded.scan().collect();
        assert_eq!(a, b);
        assert_eq!(pool.pinned_pages(), 0);
        // Point reads against cold pages also come back intact.
        assert_eq!(bounded.get(a[0].0).unwrap(), b[0].1);
    }
}
