//! The dynamic value system shared by all layers of RecDB-rs.
//!
//! Values carry their own runtime type and support the total ordering the
//! sort / B-tree layers need (floats order via [`f64::total_cmp`], `Null`
//! sorts first, and cross-type comparisons fall back to a stable type rank).

use std::cmp::Ordering;
use std::fmt;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (user ids, item ids, counts).
    Int,
    /// 64-bit IEEE float (ratings, predicted scores, distances).
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// 2-D point `(x, y)` — the PostGIS-substitute geometry type.
    Point,
    /// Axis-aligned rectangle `(min_x, min_y, max_x, max_y)` — the region
    /// type used for urban-area columns in the §V case study.
    Rect,
}

impl DataType {
    /// The stable one-byte tag used by every durable format (page blocks,
    /// manifests, WAL records). Matches the tuple-encoding value tags.
    pub fn to_tag(self) -> u8 {
        match self {
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Text => 3,
            DataType::Bool => 4,
            DataType::Point => 5,
            DataType::Rect => 6,
        }
    }

    /// Inverse of [`DataType::to_tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<DataType> {
        Some(match tag {
            1 => DataType::Int,
            2 => DataType::Float,
            3 => DataType::Text,
            4 => DataType::Bool,
            5 => DataType::Point,
            6 => DataType::Rect,
            _ => return None,
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Text => "Text",
            DataType::Bool => "Bool",
            DataType::Point => "Point",
            DataType::Rect => "Rect",
        };
        f.write_str(s)
    }
}

/// A single dynamically-typed value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
    /// 2-D point `(x, y)`.
    Point(f64, f64),
    /// Axis-aligned rectangle `(min_x, min_y, max_x, max_y)`.
    Rect(f64, f64, f64, f64),
}

impl Value {
    /// Runtime type of the value, or `None` for `Null` (NULL is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Point(_, _) => Some(DataType::Point),
            Value::Rect(..) => Some(DataType::Rect),
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view, coercing from `Int` only.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view: `Int` widens to `f64`, `Float` passes through.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Point view.
    pub fn as_point(&self) -> Option<(f64, f64)> {
        match self {
            Value::Point(x, y) => Some((*x, *y)),
            _ => None,
        }
    }

    /// Rect view as `(min_x, min_y, max_x, max_y)`.
    pub fn as_rect(&self) -> Option<(f64, f64, f64, f64)> {
        match self {
            Value::Rect(a, b, c, d) => Some((*a, *b, *c, *d)),
            _ => None,
        }
    }

    /// Whether this value is storable in a column of type `ty`.
    ///
    /// NULL is storable anywhere; `Int` is storable in a `Float` column
    /// (implicit widening, applied at insert time by the heap).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int | DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Point(_, _), DataType::Point)
                | (Value::Rect(..), DataType::Rect)
        )
    }

    /// Rank used to order values of different types (NULL first).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
            Value::Point(_, _) => 4,
            Value::Rect(..) => 5,
        }
    }

    /// Total order over values: numerics compare numerically across
    /// `Int`/`Float`, otherwise same-type natural order, otherwise by type
    /// rank. This is the ordering used by sort operators and B-tree keys.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Point(ax, ay), Point(bx, by)) => ax.total_cmp(bx).then_with(|| ay.total_cmp(by)),
            (Rect(a0, a1, a2, a3), Rect(b0, b1, b2, b3)) => a0
                .total_cmp(b0)
                .then_with(|| a1.total_cmp(b1))
                .then_with(|| a2.total_cmp(b2))
                .then_with(|| a3.total_cmp(b3)),
            (a, b) if a.type_rank() == 2 && b.type_rank() == 2 => {
                // Int/Float cross comparison; rank 2 means both are
                // numeric, so `as_f64` is always `Some` here.
                match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => x.total_cmp(&y),
                    _ => a.type_rank().cmp(&b.type_rank()),
                }
            }
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }

    /// SQL equality: NULL equals nothing (returns `None`), numerics compare
    /// across `Int`/`Float`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// Approximate in-memory footprint in bytes, used by the page layer's
    /// encoder to budget tuples into 8 KiB pages.
    pub fn encoded_size(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Text(s) => 4 + s.len(),
            Value::Bool(_) => 1,
            Value::Point(_, _) => 16,
            Value::Rect(..) => 32,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equal; hash the
            // f64 bit pattern of the widened value for both.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Point(x, y) => {
                4u8.hash(state);
                x.to_bits().hash(state);
                y.to_bits().hash(state);
            }
            Value::Rect(a, b, c, d) => {
                5u8.hash(state);
                a.to_bits().hash(state);
                b.to_bits().hash(state);
                c.to_bits().hash(state);
                d.to_bits().hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Point(x, y) => write!(f, "POINT({x} {y})"),
            Value::Rect(a, b, c, d) => write!(f, "RECT({a} {b}, {c} {d})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<(f64, f64)> for Value {
    fn from((x, y): (f64, f64)) -> Self {
        Value::Point(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
    }

    #[test]
    fn null_sorts_first_and_equals_nothing_in_sql() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Bool(false));
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        // total_cmp puts NaN above +inf; the key property is non-panicking,
        // reflexive-equal ordering.
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn conformance_rules() {
        assert!(Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int));
        assert!(Value::Null.conforms_to(DataType::Text));
        assert!(!Value::Text("x".into()).conforms_to(DataType::Int));
        assert!(Value::Point(1.0, 2.0).conforms_to(DataType::Point));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Text("hi".into()).as_text(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Point(1.0, 2.0).as_point(), Some((1.0, 2.0)));
        assert_eq!(Value::Text("hi".into()).as_f64(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Point(1.0, 2.0).to_string(), "POINT(1 2)");
        assert_eq!(Value::Text("abc".into()).to_string(), "abc");
    }

    #[test]
    fn encoded_size_tracks_payload() {
        assert_eq!(Value::Int(0).encoded_size(), 9);
        assert_eq!(Value::Text("abcd".into()).encoded_size(), 1 + 4 + 4);
        assert_eq!(Value::Null.encoded_size(), 1);
        assert_eq!(Value::Point(0.0, 0.0).encoded_size(), 17);
    }

    #[test]
    fn ordering_across_types_is_total_and_antisymmetric() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Int(-5),
            Value::Float(0.5),
            Value::Text("a".into()),
            Value::Point(0.0, 0.0),
        ];
        for a in &vals {
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse(), "{a:?} vs {b:?}");
            }
        }
    }
}
