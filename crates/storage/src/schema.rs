//! Column and schema metadata, with alias-aware column resolution.
//!
//! Query operators concatenate schemas (joins) and rename relations
//! (`Ratings AS R`), so resolution must handle both bare names (`uid`) and
//! qualified names (`R.uid`), detecting ambiguity.

use crate::error::{StorageError, StorageResult};
use crate::value::DataType;

/// A single column: an optional relation qualifier, a name, and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Relation qualifier (table name or alias), if any.
    pub relation: Option<String>,
    /// Column name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
}

impl Column {
    /// An unqualified column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            relation: None,
            name: name.into(),
            data_type,
        }
    }

    /// A column qualified by a relation name or alias.
    pub fn qualified(
        relation: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Self {
        Column {
            relation: Some(relation.into()),
            name: name.into(),
            data_type,
        }
    }

    /// `rel.name` if qualified, else `name`.
    pub fn qualified_name(&self) -> String {
        match &self.relation {
            Some(rel) => format!("{rel}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether a reference (optionally qualified) matches this column.
    /// Matching is case-insensitive, like PostgreSQL's folded identifiers.
    fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .relation
                .as_deref()
                .is_some_and(|r| r.eq_ignore_ascii_case(q)),
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs (unqualified).
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            columns: pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> Option<&Column> {
        self.columns.get(i)
    }

    /// Resolve a column reference such as `uid` or `R.uid` to its ordinal.
    ///
    /// Returns [`StorageError::AmbiguousColumn`] if the reference matches
    /// more than one column and [`StorageError::ColumnNotFound`] if it
    /// matches none.
    pub fn resolve(&self, reference: &str) -> StorageResult<usize> {
        let (qualifier, name) = match reference.split_once('.') {
            Some((q, n)) => (Some(q), n),
            None => (None, reference),
        };
        let mut found: Option<usize> = None;
        for (i, col) in self.columns.iter().enumerate() {
            if col.matches(qualifier, name) {
                if found.is_some() {
                    return Err(StorageError::AmbiguousColumn(reference.to_owned()));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| StorageError::ColumnNotFound(reference.to_owned()))
    }

    /// Like [`Schema::resolve`] but returns the column too.
    pub fn resolve_column(&self, reference: &str) -> StorageResult<(usize, &Column)> {
        let i = self.resolve(reference)?;
        Ok((i, &self.columns[i]))
    }

    /// A copy of this schema with every column qualified by `alias`
    /// (re-qualifying replaces any existing qualifier, as `AS` does).
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column::qualified(alias, c.name.clone(), c.data_type))
                .collect(),
        }
    }

    /// Concatenate two schemas (join output schema).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(right.columns.iter().cloned());
        Schema { columns }
    }

    /// Project a subset of columns by ordinal.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices
                .iter()
                .filter_map(|&i| self.columns.get(i).cloned())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratings_schema() -> Schema {
        Schema::new(vec![
            Column::qualified("R", "uid", DataType::Int),
            Column::qualified("R", "iid", DataType::Int),
            Column::qualified("R", "ratingval", DataType::Float),
        ])
    }

    #[test]
    fn resolve_bare_and_qualified() {
        let s = ratings_schema();
        assert_eq!(s.resolve("uid").unwrap(), 0);
        assert_eq!(s.resolve("R.iid").unwrap(), 1);
        assert_eq!(s.resolve("r.RATINGVAL").unwrap(), 2, "case-insensitive");
    }

    #[test]
    fn resolve_missing_and_wrong_qualifier() {
        let s = ratings_schema();
        assert!(matches!(
            s.resolve("nope"),
            Err(StorageError::ColumnNotFound(_))
        ));
        assert!(matches!(
            s.resolve("M.uid"),
            Err(StorageError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn ambiguity_detected_after_join() {
        let joined = ratings_schema().join(&Schema::new(vec![Column::qualified(
            "M",
            "uid",
            DataType::Int,
        )]));
        assert!(matches!(
            joined.resolve("uid"),
            Err(StorageError::AmbiguousColumn(_))
        ));
        assert_eq!(joined.resolve("R.uid").unwrap(), 0);
        assert_eq!(joined.resolve("M.uid").unwrap(), 3);
    }

    #[test]
    fn requalification_replaces_alias() {
        let s = ratings_schema().with_qualifier("X");
        assert_eq!(s.resolve("X.uid").unwrap(), 0);
        assert!(s.resolve("R.uid").is_err());
    }

    #[test]
    fn projection_keeps_order() {
        let s = ratings_schema().project(&[2, 0]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column(0).unwrap().name, "ratingval");
        assert_eq!(s.column(1).unwrap().name, "uid");
    }

    #[test]
    fn qualified_name_format() {
        let c = Column::qualified("R", "uid", DataType::Int);
        assert_eq!(c.qualified_name(), "R.uid");
        let c = Column::new("uid", DataType::Int);
        assert_eq!(c.qualified_name(), "uid");
    }
}
