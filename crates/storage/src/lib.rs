//! # recdb-storage
//!
//! The storage substrate for RecDB-rs: an in-process relational storage
//! engine modelled on the access paths the RecDB paper (ICDE 2017) assumes
//! from PostgreSQL.
//!
//! It provides:
//!
//! * [`value::Value`] / [`value::DataType`] — the dynamic value system,
//! * [`schema::Schema`] — column metadata with alias-aware resolution,
//! * [`tuple::Tuple`] — a row of values,
//! * [`page::Page`] — an 8 KiB slotted page holding binary-encoded tuples,
//! * [`heap::HeapTable`] — a page-based heap with block-at-a-time scans,
//! * [`pool::BufferPool`] — fixed-capacity frames with clock eviction;
//!   every heap page and B+-tree node is resident in (or faulted into) a
//!   pool frame, so data ≫ RAM workloads run in bounded memory,
//! * [`btree::BTree`] — a paged B+-tree over pool frames (the structure
//!   behind the engine's disk-resident RecScoreIndex),
//! * [`index::BTreeIndex`] — an ordered secondary index (point + range),
//! * [`catalog::Catalog`] — the table catalog,
//! * [`stats::IoStats`] — page read/write counters used as the I/O cost
//!   model for the paper's operator cost discussion (§IV-A).
//!
//! The paper's recommendation-aware operators (ItemCF-Recommend etc.) are
//! specified as *block-nested-loop* algorithms over tables fetched "block by
//! block"; this crate exposes exactly that granularity via
//! [`heap::HeapTable::scan_pages`].

// Engine-reachable paths must surface `StorageError`, not panic
// (`clippy.toml` exempts `#[cfg(test)]` code).
#![warn(clippy::unwrap_used)]

pub mod btree;
pub mod catalog;
pub mod checksum;
pub mod codec;
pub mod error;
pub mod heap;
pub mod index;
pub mod page;
pub mod pagefile;
pub mod pool;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod value;

pub use btree::{BTree, DEFAULT_NODE_CAPACITY, KEY_SIZE};
pub use catalog::{Catalog, Table};
pub use checksum::crc32;
pub use codec::Reader;
pub use error::{StorageError, StorageResult};
pub use heap::{HeapTable, Rid};
pub use index::BTreeIndex;
pub use page::{Page, PAGE_HEADER_SIZE, PAGE_SIZE};
pub use pagefile::{read_snapshot, read_snapshot_with, write_snapshot, RecoveryMode, Snapshot};
pub use pool::{BufferPool, FileId, FileKind, FrameData};
pub use schema::{Column, Schema};
pub use stats::IoStats;
pub use tuple::Tuple;
pub use value::{DataType, Value};
