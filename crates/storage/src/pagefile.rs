//! Durable page files and the checkpoint protocol.
//!
//! A checkpoint writes every table's pages to a *generation-named* file
//! (`<table>.<lsn>.tbl`, one [`PAGE_SIZE`] checksummed block per page) and
//! then atomically publishes a manifest (`catalog.meta`) describing the
//! catalog: table schemas, index definitions, page counts, the checkpoint
//! LSN, and an opaque engine metadata blob. The manifest rename is the
//! commit point — a crash anywhere before it leaves the previous
//! checkpoint fully intact because its files were never touched; a crash
//! after it only leaves garbage files that the next checkpoint's GC sweeps.
//!
//! Recovery ([`read_snapshot`]) verifies every block's CRC. In
//! [`RecoveryMode::Strict`] the first bad block aborts with
//! [`StorageError::Corruption`] naming the file and page; in
//! [`RecoveryMode::SalvageToLastGood`] bad blocks are replaced by empty
//! placeholder pages (preserving page numbering, and therefore RID
//! stability for the WAL replay that follows) and reported in
//! [`Snapshot::skipped`].

use crate::catalog::Catalog;
use crate::checksum::crc32;
use crate::codec::{self, Reader};
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PAGE_SIZE};
use crate::pool::BufferPool;
use crate::schema::{Column, Schema};
use crate::value::DataType;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Manifest file name within a data directory.
pub const MANIFEST_FILE: &str = "catalog.meta";

const MANIFEST_MAGIC: u32 = u32::from_le_bytes(*b"RMNF");
const MANIFEST_VERSION: u32 = 1;

/// How recovery reacts to checksum failures in durable files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Abort recovery on the first corrupt block, surfacing exactly which
    /// file and page failed. The safe default: no silently missing data.
    #[default]
    Strict,
    /// Skip corrupt blocks (each becomes an empty placeholder page so page
    /// numbering survives) and bring up everything that still verifies.
    SalvageToLastGood,
}

/// The result of reading a checkpoint back from disk.
#[derive(Debug)]
pub struct Snapshot {
    /// The restored catalog: tables, rows, and rebuilt indexes.
    pub catalog: Catalog,
    /// Opaque engine metadata stored alongside the catalog (the engine
    /// keeps its recommender definitions here).
    pub meta: Vec<u8>,
    /// LSN the checkpoint covers; WAL records at or below it are already
    /// reflected in the restored pages.
    pub lsn: u64,
    /// `(table, page)` pairs dropped by [`RecoveryMode::SalvageToLastGood`].
    /// Always empty in [`RecoveryMode::Strict`] (corruption errors instead).
    pub skipped: Vec<(String, u32)>,
}

/// `<table>.<lsn>.tbl` — generation-named so an interrupted checkpoint can
/// never clobber the previous generation's blocks.
fn table_file_name(table: &str, lsn: u64) -> String {
    format!("{table}.{lsn}.tbl")
}

/// Parse `<table>.<lsn>.tbl` back into `(table, lsn)`.
fn parse_table_file(name: &str) -> Option<(&str, u64)> {
    let stem = name.strip_suffix(".tbl")?;
    let dot = stem.rfind('.')?;
    let lsn = stem[dot + 1..].parse().ok()?;
    Some((&stem[..dot], lsn))
}

fn tag_type(tag: u8) -> StorageResult<DataType> {
    DataType::from_tag(tag)
        .ok_or_else(|| StorageError::Corrupt(format!("manifest has unknown column type tag {tag}")))
}

/// Serialize the manifest: catalog shape + engine meta + checkpoint LSN,
/// CRC32-trailed so a torn manifest write is detectable (the rename makes
/// one vanishingly unlikely, but the checksum makes it *impossible* to
/// mistake for a good one).
fn encode_manifest(catalog: &Catalog, meta: &[u8], lsn: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u32(&mut buf, MANIFEST_MAGIC);
    codec::put_u32(&mut buf, MANIFEST_VERSION);
    codec::put_u64(&mut buf, lsn);
    codec::put_u32(&mut buf, meta.len() as u32);
    buf.extend_from_slice(meta);
    let tables: Vec<_> = catalog.tables().collect();
    codec::put_u32(&mut buf, tables.len() as u32);
    for table in tables {
        codec::put_str(&mut buf, table.name());
        let schema = table.schema();
        codec::put_u16(&mut buf, schema.arity() as u16);
        for i in 0..schema.arity() {
            let col = schema.column(i).expect("arity-bounded column index");
            codec::put_str(&mut buf, &col.name);
            codec::put_u8(&mut buf, col.data_type.to_tag());
        }
        codec::put_u16(&mut buf, table.indexes().len() as u16);
        for idx in table.indexes() {
            codec::put_str(&mut buf, idx.name());
            codec::put_u16(&mut buf, idx.key_columns().len() as u16);
            for &ord in idx.key_columns() {
                codec::put_u16(&mut buf, ord as u16);
            }
        }
        codec::put_u32(&mut buf, table.heap().page_count() as u32);
    }
    let crc = crc32(&buf);
    codec::put_u32(&mut buf, crc);
    buf
}

struct ManifestTable {
    name: String,
    schema: Schema,
    /// `(index name, key column ordinals)`.
    indexes: Vec<(String, Vec<usize>)>,
    page_count: u32,
}

struct Manifest {
    lsn: u64,
    meta: Vec<u8>,
    tables: Vec<ManifestTable>,
}

fn decode_manifest(bytes: &[u8]) -> StorageResult<Manifest> {
    if bytes.len() < 4 {
        return Err(StorageError::Corrupt(
            "manifest shorter than its CRC".into(),
        ));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(
        crc_bytes
            .try_into()
            .expect("split_at leaves exactly four bytes"),
    );
    let actual = crc32(body);
    if stored != actual {
        return Err(StorageError::Corruption {
            file: MANIFEST_FILE.to_owned(),
            page: 0,
            expected: stored,
            found: actual,
        });
    }
    let mut r = Reader::new(body, "manifest");
    if r.take_u32()? != MANIFEST_MAGIC {
        return Err(StorageError::Corrupt("manifest has bad magic".into()));
    }
    let version = r.take_u32()?;
    if version != MANIFEST_VERSION {
        return Err(StorageError::Corrupt(format!(
            "manifest version {version} is not supported (expected {MANIFEST_VERSION})"
        )));
    }
    let lsn = r.take_u64()?;
    let meta_len = r.take_u32()? as usize;
    let meta = r.take(meta_len)?.to_vec();
    let table_count = r.take_u32()?;
    let mut tables = Vec::with_capacity(table_count as usize);
    for _ in 0..table_count {
        let name = r.take_str()?;
        let arity = r.take_u16()?;
        let mut columns = Vec::with_capacity(arity as usize);
        for _ in 0..arity {
            let col_name = r.take_str()?;
            let ty = tag_type(r.take_u8()?)?;
            columns.push(Column::new(col_name, ty));
        }
        let index_count = r.take_u16()?;
        let mut indexes = Vec::with_capacity(index_count as usize);
        for _ in 0..index_count {
            let idx_name = r.take_str()?;
            let ncols = r.take_u16()?;
            let mut ords = Vec::with_capacity(ncols as usize);
            for _ in 0..ncols {
                ords.push(r.take_u16()? as usize);
            }
            indexes.push((idx_name, ords));
        }
        let page_count = r.take_u32()?;
        tables.push(ManifestTable {
            name,
            schema: Schema::new(columns),
            indexes,
            page_count,
        });
    }
    Ok(Manifest { lsn, meta, tables })
}

/// The LSN of the on-disk checkpoint, if a valid manifest exists.
/// Unreadable manifests are treated as absent here (the caller that cares
/// about corruption goes through [`read_snapshot`]).
fn published_lsn(dir: &Path) -> Option<u64> {
    let bytes = fs::read(dir.join(MANIFEST_FILE)).ok()?;
    decode_manifest(&bytes).ok().map(|m| m.lsn)
}

/// Write a checkpoint of `catalog` (plus the engine's `meta` blob) covering
/// everything up to `lsn`.
///
/// Protocol, in crash-safety order:
///
/// 1. every table's pages go to fresh `<table>.<lsn>.tbl` files (tables
///    with no dirty pages reuse the previous generation's file via a hard
///    link — content-identical, so sharing blocks is sound);
/// 2. the manifest is written to a temp file, fsynced, and renamed over
///    [`MANIFEST_FILE`] — the atomic commit point;
/// 3. stale generations are unlinked and dirty-page sets drained.
///
/// Fail points: `storage::page_flush` fires before each page write,
/// `storage::checkpoint` fires just before the manifest rename.
pub fn write_snapshot(
    dir: &Path,
    catalog: &mut Catalog,
    meta: &[u8],
    lsn: u64,
) -> StorageResult<()> {
    fs::create_dir_all(dir).map_err(|e| StorageError::io("create data dir", e))?;
    let prev_lsn = published_lsn(dir);
    if prev_lsn == Some(lsn) {
        // Nothing new to cover; the published checkpoint is already at
        // this LSN and its files are immutable.
        return Ok(());
    }
    for table in catalog.tables() {
        let new_path = dir.join(table_file_name(table.name(), lsn));
        let reusable = !table.heap().is_dirty();
        if reusable {
            if let Some(prev) = prev_lsn {
                let old_path = dir.join(table_file_name(table.name(), prev));
                if old_path.exists() && fs::hard_link(&old_path, &new_path).is_ok() {
                    continue;
                }
            }
        }
        let mut file =
            File::create(&new_path).map_err(|e| StorageError::io("create table file", e))?;
        // Page at a time through the buffer pool: a checkpoint of a
        // data-larger-than-pool table faults each page in, encodes it, and
        // lets it age out again — bounded memory end to end.
        for page_no in 0..table.heap().page_count() as u32 {
            recdb_fault::fail_point("storage::page_flush")?;
            let block = table.heap().encode_page_block(page_no, lsn)?;
            file.write_all(&block)
                .map_err(|e| StorageError::io("write page", e))?;
        }
        file.sync_all()
            .map_err(|e| StorageError::io("sync table file", e))?;
    }
    let manifest = encode_manifest(catalog, meta, lsn);
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let mut file = File::create(&tmp).map_err(|e| StorageError::io("create manifest", e))?;
    file.write_all(&manifest)
        .map_err(|e| StorageError::io("write manifest", e))?;
    file.sync_all()
        .map_err(|e| StorageError::io("sync manifest", e))?;
    drop(file);
    recdb_fault::fail_point("storage::checkpoint")?;
    fs::rename(&tmp, dir.join(MANIFEST_FILE))
        .map_err(|e| StorageError::io("publish manifest", e))?;
    // Make the rename itself durable (best-effort: not all platforms allow
    // fsync on directories).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    gc_stale_generations(dir, lsn);
    for table in catalog.tables_mut() {
        table.heap_mut().take_dirty_pages();
    }
    Ok(())
}

/// Unlink table files from generations other than `keep`, plus any stray
/// manifest temp file. Best-effort: leftover garbage only wastes space and
/// the next checkpoint retries.
fn gc_stale_generations(dir: &Path, keep: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_table = parse_table_file(name).is_some_and(|(_, gen)| gen != keep);
        let stale_tmp = name == format!("{MANIFEST_FILE}.tmp").as_str();
        if stale_table || stale_tmp {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Read the newest published checkpoint back, or `Ok(None)` if the
/// directory holds no manifest (fresh database). The restored catalog
/// uses a private unbounded pool; engines pass their own bounded pool
/// through [`read_snapshot_with`].
pub fn read_snapshot(dir: &Path, mode: RecoveryMode) -> StorageResult<Option<Snapshot>> {
    read_snapshot_with(dir, mode, Arc::new(BufferPool::unbounded()))
}

/// Like [`read_snapshot`], but the restored catalog pages through `pool`.
/// Restored pages are written through to the pool's backing store, so a
/// checkpoint larger than the pool recovers in bounded memory.
pub fn read_snapshot_with(
    dir: &Path,
    mode: RecoveryMode,
    pool: Arc<BufferPool>,
) -> StorageResult<Option<Snapshot>> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let bytes = match fs::read(&manifest_path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StorageError::io("read manifest", e)),
    };
    let manifest = decode_manifest(&bytes)?;
    let mut catalog = Catalog::with_pool(pool);
    let mut skipped = Vec::new();
    for mt in &manifest.tables {
        catalog.create_table(&mt.name, mt.schema.clone())?;
        let file_name = table_file_name(&mt.name, manifest.lsn);
        let pages = read_table_pages(&dir.join(&file_name), &file_name, mt, mode, &mut skipped)?;
        let table = catalog.table_mut(&mt.name)?;
        table.heap_mut().restore_pages(pages)?;
        for (idx_name, ordinals) in &mt.indexes {
            let names: Vec<&str> = ordinals
                .iter()
                .map(|&o| {
                    mt.schema.column(o).map(|c| c.name.as_str()).ok_or_else(|| {
                        StorageError::Corrupt(format!(
                            "manifest index `{idx_name}` references column {o} \
                                 past table `{}`'s arity",
                            mt.name
                        ))
                    })
                })
                .collect::<StorageResult<_>>()?;
            table.create_index(idx_name, &names)?;
        }
    }
    Ok(Some(Snapshot {
        catalog,
        meta: manifest.meta,
        lsn: manifest.lsn,
        skipped,
    }))
}

/// Read and verify one table's page file. Corrupt or unreadable blocks
/// abort in [`RecoveryMode::Strict`]; in salvage mode each becomes an empty
/// placeholder page and is recorded in `skipped`.
fn read_table_pages(
    path: &Path,
    file_name: &str,
    mt: &ManifestTable,
    mode: RecoveryMode,
    skipped: &mut Vec<(String, u32)>,
) -> StorageResult<Vec<Page>> {
    let mut pages = Vec::with_capacity(mt.page_count as usize);
    let mut file = match File::open(path) {
        Ok(f) => Some(f),
        Err(e) => match mode {
            RecoveryMode::Strict => return Err(StorageError::io("open table file", e)),
            RecoveryMode::SalvageToLastGood => None,
        },
    };
    let mut block = [0u8; PAGE_SIZE];
    for page_no in 0..mt.page_count {
        let read = match &mut file {
            Some(f) => f.read_exact(&mut block).map_err(|e| {
                // A short file is torn storage, not an I/O fault: report it
                // as corruption of the first missing page.
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    StorageError::Corruption {
                        file: file_name.to_owned(),
                        page: page_no,
                        expected: PAGE_SIZE as u32,
                        found: 0,
                    }
                } else {
                    StorageError::io("read page", e)
                }
            }),
            None => Err(StorageError::Io {
                op: "open table file",
                message: "file missing".into(),
            }),
        };
        let decoded = read.and_then(|()| Page::decode_block(&block, file_name, page_no));
        match decoded {
            Ok((page, _lsn)) => pages.push(page),
            Err(e) => match mode {
                RecoveryMode::Strict => return Err(e),
                RecoveryMode::SalvageToLastGood => {
                    skipped.push((mt.name.clone(), page_no));
                    pages.push(Page::new());
                    // The read position may be garbage after a failed
                    // decode of good-length bytes; only a missing/short
                    // file stops us, and that path keeps yielding errors.
                }
            },
        }
    }
    Ok(pages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::value::Value;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("recdb-pagefile-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ratings_schema() -> Schema {
        Schema::new(vec![
            Column::new("uid", DataType::Int),
            Column::new("iid", DataType::Int),
            Column::new("ratingval", DataType::Float),
        ])
    }

    fn row(u: i64, i: i64, r: f64) -> Tuple {
        Tuple::new(vec![Value::Int(u), Value::Int(i), Value::Float(r)])
    }

    fn seeded_catalog(rows: i64) -> Catalog {
        let mut cat = Catalog::new();
        let t = cat.create_table("ratings", ratings_schema()).unwrap();
        for u in 0..rows {
            t.insert(row(u, u * 2, (u % 5) as f64)).unwrap();
        }
        t.create_index("ratings_uid", &["uid"]).unwrap();
        cat
    }

    #[test]
    fn snapshot_roundtrip_restores_rows_indexes_and_meta() {
        let dir = temp_dir("roundtrip");
        let mut cat = seeded_catalog(500);
        // Deleted rows must stay deleted after the disk trip.
        let victim = crate::heap::Rid::new(0, 3);
        cat.table_mut("ratings").unwrap().delete(victim).unwrap();
        write_snapshot(&dir, &mut cat, b"engine-meta", 17).unwrap();
        let snap = read_snapshot(&dir, RecoveryMode::Strict).unwrap().unwrap();
        assert_eq!(snap.lsn, 17);
        assert_eq!(snap.meta, b"engine-meta");
        assert!(snap.skipped.is_empty());
        let t = snap.catalog.table("ratings").unwrap();
        assert_eq!(t.tuple_count(), 499);
        assert!(t.get(victim).is_err(), "deleted row resurrected");
        assert_eq!(t.get(crate::heap::Rid::new(0, 4)).unwrap(), row(4, 8, 4.0));
        let idx = t.index("ratings_uid").unwrap();
        assert_eq!(idx.len(), 499);
        assert_eq!(idx.lookup(&vec![Value::Int(7)]).len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_means_fresh_database() {
        let dir = temp_dir("fresh");
        assert!(read_snapshot(&dir, RecoveryMode::Strict).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn old_generations_are_garbage_collected() {
        let dir = temp_dir("gc");
        let mut cat = seeded_catalog(100);
        write_snapshot(&dir, &mut cat, b"", 5).unwrap();
        cat.table_mut("ratings")
            .unwrap()
            .insert(row(999, 999, 1.0))
            .unwrap();
        write_snapshot(&dir, &mut cat, b"", 9).unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.contains(&"ratings.9.tbl".to_owned()), "{names:?}");
        assert!(
            !names.contains(&"ratings.5.tbl".to_owned()),
            "stale generation survived: {names:?}"
        );
        let snap = read_snapshot(&dir, RecoveryMode::Strict).unwrap().unwrap();
        assert_eq!(snap.catalog.table("ratings").unwrap().tuple_count(), 101);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_tables_reuse_previous_generation() {
        let dir = temp_dir("reuse");
        let mut cat = seeded_catalog(100);
        write_snapshot(&dir, &mut cat, b"", 5).unwrap();
        assert!(!cat.table("ratings").unwrap().heap().is_dirty());
        // Second checkpoint with no changes: the table file is hard-linked,
        // not rewritten, and the snapshot still reads back fully.
        write_snapshot(&dir, &mut cat, b"", 8).unwrap();
        let snap = read_snapshot(&dir, RecoveryMode::Strict).unwrap().unwrap();
        assert_eq!(snap.lsn, 8);
        assert_eq!(snap.catalog.table("ratings").unwrap().tuple_count(), 100);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_mode_reports_corruption_with_location() {
        let dir = temp_dir("strict");
        let mut cat = seeded_catalog(1000);
        write_snapshot(&dir, &mut cat, b"", 3).unwrap();
        // Flip one byte in the middle of page 1.
        let path = dir.join("ratings.3.tbl");
        let mut bytes = fs::read(&path).unwrap();
        assert!(bytes.len() >= 2 * PAGE_SIZE, "need at least two pages");
        bytes[PAGE_SIZE + 1000] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match read_snapshot(&dir, RecoveryMode::Strict) {
            Err(StorageError::Corruption { file, page, .. }) => {
                assert_eq!(file, "ratings.3.tbl");
                assert_eq!(page, 1);
            }
            other => panic!("expected Corruption, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_mode_skips_bad_page_and_keeps_the_rest() {
        let dir = temp_dir("salvage");
        let mut cat = seeded_catalog(1000);
        let total = cat.table("ratings").unwrap().tuple_count();
        let page1_live = cat
            .table("ratings")
            .unwrap()
            .heap()
            .page_image(1)
            .unwrap()
            .live_count() as u64;
        write_snapshot(&dir, &mut cat, b"", 3).unwrap();
        let path = dir.join("ratings.3.tbl");
        let mut bytes = fs::read(&path).unwrap();
        bytes[PAGE_SIZE + 1000] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let snap = read_snapshot(&dir, RecoveryMode::SalvageToLastGood)
            .unwrap()
            .unwrap();
        assert_eq!(snap.skipped, vec![("ratings".to_owned(), 1)]);
        let t = snap.catalog.table("ratings").unwrap();
        assert_eq!(t.tuple_count(), total - page1_live);
        // Page numbering is preserved: rows on page 2 keep their RIDs.
        let rid = crate::heap::Rid::new(2, 0);
        assert!(t.get(rid).is_ok());
        assert!(t.get(crate::heap::Rid::new(1, 0)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_a_checksum_error() {
        let dir = temp_dir("manifest");
        let mut cat = seeded_catalog(10);
        write_snapshot(&dir, &mut cat, b"", 1).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&dir, RecoveryMode::Strict),
            Err(StorageError::Corruption { page: 0, .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_file_names_roundtrip() {
        assert_eq!(parse_table_file("ratings.42.tbl"), Some(("ratings", 42)));
        assert_eq!(
            parse_table_file("users_v2.1.7.tbl"),
            Some(("users_v2.1", 7))
        );
        assert_eq!(parse_table_file("catalog.meta"), None);
        assert_eq!(parse_table_file("x.notanumber.tbl"), None);
    }
}
