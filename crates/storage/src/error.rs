//! Error types for the storage layer.

use std::fmt;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    TableNotFound(String),
    /// No column with this name exists in the schema.
    ColumnNotFound(String),
    /// A column reference such as `R.uid` matched more than one column.
    AmbiguousColumn(String),
    /// The tuple arity does not match the schema arity.
    ArityMismatch { expected: usize, got: usize },
    /// A value's type does not match the declared column type.
    TypeMismatch {
        column: String,
        expected: String,
        got: String,
    },
    /// A single tuple is larger than a page can hold.
    TupleTooLarge { size: usize, max: usize },
    /// The referenced record id does not exist.
    InvalidRid { page: u32, slot: u16 },
    /// An index with this name already exists on the table.
    IndexExists(String),
    /// No index with this name exists on the table.
    IndexNotFound(String),
    /// A page's binary content could not be decoded.
    Corrupt(String),
    /// A deterministic fault-injection site fired (tests only; see
    /// the `recdb-fault` crate).
    FaultInjected(String),
}

impl From<recdb_fault::FaultError> for StorageError {
    fn from(e: recdb_fault::FaultError) -> Self {
        StorageError::FaultInjected(e.site.to_string())
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(name) => write!(f, "table `{name}` already exists"),
            StorageError::TableNotFound(name) => write!(f, "table `{name}` does not exist"),
            StorageError::ColumnNotFound(name) => write!(f, "column `{name}` does not exist"),
            StorageError::AmbiguousColumn(name) => {
                write!(f, "column reference `{name}` is ambiguous")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple has {got} values but the schema has {expected} columns"
                )
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected}, got {got}"
            ),
            StorageError::TupleTooLarge { size, max } => {
                write!(
                    f,
                    "tuple of {size} bytes exceeds the page capacity of {max} bytes"
                )
            }
            StorageError::InvalidRid { page, slot } => {
                write!(f, "invalid record id (page {page}, slot {slot})")
            }
            StorageError::IndexExists(name) => write!(f, "index `{name}` already exists"),
            StorageError::IndexNotFound(name) => write!(f, "index `{name}` does not exist"),
            StorageError::Corrupt(msg) => write!(f, "corrupt page data: {msg}"),
            StorageError::FaultInjected(site) => {
                write!(f, "injected fault at site `{site}`")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offender() {
        assert_eq!(
            StorageError::TableNotFound("ratings".into()).to_string(),
            "table `ratings` does not exist"
        );
        assert_eq!(
            StorageError::ArityMismatch {
                expected: 3,
                got: 2
            }
            .to_string(),
            "tuple has 2 values but the schema has 3 columns"
        );
        let e = StorageError::TypeMismatch {
            column: "uid".into(),
            expected: "Int".into(),
            got: "Text".into(),
        };
        assert!(e.to_string().contains("uid"));
        assert!(e.to_string().contains("Int"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::TableExists("t".into()),
            StorageError::TableExists("t".into())
        );
        assert_ne!(
            StorageError::TableExists("t".into()),
            StorageError::TableNotFound("t".into())
        );
    }
}
