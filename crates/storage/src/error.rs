//! Error types for the storage layer.

use std::fmt;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    TableNotFound(String),
    /// No column with this name exists in the schema.
    ColumnNotFound(String),
    /// A column reference such as `R.uid` matched more than one column.
    AmbiguousColumn(String),
    /// The tuple arity does not match the schema arity.
    ArityMismatch { expected: usize, got: usize },
    /// A value's type does not match the declared column type.
    TypeMismatch {
        column: String,
        expected: String,
        got: String,
    },
    /// A single tuple is larger than a page can hold.
    TupleTooLarge { size: usize, max: usize },
    /// The referenced record id does not exist.
    InvalidRid { page: u32, slot: u16 },
    /// An index with this name already exists on the table.
    IndexExists(String),
    /// No index with this name exists on the table.
    IndexNotFound(String),
    /// A page's binary content could not be decoded.
    Corrupt(String),
    /// An on-disk page block failed its checksum: the stored CRC
    /// (`expected`) disagrees with the CRC of the bytes actually read
    /// (`found`). Fields name the file and page so operators know exactly
    /// which block to salvage or restore.
    Corruption {
        /// File the bad block lives in (e.g. `ratings.7.tbl`).
        file: String,
        /// Page number within the file.
        page: u32,
        /// Checksum recorded in the block header.
        expected: u32,
        /// Checksum of the bytes as read.
        found: u32,
    },
    /// A filesystem operation failed (durable backend only). Carries the
    /// operation name and the OS error text.
    Io {
        /// What was being attempted (`"open"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The OS error, stringified (keeps the type `Clone + Eq`).
        message: String,
    },
    /// A deterministic fault-injection site fired (tests only; see
    /// the `recdb-fault` crate).
    FaultInjected(String),
    /// Every buffer-pool frame is pinned: nothing can be evicted to make
    /// room. Either the pool is configured too small
    /// (`RecDbConfig::buffer_pool_pages`) or a caller leaked a pin.
    PoolExhausted {
        /// The pool's frame capacity.
        capacity: usize,
    },
}

impl StorageError {
    /// Wrap a [`std::io::Error`] with the operation that failed.
    pub fn io(op: &'static str, e: std::io::Error) -> Self {
        StorageError::Io {
            op,
            message: e.to_string(),
        }
    }
}

impl From<recdb_fault::FaultError> for StorageError {
    fn from(e: recdb_fault::FaultError) -> Self {
        StorageError::FaultInjected(e.site.to_string())
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(name) => write!(f, "table `{name}` already exists"),
            StorageError::TableNotFound(name) => write!(f, "table `{name}` does not exist"),
            StorageError::ColumnNotFound(name) => write!(f, "column `{name}` does not exist"),
            StorageError::AmbiguousColumn(name) => {
                write!(f, "column reference `{name}` is ambiguous")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple has {got} values but the schema has {expected} columns"
                )
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected}, got {got}"
            ),
            StorageError::TupleTooLarge { size, max } => {
                write!(
                    f,
                    "tuple of {size} bytes exceeds the page capacity of {max} bytes"
                )
            }
            StorageError::InvalidRid { page, slot } => {
                write!(f, "invalid record id (page {page}, slot {slot})")
            }
            StorageError::IndexExists(name) => write!(f, "index `{name}` already exists"),
            StorageError::IndexNotFound(name) => write!(f, "index `{name}` does not exist"),
            StorageError::Corrupt(msg) => write!(f, "corrupt page data: {msg}"),
            StorageError::Corruption {
                file,
                page,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch in `{file}` page {page}: \
                 header says {expected:#010x}, block hashes to {found:#010x}"
            ),
            StorageError::Io { op, message } => write!(f, "I/O error during {op}: {message}"),
            StorageError::FaultInjected(site) => {
                write!(f, "injected fault at site `{site}`")
            }
            StorageError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames are pinned")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offender() {
        assert_eq!(
            StorageError::TableNotFound("ratings".into()).to_string(),
            "table `ratings` does not exist"
        );
        assert_eq!(
            StorageError::ArityMismatch {
                expected: 3,
                got: 2
            }
            .to_string(),
            "tuple has 2 values but the schema has 3 columns"
        );
        let e = StorageError::TypeMismatch {
            column: "uid".into(),
            expected: "Int".into(),
            got: "Text".into(),
        };
        assert!(e.to_string().contains("uid"));
        assert!(e.to_string().contains("Int"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::TableExists("t".into()),
            StorageError::TableExists("t".into())
        );
        assert_ne!(
            StorageError::TableExists("t".into()),
            StorageError::TableNotFound("t".into())
        );
    }
}
