//! The buffer pool: fixed-capacity frames over 8 KiB blocks.
//!
//! Every heap page and B+-tree node in a catalog lives behind one
//! [`BufferPool`]. A *frame* holds the decoded in-memory form of one block
//! (a slotted [`Page`] or a [`Node`]); when the pool is full, a clock
//! (second-chance) sweep evicts an unpinned frame, writing it back to its
//! *backing store* first if dirty. The backing store is scratch space —
//! either an in-memory block vector or a spill file under the data
//! directory — and is **never** consulted by recovery, which rebuilds
//! state from the checkpoint plus the WAL. That split keeps the
//! crash-safety story of the checkpoint protocol (generation files +
//! manifest rename) untouched while bounding resident memory.
//!
//! Write-back ordering still honours the WAL rule (flush log before
//! page): before a dirty frame is written the pool invokes the *WAL
//! barrier* hook the engine installs ([`BufferPool::set_wal_barrier`]),
//! which flushes the log tail. The hook uses a `try_lock` internally so a
//! checkpoint (which holds the durability lock *and* faults pages in) can
//! never deadlock against an eviction — if the durability lock is already
//! held, the log is quiescent and the barrier is a no-op.
//!
//! Concurrency: one mutex guards all pool state, and accessor closures run
//! under it. Closures must therefore never re-enter the pool — each
//! accessor documents this. Pins exist for callers that need residency
//! guarantees *across* accessor calls (`pin`/`unpin`); the clock sweep
//! never evicts a pinned frame.
//!
//! Fail point: `storage::pool_evict` fires at the top of every eviction,
//! before any state changes — an injected error leaves the pool intact.

use crate::btree::node::Node;
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PAGE_SIZE};
use parking_lot::Mutex;
use recdb_obs::{Counter, Gauge, Registry};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Identifies one paged file (a heap or an index) within a pool.
pub type FileId = u32;

/// What kind of blocks a pool file holds — decides how spilled blocks are
/// decoded when faulted back in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Slotted heap pages ([`Page`]).
    Heap,
    /// B+-tree nodes ([`Node`]).
    Index,
}

/// The decoded contents of one frame.
#[derive(Debug, Clone)]
pub enum FrameData {
    /// A heap page.
    Heap(Page),
    /// A B+-tree node.
    Node(Node),
}

impl FrameData {
    fn encode(&self) -> Vec<u8> {
        match self {
            // Spill blocks are scratch, not checkpoint images: the LSN
            // field is meaningless there, so heap pages spill with LSN 0.
            FrameData::Heap(p) => p.encode_block(0),
            FrameData::Node(n) => n.encode_block(),
        }
    }

    fn decode(kind: FileKind, block: &[u8], label: &str, page_no: u32) -> StorageResult<Self> {
        match kind {
            FileKind::Heap => {
                Page::decode_block(block, label, page_no).map(|(p, _lsn)| FrameData::Heap(p))
            }
            FileKind::Index => Node::decode_block(block, label, page_no).map(FrameData::Node),
        }
    }

    fn kind(&self) -> FileKind {
        match self {
            FrameData::Heap(_) => FileKind::Heap,
            FrameData::Node(_) => FileKind::Index,
        }
    }
}

#[derive(Debug)]
struct Frame {
    key: (FileId, u32),
    data: FrameData,
    /// Frame content is newer than the backing store.
    dirty: bool,
    /// Pin count: pinned frames are never evicted.
    pins: u32,
    /// Second-chance bit for the clock sweep.
    referenced: bool,
}

/// Where evicted blocks go.
enum Backing {
    /// Encoded blocks held in memory (default for non-durable engines:
    /// eviction still exercises the full encode/checksum path).
    Memory(Vec<Option<Box<[u8]>>>),
    /// A spill file on disk; block `n` lives at offset `n * PAGE_SIZE`.
    Disk { file: File, path: PathBuf },
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backing::Memory(blocks) => write!(f, "Memory({} blocks)", blocks.len()),
            Backing::Disk { path, .. } => write!(f, "Disk({})", path.display()),
        }
    }
}

#[derive(Debug)]
struct FileState {
    kind: FileKind,
    /// Human-readable label used in corruption errors (e.g. `ratings`).
    label: String,
    backing: Backing,
    page_count: u32,
}

#[derive(Default)]
struct PoolInner {
    /// Frame slots; `None` slots are free.
    frames: Vec<Option<Frame>>,
    /// Free slot indices (from evictions and file removals).
    free: Vec<usize>,
    /// Residency map: `(file, page) → slot`.
    map: HashMap<(FileId, u32), usize>,
    /// Clock hand for the second-chance sweep.
    hand: usize,
    files: HashMap<FileId, FileState>,
    next_file: FileId,
}

struct PoolMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    pinned: Arc<Gauge>,
}

type Barrier = Box<dyn Fn() + Send + Sync>;

/// A fixed-capacity buffer pool. See the module docs for the design.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    capacity: usize,
    spill_dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    pinned: AtomicU64,
    metrics: OnceLock<PoolMetrics>,
    barrier: Mutex<Option<Barrier>>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("spill_dir", &self.spill_dir)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl BufferPool {
    fn with_capacity(capacity: usize, spill_dir: Option<PathBuf>) -> Self {
        BufferPool {
            inner: Mutex::new(PoolInner::default()),
            // A pool smaller than 2 frames cannot even run a leaf split
            // (old + new node resident); clamp rather than error.
            capacity: capacity.max(2),
            spill_dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pinned: AtomicU64::new(0),
            metrics: OnceLock::new(),
            barrier: Mutex::new(None),
        }
    }

    /// A bounded pool whose evicted blocks are kept in memory (encoded and
    /// checksummed, so eviction exercises the real write-back path).
    pub fn in_memory(capacity: usize) -> Self {
        BufferPool::with_capacity(capacity, None)
    }

    /// A pool that never evicts: every frame stays resident. This is the
    /// default for ad-hoc catalogs created without an engine.
    pub fn unbounded() -> Self {
        BufferPool::with_capacity(usize::MAX, None)
    }

    /// A bounded pool that spills evicted blocks to files under `dir`
    /// (created on first spill). The spill files are scratch: recovery
    /// never reads them.
    pub fn spilling(capacity: usize, dir: impl Into<PathBuf>) -> Self {
        BufferPool::with_capacity(capacity, Some(dir.into()))
    }

    /// Maximum number of resident frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Install the flush-log-before-page hook, called before every dirty
    /// write-back. The hook must be deadlock-free against pool accessors
    /// (use `try_lock` on any lock that is ever held around a pool call).
    pub fn set_wal_barrier(&self, f: impl Fn() + Send + Sync + 'static) {
        *self.barrier.lock() = Some(Box::new(f));
    }

    /// Register the pool's counters with a metrics registry. May be called
    /// once; later calls are ignored. Counts accumulated before attachment
    /// are carried over.
    pub fn attach_metrics(&self, registry: &Registry) {
        let m = PoolMetrics {
            hits: registry.counter("recdb_buffer_pool_hits_total"),
            misses: registry.counter("recdb_buffer_pool_misses_total"),
            evictions: registry.counter("recdb_pages_evicted_total"),
            pinned: registry.gauge("recdb_pages_pinned"),
        };
        m.hits.add(self.hits());
        m.misses.add(self.misses());
        m.evictions.add(self.evictions());
        m.pinned.set(self.pinned_pages() as i64);
        let _ = self.metrics.set(m);
    }

    /// Total frame hits (requested block already resident).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total frame misses (block faulted in from the backing store).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of frames currently pinned (should be zero at rest).
    pub fn pinned_pages(&self) -> u64 {
        self.pinned.load(Ordering::Relaxed)
    }

    /// Number of frames currently resident.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().map.len()
    }

    fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.hits.inc();
        }
    }

    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.misses.inc();
        }
    }

    fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.evictions.inc();
        }
    }

    fn pinned_delta(&self, delta: i64) {
        if delta > 0 {
            self.pinned.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.pinned.fetch_sub((-delta) as u64, Ordering::Relaxed);
        }
        if let Some(m) = self.metrics.get() {
            m.pinned.add(delta);
        }
    }

    /// Register a new, empty paged file. `label` names it in corruption
    /// errors (conventionally the table or index name).
    pub fn create_file(&self, kind: FileKind, label: &str) -> FileId {
        let mut inner = self.inner.lock();
        let id = inner.next_file;
        inner.next_file += 1;
        inner.files.insert(
            id,
            FileState {
                kind,
                label: label.to_owned(),
                backing: Backing::Memory(Vec::new()),
                page_count: 0,
            },
        );
        id
    }

    /// Drop a file: its frames, backing blocks, and any spill file on
    /// disk. Called from table/index destructors.
    pub fn remove_file(&self, file: FileId) {
        let mut inner = self.inner.lock();
        self.drop_file_frames(&mut inner, file, 0);
        if let Some(state) = inner.files.remove(&file) {
            if let Backing::Disk { path, .. } = state.backing {
                let _ = fs::remove_file(path);
            }
        }
    }

    /// Number of pages in `file`.
    pub fn page_count(&self, file: FileId) -> u32 {
        self.inner
            .lock()
            .files
            .get(&file)
            .map(|s| s.page_count)
            .unwrap_or(0)
    }

    /// Append a fresh page to `file`, returning its page number. The new
    /// frame starts dirty (it exists nowhere else yet).
    pub fn allocate_page(&self, file: FileId, data: FrameData) -> StorageResult<u32> {
        let mut inner = self.inner.lock();
        let state = file_state(&inner, file)?;
        debug_assert_eq!(state.kind, data.kind());
        let page_no = state.page_count;
        let slot = self.ensure_slot(&mut inner)?;
        inner.frames[slot] = Some(Frame {
            key: (file, page_no),
            data,
            dirty: true,
            pins: 0,
            referenced: true,
        });
        inner.map.insert((file, page_no), slot);
        if let Some(state) = inner.files.get_mut(&file) {
            state.page_count = page_no + 1;
        }
        Ok(page_no)
    }

    /// Write `data` through to the backing store as page `page_no`
    /// (replacing an existing page, or appending at `page_count`). Used by
    /// recovery and rollback to install page images; the frame cache is
    /// refreshed if the page was resident.
    pub fn install_page(&self, file: FileId, page_no: u32, data: FrameData) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let state = file_state(&inner, file)?;
        debug_assert_eq!(state.kind, data.kind());
        if page_no > state.page_count {
            return Err(StorageError::Corrupt(format!(
                "install of page {page_no} past end of pool file `{}` ({} pages)",
                state.label, state.page_count
            )));
        }
        let block = data.encode();
        if let Some(&slot) = inner.map.get(&(file, page_no)) {
            if let Some(frame) = inner.frames[slot].as_mut() {
                frame.data = data;
                frame.dirty = false;
                frame.referenced = true;
            }
        }
        let state = inner
            .files
            .get_mut(&file)
            .ok_or_else(|| StorageError::Corrupt(format!("unknown pool file {file}")))?;
        state.page_count = state.page_count.max(page_no + 1);
        Self::write_backing(state, page_no, &block, self.spill_dir.as_deref())?;
        Ok(())
    }

    /// Shrink `file` to its first `keep` pages, dropping frames and
    /// backing blocks past the cut.
    pub fn truncate_file(&self, file: FileId, keep: u32) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let state = file_state(&inner, file)?;
        if state.page_count <= keep {
            return Ok(());
        }
        self.drop_file_frames(&mut inner, file, keep);
        let state = inner
            .files
            .get_mut(&file)
            .ok_or_else(|| StorageError::Corrupt(format!("unknown pool file {file}")))?;
        state.page_count = keep;
        match &mut state.backing {
            Backing::Memory(blocks) => blocks.truncate(keep as usize),
            Backing::Disk { file, .. } => {
                file.set_len(keep as u64 * PAGE_SIZE as u64)
                    .map_err(|e| StorageError::io("truncate spill file", e))?;
            }
        }
        Ok(())
    }

    /// Read access to a heap page. The closure runs with the frame pinned
    /// and the pool locked: it must not call back into the pool.
    pub fn with_page<R>(
        &self,
        file: FileId,
        page_no: u32,
        f: impl FnOnce(&Page) -> R,
    ) -> StorageResult<R> {
        self.with_frame(file, page_no, false, |data| match data {
            FrameData::Heap(p) => Ok(f(p)),
            FrameData::Node(_) => Err(kind_mismatch(file, page_no, "heap page", "index node")),
        })
    }

    /// Write access to a heap page; marks the frame dirty. Same closure
    /// rules as [`BufferPool::with_page`].
    pub fn with_page_mut<R>(
        &self,
        file: FileId,
        page_no: u32,
        f: impl FnOnce(&mut Page) -> R,
    ) -> StorageResult<R> {
        self.with_frame(file, page_no, true, |data| match data {
            FrameData::Heap(p) => Ok(f(p)),
            FrameData::Node(_) => Err(kind_mismatch(file, page_no, "heap page", "index node")),
        })
    }

    /// Read access to a B+-tree node. Same closure rules as
    /// [`BufferPool::with_page`].
    pub fn with_node<R>(
        &self,
        file: FileId,
        page_no: u32,
        f: impl FnOnce(&Node) -> R,
    ) -> StorageResult<R> {
        self.with_frame(file, page_no, false, |data| match data {
            FrameData::Node(n) => Ok(f(n)),
            FrameData::Heap(_) => Err(kind_mismatch(file, page_no, "index node", "heap page")),
        })
    }

    /// Write access to a B+-tree node; marks the frame dirty.
    pub fn with_node_mut<R>(
        &self,
        file: FileId,
        page_no: u32,
        f: impl FnOnce(&mut Node) -> R,
    ) -> StorageResult<R> {
        self.with_frame(file, page_no, true, |data| match data {
            FrameData::Node(n) => Ok(f(n)),
            FrameData::Heap(_) => Err(kind_mismatch(file, page_no, "index node", "heap page")),
        })
    }

    /// Pin a page resident until the matching [`BufferPool::unpin`]. Pins
    /// nest. A pinned frame is never evicted, so hold pins only across
    /// short sequences — a leaked pin shrinks the pool permanently.
    pub fn pin(&self, file: FileId, page_no: u32) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let slot = self.fetch_slot(&mut inner, file, page_no)?;
        if let Some(frame) = inner.frames[slot].as_mut() {
            frame.pins += 1;
            if frame.pins == 1 {
                self.pinned_delta(1);
            }
        }
        Ok(())
    }

    /// Release one pin taken with [`BufferPool::pin`].
    pub fn unpin(&self, file: FileId, page_no: u32) {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&(file, page_no)) {
            if let Some(frame) = inner.frames[slot].as_mut() {
                debug_assert!(frame.pins > 0, "unpin without pin");
                frame.pins = frame.pins.saturating_sub(1);
                if frame.pins == 0 {
                    self.pinned_delta(-1);
                }
            }
        }
    }

    /// Fetch the frame for `(file, page_no)`, pin it for the duration of
    /// the closure, and run the closure under the pool lock.
    fn with_frame<R>(
        &self,
        file: FileId,
        page_no: u32,
        mark_dirty: bool,
        f: impl FnOnce(&mut FrameData) -> StorageResult<R>,
    ) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let slot = self.fetch_slot(&mut inner, file, page_no)?;
        let frame = inner.frames[slot]
            .as_mut()
            .ok_or_else(|| StorageError::Corrupt("fetched frame slot is empty".into()))?;
        frame.pins += 1;
        if mark_dirty {
            frame.dirty = true;
        }
        let result = f(&mut frame.data);
        frame.pins -= 1;
        result
    }

    /// Resolve `(file, page_no)` to a resident frame slot, faulting the
    /// block in from the backing store on a miss.
    fn fetch_slot(
        &self,
        inner: &mut PoolInner,
        file: FileId,
        page_no: u32,
    ) -> StorageResult<usize> {
        if let Some(&slot) = inner.map.get(&(file, page_no)) {
            self.record_hit();
            if let Some(frame) = inner.frames[slot].as_mut() {
                frame.referenced = true;
            }
            return Ok(slot);
        }
        self.record_miss();
        let state = inner
            .files
            .get_mut(&file)
            .ok_or_else(|| StorageError::Corrupt(format!("unknown pool file {file}")))?;
        if page_no >= state.page_count {
            return Err(StorageError::InvalidRid {
                page: page_no,
                slot: 0,
            });
        }
        let (kind, label) = (state.kind, state.label.clone());
        let block = Self::read_backing(state, page_no)?;
        let data = FrameData::decode(kind, &block, &label, page_no)?;
        let slot = self.ensure_slot(inner)?;
        inner.frames[slot] = Some(Frame {
            key: (file, page_no),
            data,
            dirty: false,
            pins: 0,
            referenced: true,
        });
        inner.map.insert((file, page_no), slot);
        Ok(slot)
    }

    /// Find a free frame slot, evicting if the pool is at capacity.
    fn ensure_slot(&self, inner: &mut PoolInner) -> StorageResult<usize> {
        if let Some(slot) = inner.free.pop() {
            return Ok(slot);
        }
        if inner.frames.len() < self.capacity {
            inner.frames.push(None);
            return Ok(inner.frames.len() - 1);
        }
        let victim = self.find_victim(inner)?;
        self.evict_slot(inner, victim)?;
        Ok(victim)
    }

    /// Clock (second-chance) sweep: skip pinned frames, clear reference
    /// bits, take the first unreferenced unpinned frame. Two full sweeps
    /// with no victim means every frame is pinned.
    fn find_victim(&self, inner: &mut PoolInner) -> StorageResult<usize> {
        let slots = inner.frames.len();
        for _ in 0..2 * slots {
            let i = inner.hand;
            inner.hand = (inner.hand + 1) % slots;
            match inner.frames[i].as_mut() {
                None => return Ok(i),
                Some(f) if f.pins > 0 => continue,
                Some(f) if f.referenced => f.referenced = false,
                Some(_) => return Ok(i),
            }
        }
        Err(StorageError::PoolExhausted {
            capacity: self.capacity,
        })
    }

    /// Evict the frame in `slot`: flush the WAL (barrier hook), write the
    /// block back if dirty, then free the slot. On error the frame is
    /// left untouched.
    fn evict_slot(&self, inner: &mut PoolInner, slot: usize) -> StorageResult<()> {
        recdb_fault::fail_point("storage::pool_evict")?;
        let (key, block) = match inner.frames[slot].as_ref() {
            Some(f) => (f.key, f.dirty.then(|| f.data.encode())),
            None => return Ok(()),
        };
        if let Some(block) = block {
            if let Some(barrier) = self.barrier.lock().as_ref() {
                barrier();
            }
            let state = inner
                .files
                .get_mut(&key.0)
                .ok_or_else(|| StorageError::Corrupt(format!("unknown pool file {}", key.0)))?;
            Self::write_backing(state, key.1, &block, self.spill_dir.as_deref())?;
        }
        inner.frames[slot] = None;
        inner.map.remove(&key);
        self.record_eviction();
        Ok(())
    }

    /// Drop every resident frame of `file` with page number `>= from`,
    /// without write-back (the pages are being discarded).
    fn drop_file_frames(&self, inner: &mut PoolInner, file: FileId, from: u32) {
        let doomed: Vec<(FileId, u32)> = inner
            .map
            .keys()
            .filter(|(f, p)| *f == file && *p >= from)
            .copied()
            .collect();
        for key in doomed {
            if let Some(slot) = inner.map.remove(&key) {
                if let Some(frame) = inner.frames[slot].take() {
                    if frame.pins > 0 {
                        self.pinned_delta(-1);
                    }
                }
                inner.free.push(slot);
            }
        }
    }

    fn write_backing(
        state: &mut FileState,
        page_no: u32,
        block: &[u8],
        spill_dir: Option<&std::path::Path>,
    ) -> StorageResult<()> {
        // First spill of a file in a disk-backed pool upgrades its backing
        // from the (empty-or-small) memory vector to a spill file.
        if let (Backing::Memory(blocks), Some(dir)) = (&state.backing, spill_dir) {
            fs::create_dir_all(dir).map_err(|e| StorageError::io("create spill dir", e))?;
            let path = dir.join(format!("{}.spill", state.label));
            let mut file = OpenOptions::new()
                .create(true)
                .truncate(true)
                .read(true)
                .write(true)
                .open(&path)
                .map_err(|e| StorageError::io("create spill file", e))?;
            for (n, b) in blocks.iter().enumerate() {
                if let Some(b) = b {
                    file.seek(SeekFrom::Start(n as u64 * PAGE_SIZE as u64))
                        .map_err(|e| StorageError::io("seek spill file", e))?;
                    file.write_all(b)
                        .map_err(|e| StorageError::io("write spill file", e))?;
                }
            }
            state.backing = Backing::Disk { file, path };
        }
        match &mut state.backing {
            Backing::Memory(blocks) => {
                let n = page_no as usize;
                if blocks.len() <= n {
                    blocks.resize_with(n + 1, || None);
                }
                blocks[n] = Some(block.to_vec().into_boxed_slice());
                Ok(())
            }
            Backing::Disk { file, .. } => {
                file.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))
                    .map_err(|e| StorageError::io("seek spill file", e))?;
                file.write_all(block)
                    .map_err(|e| StorageError::io("write spill file", e))
            }
        }
    }

    fn read_backing(state: &mut FileState, page_no: u32) -> StorageResult<Vec<u8>> {
        match &mut state.backing {
            Backing::Memory(blocks) => blocks
                .get(page_no as usize)
                .and_then(|b| b.as_ref())
                .map(|b| b.to_vec())
                .ok_or_else(|| {
                    StorageError::Corrupt(format!(
                        "pool file `{}` page {page_no} has no backing block",
                        state.label
                    ))
                }),
            Backing::Disk { file, .. } => {
                file.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))
                    .map_err(|e| StorageError::io("seek spill file", e))?;
                let mut block = vec![0u8; PAGE_SIZE];
                file.read_exact(&mut block)
                    .map_err(|e| StorageError::io("read spill file", e))?;
                Ok(block)
            }
        }
    }
}

fn file_state(inner: &PoolInner, file: FileId) -> StorageResult<&FileState> {
    inner
        .files
        .get(&file)
        .ok_or_else(|| StorageError::Corrupt(format!("unknown pool file {file}")))
}

fn kind_mismatch(file: FileId, page_no: u32, wanted: &str, got: &str) -> StorageError {
    StorageError::Corrupt(format!(
        "pool file {file} page {page_no}: expected a {wanted}, found a {got}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::value::Value;

    fn tuple(n: i64) -> Tuple {
        Tuple::new(vec![Value::Int(n), Value::Text(format!("row-{n}"))])
    }

    fn fill_page(n: i64) -> Page {
        let mut p = Page::new();
        p.insert(&tuple(n)).unwrap();
        p
    }

    #[test]
    fn pages_survive_eviction_roundtrip() {
        let pool = BufferPool::in_memory(2);
        let f = pool.create_file(FileKind::Heap, "t");
        for n in 0..10 {
            pool.allocate_page(f, FrameData::Heap(fill_page(n)))
                .unwrap();
        }
        assert_eq!(pool.page_count(f), 10);
        assert!(pool.resident_pages() <= 2);
        assert!(pool.evictions() >= 8);
        for n in 0..10u32 {
            let got = pool.with_page(f, n, |p| p.get(0).unwrap()).unwrap();
            assert_eq!(got, tuple(n as i64));
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let pool = BufferPool::in_memory(4);
        let f = pool.create_file(FileKind::Heap, "t");
        pool.allocate_page(f, FrameData::Heap(fill_page(0)))
            .unwrap();
        let (h0, m0) = (pool.hits(), pool.misses());
        pool.with_page(f, 0, |_| ()).unwrap();
        assert_eq!(pool.hits(), h0 + 1);
        assert_eq!(pool.misses(), m0);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let pool = BufferPool::in_memory(2);
        let f = pool.create_file(FileKind::Heap, "t");
        for n in 0..2 {
            pool.allocate_page(f, FrameData::Heap(fill_page(n)))
                .unwrap();
        }
        pool.pin(f, 0).unwrap();
        assert_eq!(pool.pinned_pages(), 1);
        // Pressure the pool: page 0 must stay resident throughout.
        for n in 2..8 {
            pool.allocate_page(f, FrameData::Heap(fill_page(n)))
                .unwrap();
        }
        let misses_before = pool.misses();
        pool.with_page(f, 0, |_| ()).unwrap();
        assert_eq!(pool.misses(), misses_before, "pinned page was evicted");
        pool.unpin(f, 0);
        assert_eq!(pool.pinned_pages(), 0);
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let pool = BufferPool::in_memory(2);
        let f = pool.create_file(FileKind::Heap, "t");
        for n in 0..2 {
            pool.allocate_page(f, FrameData::Heap(fill_page(n)))
                .unwrap();
            pool.pin(f, n as u32).unwrap();
        }
        match pool.allocate_page(f, FrameData::Heap(fill_page(9))) {
            Err(StorageError::PoolExhausted { capacity: 2 }) => {}
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
        pool.unpin(f, 0);
        pool.allocate_page(f, FrameData::Heap(fill_page(9)))
            .unwrap();
    }

    #[test]
    fn spill_to_disk_and_back() {
        let dir = std::env::temp_dir().join(format!("recdb-pool-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let pool = BufferPool::spilling(2, &dir);
        let f = pool.create_file(FileKind::Heap, "ratings");
        for n in 0..6 {
            pool.allocate_page(f, FrameData::Heap(fill_page(n)))
                .unwrap();
        }
        assert!(dir.join("ratings.spill").exists());
        for n in 0..6u32 {
            let got = pool.with_page(f, n, |p| p.get(0).unwrap()).unwrap();
            assert_eq!(got, tuple(n as i64));
        }
        pool.remove_file(f);
        assert!(!dir.join("ratings.spill").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_drops_tail_pages() {
        let pool = BufferPool::in_memory(3);
        let f = pool.create_file(FileKind::Heap, "t");
        for n in 0..5 {
            pool.allocate_page(f, FrameData::Heap(fill_page(n)))
                .unwrap();
        }
        pool.truncate_file(f, 2).unwrap();
        assert_eq!(pool.page_count(f), 2);
        assert!(pool.with_page(f, 2, |_| ()).is_err());
        pool.with_page(f, 1, |_| ()).unwrap();
    }

    #[test]
    fn install_page_writes_through() {
        let pool = BufferPool::in_memory(2);
        let f = pool.create_file(FileKind::Heap, "t");
        pool.install_page(f, 0, FrameData::Heap(fill_page(7)))
            .unwrap();
        assert_eq!(pool.page_count(f), 1);
        // Force the frame out, then fault it back from backing.
        for n in 1..4 {
            pool.allocate_page(f, FrameData::Heap(fill_page(n)))
                .unwrap();
        }
        let got = pool.with_page(f, 0, |p| p.get(0).unwrap()).unwrap();
        assert_eq!(got, tuple(7));
    }

    #[test]
    fn wal_barrier_runs_before_dirty_writeback() {
        use std::sync::atomic::AtomicUsize;
        let pool = BufferPool::in_memory(2);
        let flushes = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&flushes);
        pool.set_wal_barrier(move || {
            seen.fetch_add(1, Ordering::SeqCst);
        });
        let f = pool.create_file(FileKind::Heap, "t");
        for n in 0..5 {
            pool.allocate_page(f, FrameData::Heap(fill_page(n)))
                .unwrap();
        }
        assert!(flushes.load(Ordering::SeqCst) >= 3, "barrier not invoked");
    }

    #[test]
    fn evict_fail_point_leaves_pool_intact() {
        let _x = recdb_fault::exclusive();
        let pool = BufferPool::in_memory(2);
        let f = pool.create_file(FileKind::Heap, "t");
        for n in 0..2 {
            pool.allocate_page(f, FrameData::Heap(fill_page(n)))
                .unwrap();
        }
        recdb_fault::arm_error("storage::pool_evict", 1);
        let err = pool.allocate_page(f, FrameData::Heap(fill_page(2)));
        assert!(matches!(err, Err(StorageError::FaultInjected(_))));
        recdb_fault::clear();
        // The pool still works and the original pages are unharmed.
        pool.allocate_page(f, FrameData::Heap(fill_page(2)))
            .unwrap();
        for n in 0..3u32 {
            let got = pool.with_page(f, n, |p| p.get(0).unwrap()).unwrap();
            assert_eq!(got, tuple(n as i64));
        }
    }
}
