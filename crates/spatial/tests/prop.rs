//! Property-based tests for the spatial substrate: every R-tree query is
//! checked against brute force, and the geometry predicates against their
//! definitions.

use proptest::prelude::*;
use recdb_spatial::{functions, Point, Polygon, RTree, Rect};

fn point_strategy() -> impl Strategy<Value = Point> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y))
}

fn points_strategy(max: usize) -> impl Strategy<Value = Vec<(Point, usize)>> {
    proptest::collection::vec(point_strategy(), 0..max)
        .prop_map(|pts| pts.into_iter().enumerate().map(|(i, p)| (p, i)).collect())
}

proptest! {
    /// Rect query ≡ brute-force filter, for arbitrary point sets and
    /// query windows.
    #[test]
    fn rtree_rect_query_matches_brute_force(
        pts in points_strategy(200),
        a in point_strategy(),
        b in point_strategy(),
    ) {
        let tree = RTree::bulk_load(pts.clone());
        let query = Rect::new(a, b);
        let mut got: Vec<usize> = tree.query_rect(&query).into_iter().map(|(_, i)| i).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .filter(|(p, _)| query.contains(p))
            .map(|&(_, i)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Within-radius query ≡ brute-force distance filter.
    #[test]
    fn rtree_within_matches_brute_force(
        pts in points_strategy(200),
        center in point_strategy(),
        radius in 0.0f64..1500.0,
    ) {
        let tree = RTree::bulk_load(pts.clone());
        let mut got: Vec<usize> = tree
            .query_within(&center, radius)
            .into_iter()
            .map(|(_, i)| i)
            .collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .filter(|(p, _)| p.distance(&center) <= radius)
            .map(|&(_, i)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// k-NN returns the k smallest distances, ascending.
    #[test]
    fn rtree_knn_matches_brute_force(
        pts in points_strategy(150),
        center in point_strategy(),
        k in 0usize..20,
    ) {
        let tree = RTree::bulk_load(pts.clone());
        let got: Vec<f64> = tree.nearest(&center, k).iter().map(|e| e.2).collect();
        let mut dists: Vec<f64> = pts.iter().map(|(p, _)| p.distance(&center)).collect();
        dists.sort_by(f64::total_cmp);
        dists.truncate(k);
        prop_assert_eq!(got.len(), dists.len());
        for (g, w) in got.iter().zip(&dists) {
            prop_assert!((g - w).abs() < 1e-9, "{:?} vs {:?}", got, dists);
        }
        prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }

    /// For rectangle polygons, polygon containment ≡ rect containment —
    /// and therefore ST_Contains over SQL RECT values is exact.
    #[test]
    fn rect_polygon_containment_agrees(
        a in point_strategy(),
        b in point_strategy(),
        p in point_strategy(),
    ) {
        let rect = Rect::new(a, b);
        let poly = Polygon::from_rect(rect);
        prop_assert_eq!(poly.contains(&p), rect.contains(&p));
        prop_assert_eq!(functions::st_contains(&poly, &p), rect.contains(&p));
    }

    /// ST_DWithin is symmetric and consistent with ST_Distance.
    #[test]
    fn dwithin_consistent_with_distance(
        a in point_strategy(),
        b in point_strategy(),
        d in 0.0f64..3000.0,
    ) {
        let within = functions::st_dwithin(&a, &b, d);
        prop_assert_eq!(within, functions::st_distance(&a, &b) <= d);
        prop_assert_eq!(within, functions::st_dwithin(&b, &a, d));
    }

    /// Distance is a metric on the sampled domain: non-negative,
    /// symmetric, zero iff same point (for finite coords), triangle
    /// inequality within float tolerance.
    #[test]
    fn distance_is_a_metric(
        a in point_strategy(),
        b in point_strategy(),
        c in point_strategy(),
    ) {
        let ab = functions::st_distance(&a, &b);
        let ba = functions::st_distance(&b, &a);
        let ac = functions::st_distance(&a, &c);
        let cb = functions::st_distance(&c, &b);
        prop_assert!(ab >= 0.0);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab <= ac + cb + 1e-9, "triangle: {} > {} + {}", ab, ac, cb);
        prop_assert_eq!(functions::st_distance(&a, &a), 0.0);
    }

    /// CScore stays in [0, 1] and is monotone in both arguments.
    #[test]
    fn cscore_bounded_and_monotone(
        r1 in 0.0f64..5.0,
        r2 in 0.0f64..5.0,
        d1 in 0.0f64..2000.0,
        d2 in 0.0f64..2000.0,
    ) {
        let s = functions::cscore(r1, d1);
        prop_assert!((0.0..=1.0).contains(&s));
        if r1 <= r2 {
            prop_assert!(functions::cscore(r1, d1) <= functions::cscore(r2, d1) + 1e-12);
        }
        if d1 <= d2 {
            prop_assert!(functions::cscore(r1, d2) <= functions::cscore(r1, d1) + 1e-12);
        }
    }
}
