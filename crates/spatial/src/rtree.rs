//! A static R-tree over points, bulk-loaded with Sort-Tile-Recursive (STR).
//!
//! This is the GiST-index substitute for the POI tables: the planner can
//! answer `ST_DWithin`/bounding-box filters by tree descent instead of a
//! full scan. STR packing gives near-optimal leaves for static data, which
//! matches the datasets (POI locations don't move during a benchmark run).

use crate::geom::{Point, Rect};

const NODE_CAPACITY: usize = 16;

#[derive(Debug)]
enum Node<T> {
    Leaf {
        bbox: Rect,
        entries: Vec<(Point, T)>,
    },
    Inner {
        bbox: Rect,
        children: Vec<Node<T>>,
    },
}

impl<T> Node<T> {
    fn bbox(&self) -> &Rect {
        match self {
            Node::Leaf { bbox, .. } => bbox,
            Node::Inner { bbox, .. } => bbox,
        }
    }
}

/// A static, STR-packed R-tree mapping points to payloads.
#[derive(Debug)]
pub struct RTree<T> {
    root: Option<Node<T>>,
    len: usize,
}

impl<T: Clone> RTree<T> {
    /// Bulk-load from `(point, payload)` pairs.
    pub fn bulk_load(mut items: Vec<(Point, T)>) -> Self {
        let len = items.len();
        if items.is_empty() {
            return RTree { root: None, len: 0 };
        }
        // STR: sort by x, slice into vertical strips, sort each strip by y,
        // cut into leaves of NODE_CAPACITY.
        items.sort_by(|a, b| a.0.x.total_cmp(&b.0.x));
        let leaf_count = len.div_ceil(NODE_CAPACITY);
        let strip_count = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = len.div_ceil(strip_count).max(1);
        let mut leaves: Vec<Node<T>> = Vec::with_capacity(leaf_count);
        for strip in items.chunks_mut(per_strip) {
            strip.sort_by(|a, b| a.0.y.total_cmp(&b.0.y));
            for chunk in strip.chunks(NODE_CAPACITY) {
                let mut bbox = Rect::of_point(chunk[0].0);
                for (p, _) in &chunk[1..] {
                    bbox = bbox.union(&Rect::of_point(*p));
                }
                leaves.push(Node::Leaf {
                    bbox,
                    entries: chunk.to_vec(),
                });
            }
        }
        // Pack upward until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<Node<T>> = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            let mut group: Vec<Node<T>> = Vec::with_capacity(NODE_CAPACITY);
            for node in level {
                group.push(node);
                if group.len() == NODE_CAPACITY {
                    next.push(Self::pack(std::mem::take(&mut group)));
                }
            }
            if !group.is_empty() {
                next.push(Self::pack(group));
            }
            level = next;
        }
        RTree {
            root: level.pop(),
            len,
        }
    }

    fn pack(children: Vec<Node<T>>) -> Node<T> {
        let mut bbox = *children[0].bbox();
        for c in &children[1..] {
            bbox = bbox.union(c.bbox());
        }
        Node::Inner { bbox, children }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All entries whose point lies inside `query` (boundary inclusive).
    pub fn query_rect(&self, query: &Rect) -> Vec<(Point, T)> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            Self::collect_rect(root, query, &mut out);
        }
        out
    }

    fn collect_rect(node: &Node<T>, query: &Rect, out: &mut Vec<(Point, T)>) {
        if !node.bbox().intersects(query) {
            return;
        }
        match node {
            Node::Leaf { entries, .. } => {
                for (p, t) in entries {
                    if query.contains(p) {
                        out.push((*p, t.clone()));
                    }
                }
            }
            Node::Inner { children, .. } => {
                for c in children {
                    Self::collect_rect(c, query, out);
                }
            }
        }
    }

    /// All entries within distance `radius` of `center` (inclusive) — the
    /// index path for `ST_DWithin`.
    pub fn query_within(&self, center: &Point, radius: f64) -> Vec<(Point, T)> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            Self::collect_within(root, center, radius, &mut out);
        }
        out
    }

    fn collect_within(node: &Node<T>, center: &Point, radius: f64, out: &mut Vec<(Point, T)>) {
        if node.bbox().min_distance(center) > radius {
            return;
        }
        match node {
            Node::Leaf { entries, .. } => {
                for (p, t) in entries {
                    if p.distance(center) <= radius {
                        out.push((*p, t.clone()));
                    }
                }
            }
            Node::Inner { children, .. } => {
                for c in children {
                    Self::collect_within(c, center, radius, out);
                }
            }
        }
    }

    /// The `k` nearest entries to `center`, nearest first (best-first
    /// branch-and-bound).
    pub fn nearest(&self, center: &Point, k: usize) -> Vec<(Point, T, f64)> {
        let Some(root) = &self.root else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        // Max-heap of current best k by distance.
        let mut best: Vec<(Point, T, f64)> = Vec::with_capacity(k + 1);
        Self::nearest_descend(root, center, k, &mut best);
        best.sort_by(|a, b| a.2.total_cmp(&b.2));
        best
    }

    fn nearest_descend(node: &Node<T>, center: &Point, k: usize, best: &mut Vec<(Point, T, f64)>) {
        let worst = if best.len() < k {
            f64::INFINITY
        } else {
            best.iter().map(|e| e.2).fold(0.0, f64::max)
        };
        if node.bbox().min_distance(center) > worst {
            return;
        }
        match node {
            Node::Leaf { entries, .. } => {
                for (p, t) in entries {
                    let d = p.distance(center);
                    let worst = if best.len() < k {
                        f64::INFINITY
                    } else {
                        best.iter().map(|e| e.2).fold(0.0, f64::max)
                    };
                    if d < worst || best.len() < k {
                        best.push((*p, t.clone(), d));
                        if best.len() > k {
                            // Drop the current farthest.
                            let (far, _) = best
                                .iter()
                                .enumerate()
                                .max_by(|a, b| a.1 .2.total_cmp(&b.1 .2))
                                .map(|(i, e)| (i, e.2))
                                .unwrap();
                            best.swap_remove(far);
                        }
                    }
                }
            }
            Node::Inner { children, .. } => {
                // Visit nearer children first for tighter pruning.
                let mut order: Vec<(f64, usize)> = children
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (c.bbox().min_distance(center), i))
                    .collect();
                order.sort_by(|a, b| a.0.total_cmp(&b.0));
                for (_, i) in order {
                    Self::nearest_descend(&children[i], center, k, best);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random points on a 1000×1000 grid.
    fn grid_points(n: usize) -> Vec<(Point, usize)> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 1000) as f64;
                let y = ((i * 40503 + 17) % 1000) as f64;
                (Point::new(x, y), i)
            })
            .collect()
    }

    fn brute_rect(pts: &[(Point, usize)], q: &Rect) -> Vec<usize> {
        let mut v: Vec<usize> = pts
            .iter()
            .filter(|(p, _)| q.contains(p))
            .map(|&(_, i)| i)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn rect_query_matches_brute_force() {
        let pts = grid_points(500);
        let tree = RTree::bulk_load(pts.clone());
        assert_eq!(tree.len(), 500);
        for (lo, hi) in [(0.0, 100.0), (200.0, 800.0), (999.0, 1000.0)] {
            let q = Rect::new(Point::new(lo, lo), Point::new(hi, hi));
            let mut got: Vec<usize> = tree.query_rect(&q).into_iter().map(|(_, i)| i).collect();
            got.sort_unstable();
            assert_eq!(got, brute_rect(&pts, &q), "query [{lo}, {hi}]");
        }
    }

    #[test]
    fn within_query_matches_brute_force() {
        let pts = grid_points(500);
        let tree = RTree::bulk_load(pts.clone());
        let center = Point::new(500.0, 500.0);
        for radius in [0.0, 50.0, 250.0, 2000.0] {
            let mut got: Vec<usize> = tree
                .query_within(&center, radius)
                .into_iter()
                .map(|(_, i)| i)
                .collect();
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .filter(|(p, _)| p.distance(&center) <= radius)
                .map(|&(_, i)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = grid_points(300);
        let tree = RTree::bulk_load(pts.clone());
        let center = Point::new(123.0, 456.0);
        for k in [1, 5, 20] {
            let got: Vec<f64> = tree.nearest(&center, k).iter().map(|e| e.2).collect();
            let mut dists: Vec<f64> = pts.iter().map(|(p, _)| p.distance(&center)).collect();
            dists.sort_by(f64::total_cmp);
            let want = &dists[..k];
            assert_eq!(got.len(), k);
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() < 1e-9, "k={k}: {g} vs {w}");
            }
            assert!(got.windows(2).all(|w| w[0] <= w[1]), "sorted ascending");
        }
    }

    #[test]
    fn empty_tree_queries() {
        let tree: RTree<usize> = RTree::bulk_load(Vec::new());
        assert!(tree.is_empty());
        assert!(tree
            .query_rect(&Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)))
            .is_empty());
        assert!(tree.query_within(&Point::new(0.0, 0.0), 10.0).is_empty());
        assert!(tree.nearest(&Point::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    fn single_point_tree() {
        let tree = RTree::bulk_load(vec![(Point::new(5.0, 5.0), "x")]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.query_within(&Point::new(5.0, 5.0), 0.0).len(), 1);
        assert_eq!(tree.nearest(&Point::new(0.0, 0.0), 5).len(), 1);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let pts = grid_points(10);
        let tree = RTree::bulk_load(pts);
        assert_eq!(tree.nearest(&Point::new(0.0, 0.0), 100).len(), 10);
    }

    #[test]
    fn duplicate_points_all_returned() {
        let p = Point::new(1.0, 1.0);
        let tree = RTree::bulk_load(vec![(p, 1), (p, 2), (p, 3)]);
        let got = tree.query_within(&p, 0.0);
        assert_eq!(got.len(), 3);
    }
}
