//! Planar geometry primitives: points, axis-aligned rectangles, and simple
//! polygons.
//!
//! Coordinates are planar (x, y). Synthetic datasets place POIs on a planar
//! city grid, so Euclidean distance exercises the same operator pipelines
//! PostGIS geodesics would.

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate (longitude-like).
    pub x: f64,
    /// Y coordinate (latitude-like).
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// An axis-aligned rectangle (min/max corners).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl Rect {
    /// A rectangle from two corners in any order.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The degenerate rectangle covering a single point.
    pub fn of_point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Whether the rectangle contains `p` (boundary inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether two rectangles overlap (boundary inclusive).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Minimum distance from the rectangle to a point (0 when inside).
    pub fn min_distance(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

/// A simple polygon (vertex ring, implicitly closed, no self-intersection
/// expected). Containment uses the even-odd ray-casting rule with a
/// boundary-inclusive convention matching `ST_Contains` for interior points
/// plus `ST_Covers`-style edge tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
    bbox: Rect,
}

impl Polygon {
    /// Build a polygon from at least 3 vertices.
    ///
    /// # Panics
    /// Panics if fewer than 3 vertices are supplied.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "a polygon needs at least 3 vertices");
        let mut bbox = Rect::of_point(vertices[0]);
        for v in &vertices[1..] {
            bbox = bbox.union(&Rect::of_point(*v));
        }
        Polygon { vertices, bbox }
    }

    /// Axis-aligned rectangle as a polygon (urban-area bounding boxes).
    pub fn from_rect(r: Rect) -> Self {
        Polygon::new(vec![
            r.min,
            Point::new(r.max.x, r.min.y),
            r.max,
            Point::new(r.min.x, r.max.y),
        ])
    }

    /// The polygon's vertices.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// The polygon's bounding box.
    pub fn bbox(&self) -> &Rect {
        &self.bbox
    }

    /// Point-in-polygon test (even-odd rule), boundary-inclusive.
    pub fn contains(&self, p: &Point) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        // Boundary check: on any edge counts as contained.
        let n = self.vertices.len();
        for k in 0..n {
            let a = self.vertices[k];
            let b = self.vertices[(k + 1) % n];
            if on_segment(&a, &b, p) {
                return true;
            }
        }
        // Even-odd ray cast to +x.
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let (vi, vj) = (self.vertices[i], self.vertices[j]);
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }
}

fn on_segment(a: &Point, b: &Point, p: &Point) -> bool {
    let cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
    if cross.abs() > 1e-9 {
        return false;
    }
    let dot = (p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y);
    let len2 = (b.x - a.x).powi(2) + (b.y - a.y).powi(2);
    (0.0..=len2).contains(&dot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn rect_contains_and_boundary() {
        let r = Rect::new(Point::new(2.0, 3.0), Point::new(0.0, 0.0)); // corners swapped
        assert!(r.contains(&Point::new(1.0, 1.0)));
        assert!(r.contains(&Point::new(0.0, 0.0)), "boundary inclusive");
        assert!(r.contains(&Point::new(2.0, 3.0)));
        assert!(!r.contains(&Point::new(2.1, 1.0)));
    }

    #[test]
    fn rect_intersection_and_union() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Rect::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let c = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let u = a.union(&c);
        assert_eq!(u.min, Point::new(0.0, 0.0));
        assert_eq!(u.max, Point::new(6.0, 6.0));
    }

    #[test]
    fn rect_min_distance() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert_eq!(r.min_distance(&Point::new(1.0, 1.0)), 0.0, "inside");
        assert_eq!(r.min_distance(&Point::new(5.0, 2.0)), 3.0, "right of");
        assert_eq!(r.min_distance(&Point::new(5.0, 6.0)), 5.0, "diagonal");
    }

    #[test]
    fn polygon_square_containment() {
        let sq = Polygon::from_rect(Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0)));
        assert!(sq.contains(&Point::new(2.0, 2.0)));
        assert!(sq.contains(&Point::new(0.0, 2.0)), "edge");
        assert!(sq.contains(&Point::new(4.0, 4.0)), "vertex");
        assert!(!sq.contains(&Point::new(4.1, 2.0)));
        assert!(!sq.contains(&Point::new(-0.1, 2.0)));
    }

    #[test]
    fn polygon_concave_containment() {
        // An L-shape: the notch at top-right is outside.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert!(l.contains(&Point::new(1.0, 3.0)), "upper arm");
        assert!(l.contains(&Point::new(3.0, 1.0)), "lower arm");
        assert!(!l.contains(&Point::new(3.0, 3.0)), "the notch");
    }

    #[test]
    #[should_panic(expected = "at least 3 vertices")]
    fn degenerate_polygon_panics() {
        let _ = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
    }

    #[test]
    fn polygon_bbox_short_circuits() {
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 2.0),
        ]);
        assert_eq!(tri.bbox().min, Point::new(0.0, 0.0));
        assert_eq!(tri.bbox().max, Point::new(2.0, 2.0));
        assert!(!tri.contains(&Point::new(10.0, 10.0)));
        // Inside bbox, outside triangle.
        assert!(!tri.contains(&Point::new(1.9, 1.9)));
    }
}
