//! The PostGIS-style functions the case study (§V) uses, with RecDB's
//! `CScore` combined ranking.

use crate::geom::{Point, Polygon};

/// `ST_Contains(geom, point)` — whether the polygon contains the point
/// (boundary inclusive). Used by Query 6 to keep only hotels inside the
/// 'San Diego' urban area.
pub fn st_contains(area: &Polygon, p: &Point) -> bool {
    area.contains(p)
}

/// `ST_Distance(a, b)` — planar distance between two points. Used by
/// Query 8's combined ranking.
pub fn st_distance(a: &Point, b: &Point) -> f64 {
    a.distance(b)
}

/// `ST_DWithin(a, b, d)` — whether two points lie within distance `d`
/// (inclusive). Used by Query 7's 500-unit radius filter.
pub fn st_dwithin(a: &Point, b: &Point, d: f64) -> bool {
    a.distance(b) <= d
}

/// `CScore(ratingval, distance)` — the combined personalized/proximity
/// score of Query 8: higher predicted rating is better, larger distance is
/// worse. The paper leaves the combination function abstract; we use the
/// standard linear trade-off
///
/// ```text
/// CScore = w · rating_norm + (1 − w) · (1 − min(dist / d_max, 1))
/// ```
///
/// with `w = 0.5`, ratings normalized by a 5-star scale, and `d_max` the
/// scale beyond which distance saturates. [`cscore_weighted`] exposes the
/// knobs.
pub fn cscore(ratingval: f64, distance: f64) -> f64 {
    cscore_weighted(ratingval, distance, 0.5, 5.0, 1000.0)
}

/// The parameterized combined score; see [`cscore`].
pub fn cscore_weighted(
    ratingval: f64,
    distance: f64,
    rating_weight: f64,
    rating_scale: f64,
    max_distance: f64,
) -> f64 {
    let r = (ratingval / rating_scale).clamp(0.0, 1.0);
    let d = 1.0 - (distance / max_distance).clamp(0.0, 1.0);
    rating_weight * r + (1.0 - rating_weight) * d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;

    #[test]
    fn contains_matches_polygon() {
        let area = Polygon::from_rect(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)));
        assert!(st_contains(&area, &Point::new(5.0, 5.0)));
        assert!(!st_contains(&area, &Point::new(15.0, 5.0)));
    }

    #[test]
    fn dwithin_is_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(st_dwithin(&a, &b, 5.0));
        assert!(st_dwithin(&a, &b, 5.1));
        assert!(!st_dwithin(&a, &b, 4.9));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 7.5);
        assert_eq!(st_distance(&a, &b), st_distance(&b, &a));
    }

    #[test]
    fn cscore_monotonicity() {
        // Higher rating at equal distance ⇒ higher score.
        assert!(cscore(5.0, 100.0) > cscore(3.0, 100.0));
        // Nearer at equal rating ⇒ higher score.
        assert!(cscore(4.0, 10.0) > cscore(4.0, 500.0));
    }

    #[test]
    fn cscore_bounds() {
        for &(r, d) in &[(0.0, 0.0), (5.0, 0.0), (5.0, 1e9), (0.0, 1e9), (2.5, 500.0)] {
            let s = cscore(r, d);
            assert!((0.0..=1.0).contains(&s), "cscore({r}, {d}) = {s}");
        }
        assert_eq!(cscore(5.0, 0.0), 1.0, "best case saturates at 1");
        assert_eq!(cscore(0.0, 1e9), 0.0, "worst case saturates at 0");
    }

    #[test]
    fn weighted_extremes_ignore_other_term() {
        // All weight on rating: distance irrelevant.
        assert_eq!(
            cscore_weighted(4.0, 1.0, 1.0, 5.0, 100.0),
            cscore_weighted(4.0, 99.0, 1.0, 5.0, 100.0)
        );
        // All weight on distance: rating irrelevant.
        assert_eq!(
            cscore_weighted(1.0, 50.0, 0.0, 5.0, 100.0),
            cscore_weighted(5.0, 50.0, 0.0, 5.0, 100.0)
        );
    }
}
