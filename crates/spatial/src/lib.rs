//! # recdb-spatial
//!
//! The PostGIS substitute for the paper's location-aware case study (§V).
//! RecDB integrates with PostGIS to spatially filter and rank recommended
//! POIs; the case study uses exactly three geometry functions plus a
//! combined score:
//!
//! * [`functions::st_contains`] — polygon/region containment (Query 6),
//! * [`functions::st_dwithin`] — within-distance predicate (Query 7),
//! * [`functions::st_distance`] — point distance (Query 8),
//! * [`functions::cscore`] — the combined rating/proximity score of
//!   Query 8's `ORDER BY CScore(...)`.
//!
//! [`rtree::RTree`] provides an STR-bulk-loaded R-tree over points so
//! spatial filters have an index access path, mirroring PostGIS GiST
//! indexes.

pub mod functions;
pub mod geom;
pub mod rtree;

pub use functions::{cscore, st_contains, st_distance, st_dwithin};
pub use geom::{Point, Polygon, Rect};
pub use rtree::RTree;
