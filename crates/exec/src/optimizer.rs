//! The rule-based optimizer: the paper's plan rewrites (§IV-B).
//!
//! Three rules run in order:
//!
//! 1. **Predicate pushdown** — the WHERE conjunction is split and each
//!    conjunct is pushed to the deepest subtree whose schema can bind it;
//!    conjuncts spanning both join sides become the join predicate.
//! 2. **Recommend absorption** — conjuncts of the form `uid = k`,
//!    `iid IN (…)`, `ratingval ≥ x`, `ratingval BETWEEN a AND b` sitting
//!    directly above a `Recommend` leaf are absorbed into the leaf as
//!    `uPred`/`iPred`/`rPred`, turning it into the paper's
//!    FILTERRECOMMEND (§IV-B1): the operator "prunes the predicted rating
//!    score calculation for those items that do not satisfy the filtering
//!    predicate".
//! 3. **JoinRecommend selection** — a join between a Recommend leaf (left)
//!    and any other input whose predicate contains
//!    `rec.item_col = outer.X` is rewritten into the JOINRECOMMEND
//!    operator (§IV-B2), which "only predicts the recommendation score for
//!    those tuples that are guaranteed to satisfy the join predicate".

use crate::plan::{LogicalPlan, RecommendNode};
use recdb_sql::{BinaryOp, Expr, Literal};
use recdb_storage::Schema;

/// Run all rewrite rules.
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let plan = push_filters(plan);
    rewrite_rec_joins(plan)
}

/// Run only rules 1–2 (pushdown + Recommend absorption), skipping the
/// JoinRecommend rewrite — used by ablation benches to isolate the
/// JoinRecommend gain.
pub fn optimize_pushdown_only(plan: LogicalPlan) -> LogicalPlan {
    push_filters(plan)
}

// ---------------------------------------------------------------- rule 1+2

/// Does `expr` bind fully against `schema`? (Every column reference
/// resolves.)
fn binds_in(expr: &Expr, schema: &Schema) -> bool {
    match expr {
        Expr::Literal(_) => true,
        Expr::Column { .. } => schema.resolve(&expr.column_ref().expect("column")).is_ok(),
        Expr::Unary { expr, .. } => binds_in(expr, schema),
        Expr::Binary { left, right, .. } => binds_in(left, schema) && binds_in(right, schema),
        Expr::InList { expr, list, .. } => {
            binds_in(expr, schema) && list.iter().all(|e| binds_in(e, schema))
        }
        Expr::Between {
            expr, low, high, ..
        } => binds_in(expr, schema) && binds_in(low, schema) && binds_in(high, schema),
        Expr::Function { args, .. } => args.iter().all(|e| binds_in(e, schema)),
    }
}

fn push_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_filters(*input);
            let conjuncts: Vec<Expr> = predicate.conjuncts().into_iter().cloned().collect();
            push_conjuncts(input, conjuncts)
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            let left = push_filters(*left);
            let right = push_filters(*right);
            LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                predicate,
            }
        }
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(push_filters(*input)),
            exprs,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            outputs,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_filters(*input)),
            group_by,
            outputs,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_filters(*input)),
            keys,
        },
        LogicalPlan::Limit { input, limit } => LogicalPlan::Limit {
            input: Box::new(push_filters(*input)),
            limit,
        },
        leaf => leaf,
    }
}

/// Push a set of conjuncts into `plan` as deep as they bind.
fn push_conjuncts(plan: LogicalPlan, conjuncts: Vec<Expr>) -> LogicalPlan {
    if conjuncts.is_empty() {
        return plan;
    }
    match plan {
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            let left_schema = left.schema();
            let right_schema = right.schema();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut here = Vec::new();
            for c in conjuncts {
                if binds_in(&c, &left_schema) {
                    to_left.push(c);
                } else if binds_in(&c, &right_schema) {
                    to_right.push(c);
                } else {
                    here.push(c);
                }
            }
            if let Some(p) = predicate {
                here.extend(p.conjuncts().into_iter().cloned());
            }
            LogicalPlan::Join {
                left: Box::new(push_conjuncts(*left, to_left)),
                right: Box::new(push_conjuncts(*right, to_right)),
                predicate: Expr::and_all(here),
            }
        }
        LogicalPlan::Recommend(node) => absorb_into_recommend(node, conjuncts),
        LogicalPlan::Filter { input, predicate } => {
            // Merge with an existing filter and push the union.
            let mut all = conjuncts;
            all.extend(predicate.conjuncts().into_iter().cloned());
            push_conjuncts(*input, all)
        }
        other => match Expr::and_all(conjuncts) {
            Some(predicate) => LogicalPlan::Filter {
                input: Box::new(other),
                predicate,
            },
            None => other,
        },
    }
}

/// Extract an `i64` list from `col = k` / `col IN (…)` when `col` resolves
/// to `ordinal` in the recommend schema.
fn extract_id_list(expr: &Expr, schema: &Schema, ordinal: usize) -> Option<Vec<i64>> {
    let is_target = |e: &Expr| -> bool {
        e.column_ref()
            .and_then(|r| schema.resolve(&r).ok())
            .is_some_and(|o| o == ordinal)
    };
    let as_int = |e: &Expr| -> Option<i64> {
        match e {
            Expr::Literal(Literal::Int(v)) => Some(*v),
            _ => None,
        }
    };
    match expr {
        Expr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } => {
            if is_target(left) {
                as_int(right).map(|v| vec![v])
            } else if is_target(right) {
                as_int(left).map(|v| vec![v])
            } else {
                None
            }
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } if is_target(expr) => list.iter().map(as_int).collect(),
        _ => None,
    }
}

/// Extract rating bounds from comparisons/BETWEEN on the rating ordinal.
fn extract_rating_bounds(
    expr: &Expr,
    schema: &Schema,
    ordinal: usize,
) -> Option<(Option<f64>, Option<f64>)> {
    let is_target = |e: &Expr| -> bool {
        e.column_ref()
            .and_then(|r| schema.resolve(&r).ok())
            .is_some_and(|o| o == ordinal)
    };
    let as_num = |e: &Expr| -> Option<f64> {
        match e {
            Expr::Literal(Literal::Int(v)) => Some(*v as f64),
            Expr::Literal(Literal::Float(v)) => Some(*v),
            _ => None,
        }
    };
    match expr {
        Expr::Binary { op, left, right } => {
            let (col_left, lit) = if is_target(left) {
                (true, as_num(right)?)
            } else if is_target(right) {
                (false, as_num(left)?)
            } else {
                return None;
            };
            // Normalize to `col OP lit`.
            let op = if col_left {
                *op
            } else {
                match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::Le => BinaryOp::Ge,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::Ge => BinaryOp::Le,
                    other => *other,
                }
            };
            match op {
                // Inclusive bounds only: strict bounds stay as residual
                // filters (the index range scan is inclusive).
                BinaryOp::Ge => Some((Some(lit), None)),
                BinaryOp::Le => Some((None, Some(lit))),
                _ => None,
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } if is_target(expr) => Some((Some(as_num(low)?), Some(as_num(high)?))),
        _ => None,
    }
}

/// Absorb conjuncts into a Recommend leaf (rule 2); unabsorbed conjuncts
/// stay as a residual Filter above it.
fn absorb_into_recommend(mut node: RecommendNode, conjuncts: Vec<Expr>) -> LogicalPlan {
    let schema = node.schema();
    let mut residual = Vec::new();
    for c in conjuncts {
        if let Some(users) = extract_id_list(&c, &schema, 0) {
            node.user_ids = Some(intersect(node.user_ids.take(), users));
            continue;
        }
        if let Some(items) = extract_id_list(&c, &schema, 1) {
            node.item_ids = Some(intersect(node.item_ids.take(), items));
            continue;
        }
        if let Some((lo, hi)) = extract_rating_bounds(&c, &schema, 2) {
            if let Some(lo) = lo {
                node.min_rating = Some(node.min_rating.map_or(lo, |m: f64| m.max(lo)));
            }
            if let Some(hi) = hi {
                node.max_rating = Some(node.max_rating.map_or(hi, |m: f64| m.min(hi)));
            }
            continue;
        }
        residual.push(c);
    }
    let leaf = LogicalPlan::Recommend(node);
    match Expr::and_all(residual) {
        Some(predicate) => LogicalPlan::Filter {
            input: Box::new(leaf),
            predicate,
        },
        None => leaf,
    }
}

fn intersect(existing: Option<Vec<i64>>, new: Vec<i64>) -> Vec<i64> {
    match existing {
        None => new,
        Some(old) => old.into_iter().filter(|v| new.contains(v)).collect(),
    }
}

// ------------------------------------------------------------------ rule 3

fn rewrite_rec_joins(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            let left = rewrite_rec_joins(*left);
            let right = rewrite_rec_joins(*right);
            try_rec_join(left, right, predicate)
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite_rec_joins(*input)),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(rewrite_rec_joins(*input)),
            exprs,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            outputs,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite_rec_joins(*input)),
            group_by,
            outputs,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite_rec_joins(*input)),
            keys,
        },
        LogicalPlan::Limit { input, limit } => LogicalPlan::Limit {
            input: Box::new(rewrite_rec_joins(*input)),
            limit,
        },
        leaf => leaf,
    }
}

/// Rewrite `Join(Recommend, outer)` into `JoinRecommend` when the join
/// predicate equates the recommend item column with an outer column. The
/// Recommend leaf must be the *left* input (FROM lists the ratings table
/// first in every paper query); otherwise the join is left untouched so
/// column order is preserved.
fn try_rec_join(left: LogicalPlan, right: LogicalPlan, predicate: Option<Expr>) -> LogicalPlan {
    let LogicalPlan::Recommend(rec) = left else {
        return LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate,
        };
    };
    let Some(predicate) = predicate else {
        return LogicalPlan::Join {
            left: Box::new(LogicalPlan::Recommend(rec)),
            right: Box::new(right),
            predicate: None,
        };
    };
    let rec_schema = rec.schema();
    let outer_schema = right.schema();
    let mut item_eq: Option<String> = None;
    let mut residual = Vec::new();
    for c in predicate.conjuncts() {
        if item_eq.is_none() {
            if let Some(outer_col) = match_item_equality(c, &rec_schema, &outer_schema) {
                item_eq = Some(outer_col);
                continue;
            }
        }
        residual.push(c.clone());
    }
    let plan = match item_eq {
        Some(outer_item_column) => LogicalPlan::RecJoin {
            rec,
            outer: Box::new(right),
            outer_item_column,
        },
        None => {
            return LogicalPlan::Join {
                left: Box::new(LogicalPlan::Recommend(rec)),
                right: Box::new(right),
                predicate: Expr::and_all(residual),
            }
        }
    };
    match Expr::and_all(residual) {
        Some(predicate) => LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        },
        None => plan,
    }
}

/// Match `rec.item = outer.X` (either orientation); returns the outer
/// column reference.
fn match_item_equality(expr: &Expr, rec_schema: &Schema, outer_schema: &Schema) -> Option<String> {
    let Expr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = expr
    else {
        return None;
    };
    let is_rec_item = |e: &Expr| -> bool {
        e.column_ref()
            .and_then(|r| rec_schema.resolve(&r).ok())
            .is_some_and(|o| o == 1)
    };
    let outer_ref = |e: &Expr| -> Option<String> {
        let r = e.column_ref()?;
        outer_schema.resolve(&r).ok().map(|_| r)
    };
    if is_rec_item(left) {
        outer_ref(right)
    } else if is_rec_item(right) {
        outer_ref(left)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_logical;
    use recdb_sql::parse;
    use recdb_storage::{Catalog, DataType};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "ratings",
            Schema::from_pairs(&[
                ("uid", DataType::Int),
                ("iid", DataType::Int),
                ("ratingval", DataType::Float),
            ]),
        )
        .unwrap();
        cat.create_table(
            "movies",
            Schema::from_pairs(&[
                ("mid", DataType::Int),
                ("name", DataType::Text),
                ("genre", DataType::Text),
            ]),
        )
        .unwrap();
        cat
    }

    fn optimized(src: &str) -> LogicalPlan {
        let recdb_sql::Statement::Select(s) = parse(src).unwrap() else {
            panic!()
        };
        optimize(build_logical(&s, &catalog()).unwrap())
    }

    fn find_recommend(plan: &LogicalPlan) -> Option<&RecommendNode> {
        match plan {
            LogicalPlan::Recommend(node) => Some(node),
            LogicalPlan::RecJoin { rec, .. } => Some(rec),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Project { input, .. } => find_recommend(input),
            LogicalPlan::Join { left, right, .. } => {
                find_recommend(left).or_else(|| find_recommend(right))
            }
            LogicalPlan::Scan { .. } => None,
        }
    }

    #[test]
    fn uid_equality_absorbed_as_user_pred() {
        let plan = optimized(
            "SELECT R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1",
        );
        let node = find_recommend(&plan).unwrap();
        assert_eq!(node.user_ids, Some(vec![1]));
        assert!(node.is_filtered());
        // No residual Filter node should remain above the leaf (the leaf
        // itself renders as FilterRecommend).
        assert!(
            !plan
                .explain()
                .lines()
                .any(|l| l.trim_start().starts_with("Filter ")),
            "{plan}"
        );
    }

    #[test]
    fn paper_query3_iid_in_list_absorbed() {
        let plan = optimized(
            "SELECT R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid=1 AND R.iid IN (1,2,3,4,5)",
        );
        let node = find_recommend(&plan).unwrap();
        assert_eq!(node.user_ids, Some(vec![1]));
        assert_eq!(node.item_ids, Some(vec![1, 2, 3, 4, 5]));
    }

    #[test]
    fn rating_bounds_absorbed() {
        let plan = optimized(
            "SELECT R.iid FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.ratingval >= 3.5 AND R.ratingval <= 5 AND R.uid = 2",
        );
        let node = find_recommend(&plan).unwrap();
        assert_eq!(node.min_rating, Some(3.5));
        assert_eq!(node.max_rating, Some(5.0));
        let plan = optimized(
            "SELECT R.iid FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.ratingval BETWEEN 2 AND 4",
        );
        let node = find_recommend(&plan).unwrap();
        assert_eq!(node.min_rating, Some(2.0));
        assert_eq!(node.max_rating, Some(4.0));
    }

    #[test]
    fn reversed_literal_comparison_normalized() {
        let plan = optimized(
            "SELECT R.iid FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE 4 >= R.ratingval AND 1 = R.uid",
        );
        let node = find_recommend(&plan).unwrap();
        assert_eq!(node.max_rating, Some(4.0));
        assert_eq!(node.user_ids, Some(vec![1]));
    }

    #[test]
    fn strict_bounds_stay_residual() {
        let plan = optimized(
            "SELECT R.iid FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.ratingval > 3",
        );
        let node = find_recommend(&plan).unwrap();
        assert_eq!(node.min_rating, None);
        assert!(plan.explain().contains("Filter"), "{plan}");
    }

    #[test]
    fn paper_query4_becomes_join_recommend() {
        let plan = optimized(
            "SELECT R.uid, M.name, R.ratingval FROM ratings AS R, movies AS M \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid=1 AND M.mid = R.iid AND M.genre='Action'",
        );
        let text = plan.explain();
        assert!(text.contains("JoinRecommend"), "{text}");
        // The genre filter must sit on the Movies side, below JoinRecommend.
        let LogicalPlan::Project { input, .. } = &plan else {
            panic!()
        };
        let LogicalPlan::RecJoin { rec, outer, .. } = &**input else {
            panic!("expected RecJoin at top: {text}")
        };
        assert_eq!(rec.user_ids, Some(vec![1]));
        assert!(matches!(&**outer, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn join_without_item_equality_stays_join() {
        let plan = optimized(
            "SELECT R.uid, M.name FROM ratings AS R, movies AS M \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = M.mid",
        );
        assert!(plan.explain().contains("Join on"), "{plan}");
        assert!(!plan.explain().contains("JoinRecommend"), "{plan}");
    }

    #[test]
    fn plain_join_pushdown_splits_sides() {
        let plan = optimized(
            "SELECT R.uid, M.name FROM ratings AS R, movies AS M \
             WHERE R.uid = 7 AND M.genre = 'Action' AND R.iid = M.mid",
        );
        let text = plan.explain();
        // Both single-side conjuncts pushed below the join; equality kept
        // as the join predicate.
        let join_line = text.lines().find(|l| l.contains("Join on")).unwrap();
        assert!(join_line.contains("iid"), "{text}");
        assert!(!join_line.contains("genre"), "{text}");
    }

    #[test]
    fn conflicting_user_preds_intersect() {
        let plan = optimized(
            "SELECT R.iid FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid IN (1, 2, 3) AND R.uid = 2",
        );
        let node = find_recommend(&plan).unwrap();
        assert_eq!(node.user_ids, Some(vec![2]));
        let plan = optimized(
            "SELECT R.iid FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1 AND R.uid = 2",
        );
        let node = find_recommend(&plan).unwrap();
        assert_eq!(node.user_ids, Some(vec![]), "contradiction → empty");
    }

    #[test]
    fn non_literal_predicates_not_absorbed() {
        let plan = optimized(
            "SELECT R.iid FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = R.iid",
        );
        let node = find_recommend(&plan).unwrap();
        assert_eq!(node.user_ids, None);
        assert!(plan.explain().contains("Filter"));
    }
}
