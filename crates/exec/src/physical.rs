//! Physical planning and execution.
//!
//! Translates an (optimized) [`LogicalPlan`] into a tree of
//! [`PhysicalOp`]s, making the remaining *access-path* decisions the paper
//! assigns to the executor:
//!
//! * the Recommend leaf becomes `INDEXRECOMMEND` when a materialized
//!   [`crate::rec_index::RecScoreIndex`] fully covers the querying users
//!   (§IV-C), else
//!   `RECOMMEND`/`FILTERRECOMMEND`;
//! * `Sort` is elided when an `IndexRecommend` below it already delivers
//!   tuples in descending rating order (the paper's top-k plan);
//! * joins hash on one extracted equi-condition when available.

use crate::error::{ExecError, ExecResult};
use crate::expr::{bind, BoundExpr};
use crate::ops::{
    drain, AggOutput, FilterOp, HashAggregateOp, IndexJoinOp, IndexRecommendOp, JoinOp,
    JoinRecommendOp, LimitOp, MeteredOp, PhysicalOp, ProjectOp, RecommendOp, ScanOp, SortOp,
};
use crate::plan::{AggregateOutput, LogicalPlan, RecommendNode};
use crate::provider::RecommenderProvider;
use crate::result::ResultSet;
use recdb_guard::QueryGuard;
use recdb_obs::{Clock, OpStats, ProfiledOp, QueryProfile, Registry};
use recdb_sql::{BinaryOp, Expr, OrderKey};
use recdb_storage::{Catalog, Schema};
use std::cell::RefCell;
use std::sync::Arc;

/// Everything the physical planner needs to resolve names.
pub struct ExecContext<'a> {
    /// The table catalog.
    pub catalog: &'a Catalog,
    /// The recommender catalog.
    pub provider: &'a dyn RecommenderProvider,
    /// Resource governor propagated into every operator of the built tree.
    pub guard: QueryGuard,
    /// Engine-wide metric registry; when set, scans bump the rows-scanned
    /// counter and the Recommend access-path choice records
    /// RecScoreIndex hits/misses.
    pub metrics: Option<Arc<Registry>>,
    /// When set, every built operator is wrapped in a [`MeteredOp`] and
    /// the build assembles the [`QueryProfile`] tree (`EXPLAIN ANALYZE`).
    pub profiler: Option<Profiler>,
}

impl<'a> ExecContext<'a> {
    /// A context with no metrics and no profiling attached.
    pub fn new(
        catalog: &'a Catalog,
        provider: &'a dyn RecommenderProvider,
        guard: QueryGuard,
    ) -> Self {
        ExecContext {
            catalog,
            provider,
            guard,
            metrics: None,
            profiler: None,
        }
    }

    /// Attach an engine-wide metric registry.
    pub fn with_metrics(mut self, metrics: Arc<Registry>) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

/// Assembles the profiled-operator tree while the physical plan is built.
///
/// The recursive build pushes each finished node onto a stack; a parent
/// collects everything its children pushed (`split_off` at the mark taken
/// before recursing) so plan fusion — `LIMIT` over `ORDER BY` collapsing
/// into one `TopKSort`, a redundant sort eliding entirely — falls out
/// naturally: one physical operator, one profile node.
pub struct Profiler {
    clock: Arc<dyn Clock>,
    stack: RefCell<Vec<ProfiledOp>>,
}

impl Profiler {
    /// A profiler reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Profiler {
            clock,
            stack: RefCell::new(Vec::new()),
        }
    }

    fn finish(self, total_micros: u64) -> QueryProfile {
        let mut stack = self.stack.into_inner();
        let root = stack.pop().expect("profiled build produced a root");
        QueryProfile { root, total_micros }
    }
}

/// A built operator plus the column reference (if any) by which its output
/// is already sorted in descending order.
struct Built<'a> {
    op: Box<dyn PhysicalOp + 'a>,
    sorted_desc: Option<String>,
}

/// Execute a logical plan to a materialized result.
///
/// The guard is checked once before any operator runs, so an
/// already-expired deadline (or a cancelled handle) fails fast without
/// touching storage, and then cooperatively inside every operator's
/// `next()` loop.
pub fn execute_plan(plan: &LogicalPlan, ctx: &ExecContext<'_>) -> ExecResult<ResultSet> {
    ctx.guard.check()?;
    let mut built = build(plan, ctx)?;
    let rows = drain(built.op.as_mut())?;
    Ok(ResultSet::new(plan.schema(), rows))
}

/// Execute a logical plan while collecting per-operator actuals — the
/// engine of `EXPLAIN ANALYZE`. Timing reads `clock`, so tests inject a
/// manual clock for byte-stable output.
pub fn execute_plan_profiled(
    plan: &LogicalPlan,
    ctx: &ExecContext<'_>,
    clock: Arc<dyn Clock>,
) -> ExecResult<(ResultSet, QueryProfile)> {
    ctx.guard.check()?;
    let profiled = ExecContext {
        catalog: ctx.catalog,
        provider: ctx.provider,
        guard: ctx.guard.clone(),
        metrics: ctx.metrics.clone(),
        profiler: Some(Profiler::new(Arc::clone(&clock))),
    };
    let start = clock.now_micros();
    let mut built = build(plan, &profiled)?;
    let rows = drain(built.op.as_mut())?;
    let total_micros = clock.now_micros().saturating_sub(start);
    drop(built);
    let profile = profiled.profiler.expect("set above").finish(total_micros);
    Ok((ResultSet::new(plan.schema(), rows), profile))
}

/// Recursive build entry point: delegates to [`build_node`], then — when a
/// profiler is attached — wraps the finished operator in a [`MeteredOp`]
/// and records its node (with whatever children the recursion pushed) in
/// the profile tree.
fn build<'a>(plan: &LogicalPlan, ctx: &ExecContext<'a>) -> ExecResult<Built<'a>> {
    let Some(profiler) = &ctx.profiler else {
        return build_node(plan, ctx);
    };
    let mark = profiler.stack.borrow().len();
    let built = build_node(plan, ctx)?;
    let children = profiler.stack.borrow_mut().split_off(mark);
    let stats = Arc::new(OpStats::default());
    let label = node_label(built.op.as_ref(), plan);
    profiler.stack.borrow_mut().push(ProfiledOp {
        label,
        stats: Arc::clone(&stats),
        children,
    });
    Ok(Built {
        op: Box::new(MeteredOp::new(built.op, stats, Arc::clone(&profiler.clock))),
        sorted_desc: built.sorted_desc,
    })
}

/// Display label for a profiled node: the *physical* operator name (so
/// fusion and access-path choices show what actually ran) plus the most
/// useful logical detail.
fn node_label(op: &dyn PhysicalOp, plan: &LogicalPlan) -> String {
    let name = op.name();
    match plan {
        LogicalPlan::Scan { table, binding, .. } => format!("{name} {table} AS {binding}"),
        LogicalPlan::Recommend(node) => format!("{name} {}", node.algorithm.name()),
        LogicalPlan::RecJoin { rec, .. } if name == "JoinRecommend" => {
            format!("{name} {}", rec.algorithm.name())
        }
        LogicalPlan::Limit { limit, .. } => format!("{name} k={limit}"),
        // A Sort node whose physical operator is not a sort: the stream
        // below was already ordered (IndexRecommend) and the sort elided.
        LogicalPlan::Sort { .. } if !name.contains("Sort") => format!("{name} [sort elided]"),
        _ => name.to_owned(),
    }
}

fn build_node<'a>(plan: &LogicalPlan, ctx: &ExecContext<'a>) -> ExecResult<Built<'a>> {
    match plan {
        LogicalPlan::Scan { table, schema, .. } => {
            let t = ctx.catalog.table(table)?;
            let mut scan = ScanOp::new(t.heap(), schema.clone()).with_guard(ctx.guard.clone());
            if let Some(metrics) = &ctx.metrics {
                scan = scan.with_rows_counter(metrics.counter("recdb_rows_scanned_total"));
            }
            Ok(Built {
                op: Box::new(scan),
                sorted_desc: None,
            })
        }
        LogicalPlan::Recommend(node) => build_recommend(node, ctx),
        LogicalPlan::Filter { input, predicate } => {
            let child = build(input, ctx)?;
            let bound = bind(predicate, child.op.schema())?;
            Ok(Built {
                sorted_desc: child.sorted_desc,
                op: Box::new(FilterOp::new(child.op, bound).with_guard(ctx.guard.clone())),
            })
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            let l = build(left, ctx)?;
            // Access-path choice: probe a B-tree index on the inner table
            // when the join is an equi-join on an indexed leading column.
            if let Some(built) =
                try_index_join(l.op.schema().clone(), right, predicate.as_ref(), ctx)?
            {
                let (inner_table, index, inner_schema, residual, l_ord) = built;
                return Ok(Built {
                    op: Box::new(
                        IndexJoinOp::new(l.op, inner_table, index, &inner_schema, l_ord, residual)
                            .with_guard(ctx.guard.clone()),
                    ),
                    sorted_desc: None,
                });
            }
            let r = build(right, ctx)?;
            let (equi, residual) =
                split_join_predicate(predicate.as_ref(), l.op.schema(), r.op.schema())?;
            Ok(Built {
                op: Box::new(JoinOp::new(l.op, r.op, equi, residual).with_guard(ctx.guard.clone())),
                sorted_desc: None,
            })
        }
        LogicalPlan::RecJoin {
            rec,
            outer,
            outer_item_column,
        } => {
            let model = ctx
                .provider
                .model(&rec.ratings_table, rec.algorithm)
                .ok_or_else(|| ExecError::NoRecommender {
                    table: rec.ratings_table.clone(),
                    algorithm: rec.algorithm.name().to_owned(),
                })?;
            let outer_built = build(outer, ctx)?;
            let ordinal = outer_built.op.schema().resolve(outer_item_column)?;
            // iPred on the rec side composes with the join: keep only outer
            // items in the pushed-down list.
            let op = JoinRecommendOp::new(
                model,
                rec.schema(),
                outer_built.op,
                ordinal,
                rec.user_ids.clone(),
                rec.min_rating,
                rec.max_rating,
            )
            .with_guard(ctx.guard.clone());
            let op: Box<dyn PhysicalOp + 'a> = match &rec.item_ids {
                None => Box::new(op),
                Some(items) => {
                    let schema = op.schema().clone();
                    let pred =
                        item_in_list_predicate(&schema, &rec.binding, &rec.item_column, items)?;
                    Box::new(FilterOp::new(Box::new(op), pred).with_guard(ctx.guard.clone()))
                }
            };
            Ok(Built {
                op,
                sorted_desc: None,
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            outputs,
        } => {
            let child = build(input, ctx)?;
            let keys: Vec<BoundExpr> = group_by
                .iter()
                .map(|g| bind(g, child.op.schema()))
                .collect::<ExecResult<_>>()?;
            let bound_outputs: Vec<AggOutput> = outputs
                .iter()
                .map(|o| {
                    Ok(match o {
                        AggregateOutput::Group { index, .. } => AggOutput::Group(*index),
                        AggregateOutput::Agg { func, arg, .. } => AggOutput::Agg(
                            *func,
                            arg.as_ref()
                                .map(|a| bind(a, child.op.schema()))
                                .transpose()?,
                        ),
                    })
                })
                .collect::<ExecResult<_>>()?;
            Ok(Built {
                op: Box::new(
                    HashAggregateOp::new(child.op, keys, bound_outputs, plan.schema())
                        .with_guard(ctx.guard.clone()),
                ),
                sorted_desc: None,
            })
        }
        LogicalPlan::Sort { input, keys } => {
            let child = build(input, ctx)?;
            if sort_is_redundant(keys, child.sorted_desc.as_deref(), child.op.schema()) {
                return Ok(child);
            }
            let bound: Vec<(BoundExpr, bool)> = keys
                .iter()
                .map(|k| Ok((bind(&k.expr, child.op.schema())?, k.desc)))
                .collect::<ExecResult<_>>()?;
            let sorted_desc = single_desc_column(keys);
            Ok(Built {
                op: Box::new(SortOp::new(child.op, bound).with_guard(ctx.guard.clone())),
                sorted_desc,
            })
        }
        LogicalPlan::Limit { input, limit } => {
            // Fuse `LIMIT k` over `ORDER BY` into a bounded top-k sort:
            // the sort then keeps only `k` rows (stable heap selection)
            // instead of fully sorting its input.
            if let LogicalPlan::Sort {
                input: sort_input,
                keys,
            } = &**input
            {
                let child = build(sort_input, ctx)?;
                if sort_is_redundant(keys, child.sorted_desc.as_deref(), child.op.schema()) {
                    return Ok(Built {
                        sorted_desc: child.sorted_desc,
                        op: Box::new(LimitOp::new(child.op, *limit).with_guard(ctx.guard.clone())),
                    });
                }
                let bound: Vec<(BoundExpr, bool)> = keys
                    .iter()
                    .map(|k| Ok((bind(&k.expr, child.op.schema())?, k.desc)))
                    .collect::<ExecResult<_>>()?;
                let sorted_desc = single_desc_column(keys);
                let k = usize::try_from(*limit).unwrap_or(usize::MAX);
                return Ok(Built {
                    op: Box::new(
                        SortOp::with_limit(child.op, bound, k).with_guard(ctx.guard.clone()),
                    ),
                    sorted_desc,
                });
            }
            let child = build(input, ctx)?;
            Ok(Built {
                sorted_desc: child.sorted_desc,
                op: Box::new(LimitOp::new(child.op, *limit).with_guard(ctx.guard.clone())),
            })
        }
        LogicalPlan::Project { input, exprs } => {
            let child = build(input, ctx)?;
            let bound: Vec<BoundExpr> = exprs
                .iter()
                .map(|(e, _)| bind(e, child.op.schema()))
                .collect::<ExecResult<_>>()?;
            Ok(Built {
                op: Box::new(
                    ProjectOp::new(child.op, bound, plan.schema()).with_guard(ctx.guard.clone()),
                ),
                sorted_desc: None,
            })
        }
    }
}

fn build_recommend<'a>(node: &RecommendNode, ctx: &ExecContext<'a>) -> ExecResult<Built<'a>> {
    let model = ctx
        .provider
        .model(&node.ratings_table, node.algorithm)
        .ok_or_else(|| ExecError::NoRecommender {
            table: node.ratings_table.clone(),
            algorithm: node.algorithm.name().to_owned(),
        })?;
    // IndexRecommend is sound only when every queried user's full list is
    // materialized.
    if let Some(users) = &node.user_ids {
        if !users.is_empty() {
            if let Some(index) = ctx.provider.rec_index(&node.ratings_table, node.algorithm) {
                if users.iter().all(|&u| index.is_complete(u)) {
                    if let Some(metrics) = &ctx.metrics {
                        metrics.counter("recdb_recscoreindex_hits_total").inc();
                    }
                    let sorted_desc = (users.len() == 1)
                        .then(|| format!("{}.{}", node.binding, node.rating_column));
                    return Ok(Built {
                        op: Box::new(
                            IndexRecommendOp::new(
                                index,
                                node.schema(),
                                users.clone(),
                                node.item_ids.clone(),
                                node.min_rating,
                                node.max_rating,
                            )
                            .with_guard(ctx.guard.clone()),
                        ),
                        sorted_desc,
                    });
                }
            }
        }
    }
    // On-the-fly prediction: the score index could not serve this query.
    if let Some(metrics) = &ctx.metrics {
        metrics.counter("recdb_recscoreindex_misses_total").inc();
    }
    Ok(Built {
        op: Box::new(
            RecommendOp::new(
                model,
                node.schema(),
                node.user_ids.clone(),
                node.item_ids.clone(),
                node.min_rating,
                node.max_rating,
            )
            .with_guard(ctx.guard.clone()),
        ),
        sorted_desc: None,
    })
}

/// Is the requested sort already satisfied by a stream sorted descending on
/// `sorted_ref`?
fn sort_is_redundant(keys: &[OrderKey], sorted_ref: Option<&str>, schema: &Schema) -> bool {
    let Some(sorted_ref) = sorted_ref else {
        return false;
    };
    let [key] = keys else { return false };
    if !key.desc {
        return false;
    }
    let Some(reference) = key.expr.column_ref() else {
        return false;
    };
    // Same column iff both references resolve to the same ordinal.
    match (schema.resolve(&reference), schema.resolve(sorted_ref)) {
        (Ok(a), Ok(b)) => a == b,
        _ => false,
    }
}

fn single_desc_column(keys: &[OrderKey]) -> Option<String> {
    let [key] = keys else { return None };
    if !key.desc {
        return None;
    }
    key.expr.column_ref()
}

/// An extracted equi-condition (left/right ordinals) plus the residual
/// predicate bound against the joined schema.
type JoinPredicateParts = (Option<(usize, usize)>, Option<BoundExpr>);

/// Split a join predicate into one hash-able equi-condition (ordinals in
/// the left/right schemas) and a residual bound against the joined schema.
fn split_join_predicate(
    predicate: Option<&Expr>,
    left: &Schema,
    right: &Schema,
) -> ExecResult<JoinPredicateParts> {
    let Some(predicate) = predicate else {
        return Ok((None, None));
    };
    let joined = left.join(right);
    let mut equi = None;
    let mut residual = Vec::new();
    for c in predicate.conjuncts() {
        if equi.is_none() {
            if let Some(pair) = match_equi(c, left, right) {
                equi = Some(pair);
                continue;
            }
        }
        residual.push(c.clone());
    }
    let residual = match Expr::and_all(residual) {
        Some(e) => Some(bind(&e, &joined)?),
        None => None,
    };
    Ok((equi, residual))
}

fn match_equi(expr: &Expr, left: &Schema, right: &Schema) -> Option<(usize, usize)> {
    let Expr::Binary {
        op: BinaryOp::Eq,
        left: a,
        right: b,
    } = expr
    else {
        return None;
    };
    let resolve = |e: &Expr, s: &Schema| -> Option<usize> { s.resolve(&e.column_ref()?).ok() };
    if let (Some(l), Some(r)) = (resolve(a, left), resolve(b, right)) {
        return Some((l, r));
    }
    if let (Some(l), Some(r)) = (resolve(b, left), resolve(a, right)) {
        return Some((l, r));
    }
    None
}

/// What `try_index_join` hands the Join arm when an index path exists.
type IndexJoinParts<'a> = (
    &'a recdb_storage::Table,
    &'a recdb_storage::BTreeIndex,
    Schema,
    Option<BoundExpr>,
    usize,
);

/// Probe for an index nested-loop opportunity: the inner (right) side must
/// be a base-table scan (optionally filtered), the predicate must contain
/// an equi-condition on the inner table's single-column index, and every
/// other conjunct becomes the residual.
fn try_index_join<'a>(
    left_schema: Schema,
    right: &LogicalPlan,
    predicate: Option<&Expr>,
    ctx: &ExecContext<'a>,
) -> ExecResult<Option<IndexJoinParts<'a>>> {
    let Some(predicate) = predicate else {
        return Ok(None);
    };
    let (table_name, inner_schema, inner_filter) = match right {
        LogicalPlan::Scan { table, schema, .. } => (table, schema.clone(), None),
        LogicalPlan::Filter { input, predicate } => match &**input {
            LogicalPlan::Scan { table, schema, .. } => {
                (table, schema.clone(), Some(predicate.clone()))
            }
            _ => return Ok(None),
        },
        _ => return Ok(None),
    };
    let table = ctx.catalog.table(table_name)?;
    let mut chosen: Option<(usize, &recdb_storage::BTreeIndex)> = None;
    let mut residual = Vec::new();
    for c in predicate.conjuncts() {
        if chosen.is_none() {
            if let Some((l_ord, r_ord)) = match_equi(c, &left_schema, &inner_schema) {
                if let Some(index) = table.indexes().iter().find(|i| i.key_columns() == [r_ord]) {
                    chosen = Some((l_ord, index));
                    continue;
                }
            }
        }
        residual.push(c.clone());
    }
    let Some((l_ord, index)) = chosen else {
        return Ok(None);
    };
    if let Some(f) = inner_filter {
        residual.push(f);
    }
    let joined = left_schema.join(&inner_schema);
    let residual = match Expr::and_all(residual) {
        Some(e) => Some(bind(&e, &joined)?),
        None => None,
    };
    Ok(Some((table, index, inner_schema, residual, l_ord)))
}

/// Build `binding.item_column IN (items)` bound against `schema` — used to
/// re-apply a pushed-down iPred on top of JoinRecommend output.
fn item_in_list_predicate(
    schema: &Schema,
    binding: &str,
    item_column: &str,
    items: &[i64],
) -> ExecResult<BoundExpr> {
    let expr = Expr::InList {
        expr: Box::new(Expr::qcol(binding, item_column)),
        list: items.iter().map(|&v| Expr::int(v)).collect(),
        negated: false,
    };
    bind(&expr, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::plan::build_logical;
    use crate::provider::SingleRecommender;
    use crate::rec_index::RecScoreIndex;
    use recdb_algo::{Algorithm, Rating, RatingsMatrix, RecModel};
    use recdb_sql::parse;
    use recdb_storage::{DataType, Tuple, Value};

    /// Figure 1's world: ratings + movies tables, an ItemCosCF recommender.
    fn setup() -> (Catalog, SingleRecommender) {
        let mut cat = Catalog::new();
        let ratings = cat
            .create_table(
                "ratings",
                Schema::from_pairs(&[
                    ("uid", DataType::Int),
                    ("iid", DataType::Int),
                    ("ratingval", DataType::Float),
                ]),
            )
            .unwrap();
        let data = vec![
            (1, 1, 1.5),
            (2, 2, 3.5),
            (2, 1, 4.5),
            (2, 3, 2.0),
            (3, 2, 1.0),
            (3, 1, 2.0),
            (4, 2, 1.0),
        ];
        for (u, i, r) in &data {
            ratings
                .insert(Tuple::new(vec![
                    Value::Int(*u),
                    Value::Int(*i),
                    Value::Float(*r),
                ]))
                .unwrap();
        }
        let movies = cat
            .create_table(
                "movies",
                Schema::from_pairs(&[
                    ("mid", DataType::Int),
                    ("name", DataType::Text),
                    ("genre", DataType::Text),
                ]),
            )
            .unwrap();
        for (mid, name, genre) in [
            (1, "Spartacus", "Action"),
            (2, "Inception", "Suspense"),
            (3, "The Matrix", "Sci-Fi"),
        ] {
            movies
                .insert(Tuple::new(vec![
                    Value::Int(mid),
                    Value::Text(name.into()),
                    Value::Text(genre.into()),
                ]))
                .unwrap();
        }
        let model = RecModel::train(
            Algorithm::ItemCosCF,
            RatingsMatrix::from_ratings(data.iter().map(|&(u, i, r)| Rating::new(u, i, r))),
            &Default::default(),
        );
        let provider = SingleRecommender::new("ratings", Algorithm::ItemCosCF, model);
        (cat, provider)
    }

    fn run(sql: &str, cat: &Catalog, provider: &SingleRecommender) -> ResultSet {
        let recdb_sql::Statement::Select(s) = parse(sql).unwrap() else {
            panic!()
        };
        let plan = optimize(build_logical(&s, cat).unwrap());
        let ctx = ExecContext::new(cat, provider, QueryGuard::unlimited());
        execute_plan(&plan, &ctx).unwrap()
    }

    #[test]
    fn plain_sql_end_to_end() {
        let (cat, provider) = setup();
        let r = run(
            "SELECT name FROM movies WHERE genre = 'Action'",
            &cat,
            &provider,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "name").unwrap().as_text(), Some("Spartacus"));
    }

    #[test]
    fn paper_query1_top_k_recommendation() {
        let (cat, provider) = setup();
        let r = run(
            "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10",
            &cat,
            &provider,
        );
        // User 1 rated item 1 → items 2 and 3 recommended.
        assert_eq!(r.len(), 2);
        let scores: Vec<f64> = r
            .rows()
            .iter()
            .map(|t| t.get(2).unwrap().as_f64().unwrap())
            .collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn limit_over_sort_fuses_into_bounded_topk() {
        let (cat, provider) = setup();
        // All rows, fully sorted (no LIMIT → plain SortOp)...
        let full = run(
            "SELECT uid, iid, ratingval FROM ratings ORDER BY ratingval DESC, uid, iid",
            &cat,
            &provider,
        );
        assert_eq!(full.len(), 7);
        // ...must be the exact prefix of the fused top-k plan's output.
        for k in [0usize, 1, 3, 7, 20] {
            let topk = run(
                &format!(
                    "SELECT uid, iid, ratingval FROM ratings \
                     ORDER BY ratingval DESC, uid, iid LIMIT {k}"
                ),
                &cat,
                &provider,
            );
            assert_eq!(topk.rows(), &full.rows()[..k.min(7)], "k {k}");
        }
    }

    #[test]
    fn paper_query4_join_with_genre_filter() {
        let (cat, provider) = setup();
        let r = run(
            "SELECT R.uid, M.name, R.ratingval FROM ratings AS R, movies AS M \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 4 AND M.mid = R.iid AND M.genre = 'Sci-Fi'",
            &cat,
            &provider,
        );
        // User 4 rated item 2 only; item 3 (Sci-Fi) is unseen.
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "name").unwrap().as_text(), Some("The Matrix"));
    }

    #[test]
    fn join_and_recjoin_agree() {
        // The same query with the ratings table second (so the RecJoin
        // rewrite does not fire) must produce identical rows.
        let (cat, provider) = setup();
        let via_recjoin = run(
            "SELECT M.name, R.ratingval FROM ratings AS R, movies AS M \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1 AND M.mid = R.iid ORDER BY M.name",
            &cat,
            &provider,
        );
        let via_join = run(
            "SELECT M.name, R.ratingval FROM movies AS M, ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1 AND M.mid = R.iid ORDER BY M.name",
            &cat,
            &provider,
        );
        assert_eq!(via_recjoin.rows(), via_join.rows());
        assert_eq!(via_recjoin.len(), 2);
    }

    #[test]
    fn index_recommend_serves_topk_when_complete() {
        let (cat, provider) = setup();
        // Materialize user 1's full list.
        let model = provider.model("ratings", Algorithm::ItemCosCF).unwrap();
        let mut idx = RecScoreIndex::new();
        for &item in model.matrix().item_ids() {
            if model.matrix().rating_of(1, item).is_none() {
                idx.insert(1, item, model.predict(1, item).unwrap_or(0.0));
            }
        }
        idx.mark_complete(1);
        let provider = SingleRecommender {
            index: Some(std::sync::Arc::new(idx)),
            ..provider
        };
        let with_index = run(
            "SELECT R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 2",
            &cat,
            &provider,
        );
        assert_eq!(with_index.len(), 2);
        // Index answer equals the online answer.
        let (cat2, online_provider) = setup();
        let online = run(
            "SELECT R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 2",
            &cat2,
            &online_provider,
        );
        // Scores tie at the top for this tiny dataset, so compare as
        // sets: both paths must return the same (item, score) pairs.
        let as_set = |r: &ResultSet| {
            let mut v: Vec<Tuple> = r.rows().to_vec();
            v.sort_by(|a, b| a.get(0).unwrap().total_cmp(b.get(0).unwrap()));
            v
        };
        assert_eq!(as_set(&with_index), as_set(&online));
    }

    #[test]
    fn incomplete_index_falls_back_to_online() {
        let (cat, provider) = setup();
        let mut idx = RecScoreIndex::new();
        idx.insert(1, 2, 99.0); // bogus partial entry, NOT marked complete
        let provider = SingleRecommender {
            index: Some(std::sync::Arc::new(idx)),
            ..provider
        };
        let r = run(
            "SELECT R.iid, R.ratingval FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1",
            &cat,
            &provider,
        );
        // The bogus 99.0 must NOT appear: online path was used.
        assert!(r
            .rows()
            .iter()
            .all(|t| t.get(1).unwrap().as_f64().unwrap() < 99.0));
    }

    #[test]
    fn missing_recommender_is_reported() {
        let (cat, provider) = setup();
        let recdb_sql::Statement::Select(s) = parse(
            "SELECT R.uid FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD",
        )
        .unwrap() else {
            panic!()
        };
        let plan = optimize(build_logical(&s, &cat).unwrap());
        let ctx = ExecContext::new(&cat, &provider, QueryGuard::unlimited());
        let err = execute_plan(&plan, &ctx).unwrap_err();
        assert!(matches!(err, ExecError::NoRecommender { .. }));
    }

    #[test]
    fn projection_expressions_compute() {
        let (cat, provider) = setup();
        let r = run(
            "SELECT R.iid, R.ratingval * 2 AS doubled FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1 AND R.iid = 2",
            &cat,
            &provider,
        );
        assert_eq!(r.len(), 1);
        let doubled = r.value(0, "doubled").unwrap().as_f64().unwrap();
        assert!((doubled - 3.0).abs() < 1e-9, "1.5 * 2 (Eq. 2 by hand)");
    }

    #[test]
    fn aggregate_query_end_to_end() {
        let (cat, provider) = setup();
        let r = run(
            "SELECT M.genre, COUNT(*) AS n FROM movies AS M GROUP BY M.genre \
             ORDER BY n DESC, M.genre ASC",
            &cat,
            &provider,
        );
        assert_eq!(r.len(), 3, "three genres, one movie each");
        for t in r.rows() {
            assert_eq!(t.get(1).unwrap(), &Value::Int(1));
        }
        // Aggregate over recommendation output: how many recommendations
        // per user, and their mean predicted score.
        let r = run(
            "SELECT R.uid, COUNT(*) AS n, AVG(R.ratingval) AS mean \
             FROM ratings AS R \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             GROUP BY R.uid ORDER BY R.uid",
            &cat,
            &provider,
        );
        // Users 1, 3, 4 have unseen items (user 2 rated everything).
        assert_eq!(r.len(), 3);
        let total: i64 = r
            .rows()
            .iter()
            .map(|t| t.get(1).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, 5, "5 unseen pairs overall");
    }

    #[test]
    fn index_join_chosen_and_correct() {
        let (mut cat, provider) = setup();
        // Without an index: hash join. With: index nested loop. Answers
        // must be identical and the indexed run must read fewer pages for
        // a selective probe stream.
        let sql = "SELECT R.uid, M.name, R.ratingval FROM ratings AS R, movies AS M \
                   RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                   WHERE R.uid = 4 AND M.mid = R.iid ORDER BY M.name";
        // Defeat the RecJoin rewrite so the plain Join arm is exercised:
        // put movies first (rec on the right keeps Join).
        let sql_plain = "SELECT M.name, R.ratingval FROM movies AS M, ratings AS R \
                         RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                         WHERE R.uid = 4 AND M.mid = R.iid ORDER BY M.name";
        let before = run(sql_plain, &cat, &provider);
        cat.table_mut("movies")
            .unwrap()
            .create_index("movies_mid", &["mid"])
            .unwrap();
        let after = run(sql_plain, &cat, &provider);
        assert_eq!(before.rows(), after.rows());
        let with_recjoin = run(sql, &cat, &provider);
        assert_eq!(with_recjoin.len(), after.len());
    }

    #[test]
    fn index_join_with_inner_filter_residual() {
        let (mut cat, provider) = setup();
        cat.table_mut("movies")
            .unwrap()
            .create_index("movies_mid", &["mid"])
            .unwrap();
        let users = cat
            .create_table(
                "users",
                Schema::from_pairs(&[("uid", DataType::Int), ("name", DataType::Text)]),
            )
            .unwrap();
        for (uid, name) in [(1, "Alice"), (2, "Bob"), (3, "Carol"), (4, "Eve")] {
            users
                .insert(Tuple::new(vec![Value::Int(uid), Value::Text(name.into())]))
                .unwrap();
        }
        // users × movies equi-join with a genre filter on the inner side.
        let r = run(
            "SELECT U.name, M.name FROM users AS U, movies AS M \
             WHERE U.uid = M.mid AND M.genre = 'Sci-Fi'",
            &cat,
            &provider,
        );
        // users 1..4 join movies 1..3 on uid = mid; only movie 3 is Sci-Fi.
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "M.name").unwrap().as_text(), Some("The Matrix"));
    }

    #[test]
    fn two_way_join_three_tables() {
        let (mut cat, provider) = setup();
        let users = cat
            .create_table(
                "users",
                Schema::from_pairs(&[("uid", DataType::Int), ("city", DataType::Text)]),
            )
            .unwrap();
        users
            .insert(Tuple::new(vec![
                Value::Int(1),
                Value::Text("Minneapolis".into()),
            ]))
            .unwrap();
        let r = run(
            "SELECT U.city, M.name, R.ratingval \
             FROM ratings AS R, movies AS M, users AS U \
             RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
             WHERE R.uid = 1 AND M.mid = R.iid AND U.uid = R.uid \
             AND M.genre = 'Sci-Fi'",
            &cat,
            &provider,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "city").unwrap().as_text(), Some("Minneapolis"));
        assert_eq!(r.value(0, "name").unwrap().as_text(), Some("The Matrix"));
    }
}
