//! The recommendation-aware operator family (§IV).
//!
//! * [`RecommendOp`] — Algorithms 1/2: score user/item pairs from the
//!   trained model. With uid/iid/ratingval predicates pushed into it, it is
//!   the paper's FILTERRECOMMEND: only the requested users/items are
//!   scored, so cost scales with the predicate selectivity instead of
//!   `|U| × |I|`.
//! * [`JoinRecommendOp`] — §IV-B2: streams the (already filtered) outer
//!   relation and predicts a score only for items that survive the join
//!   predicate.
//! * [`IndexRecommendOp`] — Algorithm 3: serves pre-computed scores from
//!   the [`RecScoreIndex`] in descending score order per user (Phase I
//!   user filter → Phase II rating-range tree traversal → Phase III item
//!   filter).
//!
//! All three emit `〈user, item, ratingval〉` tuples for items **unseen** by
//! the user ("each tuple represents ... item i (unseen by user uid)");
//! pairs with no model signal score 0 (Algorithm 1 line 14).

use super::PhysicalOp;
use crate::error::ExecResult;
use crate::rec_index::RecScoreIndex;
use recdb_algo::RecModel;
use recdb_guard::QueryGuard;
use recdb_storage::{Schema, Tuple, Value};
use std::collections::HashSet;
use std::collections::VecDeque;
use std::sync::Arc;

fn in_bounds(score: f64, min: Option<f64>, max: Option<f64>) -> bool {
    min.is_none_or(|m| score >= m) && max.is_none_or(|m| score <= m)
}

/// Keep only ids known to the predicate, de-duplicated preserving first
/// occurrence (an `IN (8, 8)` list must not double-count item 8).
fn dedup_known(list: Vec<i64>, known: impl Fn(&i64) -> bool) -> Vec<i64> {
    let mut seen = HashSet::with_capacity(list.len());
    list.into_iter()
        .filter(|v| known(v) && seen.insert(*v))
        .collect()
}

// -------------------------------------------------------------- Recommend

/// The RECOMMEND / FILTERRECOMMEND operator.
pub struct RecommendOp {
    model: Arc<RecModel>,
    schema: Schema,
    users: Vec<i64>,
    items: Vec<i64>,
    min_rating: Option<f64>,
    max_rating: Option<f64>,
    u_cursor: usize,
    i_cursor: usize,
    guard: QueryGuard,
    /// Whether any predicate was pushed into the operator — decides the
    /// FILTERRECOMMEND vs RECOMMEND display name. Captured at build time
    /// because `users`/`items` are normalized to concrete lists.
    filtered: bool,
}

impl RecommendOp {
    /// Build the operator. `users`/`items` of `None` mean "all users/items
    /// known to the model" (the plain RECOMMEND of Algorithm 1); lists
    /// implement the pushed-down `uPred`/`iPred` of FILTERRECOMMEND.
    ///
    /// The operator's domain is the recommender's input data: ids that
    /// never appeared in the ratings table are not part of `U × I` and
    /// produce no rows (a filter on them intersects to nothing).
    pub fn new(
        model: Arc<RecModel>,
        schema: Schema,
        users: Option<Vec<i64>>,
        items: Option<Vec<i64>>,
        min_rating: Option<f64>,
        max_rating: Option<f64>,
    ) -> Self {
        let filtered =
            users.is_some() || items.is_some() || min_rating.is_some() || max_rating.is_some();
        let users = match users {
            Some(list) => dedup_known(list, |u| model.matrix().user_idx(*u).is_some()),
            None => model.matrix().user_ids().to_vec(),
        };
        let items = match items {
            Some(list) => dedup_known(list, |i| model.matrix().item_idx(*i).is_some()),
            None => model.matrix().item_ids().to_vec(),
        };
        RecommendOp {
            model,
            schema,
            users,
            items,
            min_rating,
            max_rating,
            u_cursor: 0,
            i_cursor: 0,
            guard: QueryGuard::unlimited(),
            filtered,
        }
    }

    /// Attach a resource governor. The `U × I` scoring loop ticks every
    /// iteration — including pairs skipped as already-rated or
    /// out-of-bounds — so a runaway RECOMMEND is cancellable mid-scan.
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }
}

impl PhysicalOp for RecommendOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        loop {
            if let Err(e) = self.guard.tick() {
                return Some(Err(e.into()));
            }
            if self.u_cursor >= self.users.len() {
                return None;
            }
            if self.i_cursor >= self.items.len() {
                self.u_cursor += 1;
                self.i_cursor = 0;
                continue;
            }
            let user = self.users[self.u_cursor];
            let item = self.items[self.i_cursor];
            self.i_cursor += 1;
            // Unseen items only; rated pairs are not recommendations.
            if self.model.matrix().rating_of(user, item).is_some() {
                continue;
            }
            let score = self.model.predict(user, item).unwrap_or(0.0);
            if !in_bounds(score, self.min_rating, self.max_rating) {
                continue;
            }
            return Some(Ok(Tuple::new(vec![
                Value::Int(user),
                Value::Int(item),
                Value::Float(score),
            ])));
        }
    }

    fn name(&self) -> &'static str {
        if self.filtered {
            "FilterRecommend"
        } else {
            "Recommend"
        }
    }
}

// ---------------------------------------------------------- JoinRecommend

/// The JOINRECOMMEND operator: predicts scores only for the items flowing
/// out of the outer relation. Output tuples are `rec ++ outer`.
pub struct JoinRecommendOp<'a> {
    model: Arc<RecModel>,
    schema: Schema,
    outer: Box<dyn PhysicalOp + 'a>,
    /// Ordinal of the item-id column in the outer schema.
    outer_item_ordinal: usize,
    users: Vec<i64>,
    min_rating: Option<f64>,
    max_rating: Option<f64>,
    pending: VecDeque<Tuple>,
    guard: QueryGuard,
}

impl<'a> JoinRecommendOp<'a> {
    /// Build the operator. `rec_schema` is the recommend leaf's 3-column
    /// schema; the output schema is `rec_schema ⊕ outer.schema()`.
    pub fn new(
        model: Arc<RecModel>,
        rec_schema: Schema,
        outer: Box<dyn PhysicalOp + 'a>,
        outer_item_ordinal: usize,
        users: Option<Vec<i64>>,
        min_rating: Option<f64>,
        max_rating: Option<f64>,
    ) -> Self {
        let users = match users {
            Some(list) => dedup_known(list, |u| model.matrix().user_idx(*u).is_some()),
            None => model.matrix().user_ids().to_vec(),
        };
        let schema = rec_schema.join(outer.schema());
        JoinRecommendOp {
            model,
            schema,
            outer,
            outer_item_ordinal,
            users,
            min_rating,
            max_rating,
            pending: VecDeque::new(),
            guard: QueryGuard::unlimited(),
        }
    }

    /// Attach a resource governor (checked once per outer tuple /
    /// emitted tuple).
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }
}

impl PhysicalOp for JoinRecommendOp<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        loop {
            if let Err(e) = self.guard.tick() {
                return Some(Err(e.into()));
            }
            if let Some(t) = self.pending.pop_front() {
                return Some(Ok(t));
            }
            let outer_tuple = match self.outer.next()? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            let Some(item) = outer_tuple
                .get(self.outer_item_ordinal)
                .and_then(Value::as_int)
            else {
                continue; // NULL / non-integer join keys never match
            };
            if self.model.matrix().item_idx(item).is_none() {
                continue; // items outside the recommender's universe
            }
            for &user in &self.users {
                if self.model.matrix().rating_of(user, item).is_some() {
                    continue;
                }
                let score = self.model.predict(user, item).unwrap_or(0.0);
                if !in_bounds(score, self.min_rating, self.max_rating) {
                    continue;
                }
                let rec = Tuple::new(vec![
                    Value::Int(user),
                    Value::Int(item),
                    Value::Float(score),
                ]);
                self.pending.push_back(rec.join(&outer_tuple));
            }
        }
    }

    fn name(&self) -> &'static str {
        "JoinRecommend"
    }
}

// --------------------------------------------------------- IndexRecommend

/// The INDEXRECOMMEND operator (Algorithm 3).
pub struct IndexRecommendOp {
    index: Arc<RecScoreIndex>,
    schema: Schema,
    users: Vec<i64>,
    item_filter: Option<HashSet<i64>>,
    min_rating: Option<f64>,
    max_rating: Option<f64>,
    u_cursor: usize,
    /// Per-user buffered descending entries (Phase II output).
    buffer: VecDeque<(i64, i64, f64)>,
    guard: QueryGuard,
}

impl IndexRecommendOp {
    /// Build the operator for the given (Phase I) user list. `item_filter`
    /// is the Phase III `iPred`; the rating bounds are the Phase II
    /// `rPred`.
    pub fn new(
        index: Arc<RecScoreIndex>,
        schema: Schema,
        users: Vec<i64>,
        item_filter: Option<Vec<i64>>,
        min_rating: Option<f64>,
        max_rating: Option<f64>,
    ) -> Self {
        IndexRecommendOp {
            index,
            schema,
            users,
            item_filter: item_filter.map(|v| v.into_iter().collect()),
            min_rating,
            max_rating,
            u_cursor: 0,
            buffer: VecDeque::new(),
            guard: QueryGuard::unlimited(),
        }
    }

    /// Attach a resource governor (checked once per emitted tuple /
    /// per-user index traversal).
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }
}

impl PhysicalOp for IndexRecommendOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        loop {
            if let Err(e) = self.guard.tick() {
                return Some(Err(e.into()));
            }
            if let Some((user, item, score)) = self.buffer.pop_front() {
                return Some(Ok(Tuple::new(vec![
                    Value::Int(user),
                    Value::Int(item),
                    Value::Float(score),
                ])));
            }
            if self.u_cursor >= self.users.len() {
                return None;
            }
            let user = self.users[self.u_cursor];
            self.u_cursor += 1;
            // Phase II: rating-range tree traversal, descending.
            for (item, score) in self.index.iter_desc(user, self.min_rating, self.max_rating) {
                // Phase III: item-id filtering.
                if self
                    .item_filter
                    .as_ref()
                    .is_none_or(|set| set.contains(&item))
                {
                    self.buffer.push_back((user, item, score));
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "IndexRecommend"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{drain, ValuesOp};
    use recdb_algo::{Algorithm, Rating, RatingsMatrix};
    use recdb_storage::{Column, DataType};

    fn rec_schema() -> Schema {
        Schema::new(vec![
            Column::qualified("R", "uid", DataType::Int),
            Column::qualified("R", "iid", DataType::Int),
            Column::qualified("R", "ratingval", DataType::Float),
        ])
    }

    /// Figure 1 data: users 1–4, items 1–3.
    fn model() -> Arc<RecModel> {
        Arc::new(RecModel::train(
            Algorithm::ItemCosCF,
            RatingsMatrix::from_ratings(vec![
                Rating::new(1, 1, 1.5),
                Rating::new(2, 2, 3.5),
                Rating::new(2, 1, 4.5),
                Rating::new(2, 3, 2.0),
                Rating::new(3, 2, 1.0),
                Rating::new(3, 1, 2.0),
                Rating::new(4, 2, 1.0),
            ]),
            &Default::default(),
        ))
    }

    #[test]
    fn full_recommend_covers_all_unseen_pairs() {
        let mut op = RecommendOp::new(model(), rec_schema(), None, None, None, None);
        let got = drain(&mut op).unwrap();
        // 4 users × 3 items = 12 pairs, 7 rated → 5 unseen.
        assert_eq!(got.len(), 5);
        for t in &got {
            let u = t.get(0).unwrap().as_int().unwrap();
            let i = t.get(1).unwrap().as_int().unwrap();
            assert!(
                model().matrix().rating_of(u, i).is_none(),
                "({u},{i}) rated"
            );
        }
    }

    #[test]
    fn filter_recommend_scopes_to_user() {
        let mut op = RecommendOp::new(model(), rec_schema(), Some(vec![1]), None, None, None);
        let got = drain(&mut op).unwrap();
        // User 1 rated item 1 only → items 2, 3 unseen.
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|t| t.get(0).unwrap() == &Value::Int(1)));
    }

    #[test]
    fn filter_recommend_scopes_to_items() {
        let mut op = RecommendOp::new(
            model(),
            rec_schema(),
            Some(vec![1]),
            Some(vec![2]),
            None,
            None,
        );
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get(1).unwrap(), &Value::Int(2));
        // Predicted value matches the model's Eq. 2 output.
        let expected = model().predict(1, 2).unwrap();
        assert_eq!(got[0].get(2).unwrap().as_f64().unwrap(), expected);
    }

    #[test]
    fn rating_bounds_prune_output() {
        let mut op = RecommendOp::new(model(), rec_schema(), None, None, Some(0.5), None);
        let got = drain(&mut op).unwrap();
        assert!(got
            .iter()
            .all(|t| t.get(2).unwrap().as_f64().unwrap() >= 0.5));
        let mut unbounded = RecommendOp::new(model(), rec_schema(), None, None, None, None);
        assert!(drain(&mut unbounded).unwrap().len() >= got.len());
    }

    #[test]
    fn unknown_ids_are_outside_the_domain() {
        // Users/items that never appear in the ratings table are not part
        // of the recommender's U × I and yield no rows.
        let mut op = RecommendOp::new(model(), rec_schema(), Some(vec![99]), None, None, None);
        assert!(drain(&mut op).unwrap().is_empty());
        let mut op = RecommendOp::new(
            model(),
            rec_schema(),
            Some(vec![1]),
            Some(vec![2, 44, 45]),
            None,
            None,
        );
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 1, "only the known item 2 survives");
    }

    #[test]
    fn duplicate_filter_ids_do_not_duplicate_output() {
        let mut op = RecommendOp::new(
            model(),
            rec_schema(),
            Some(vec![1, 1]),
            Some(vec![2, 2, 2]),
            None,
            None,
        );
        assert_eq!(drain(&mut op).unwrap().len(), 1);
    }

    #[test]
    fn join_recommend_scores_only_outer_items() {
        let outer_schema = Schema::new(vec![
            Column::qualified("M", "mid", DataType::Int),
            Column::qualified("M", "name", DataType::Text),
        ]);
        let outer = Box::new(ValuesOp::new(
            outer_schema,
            vec![
                Tuple::new(vec![Value::Int(2), Value::Text("Inception".into())]),
                Tuple::new(vec![Value::Int(3), Value::Text("The Matrix".into())]),
                Tuple::new(vec![Value::Null, Value::Text("ghost".into())]),
            ],
        ));
        let mut op =
            JoinRecommendOp::new(model(), rec_schema(), outer, 0, Some(vec![1]), None, None);
        let got = drain(&mut op).unwrap();
        // User 1: items 2 and 3 are unseen → two joined tuples.
        assert_eq!(got.len(), 2);
        for t in &got {
            assert_eq!(t.arity(), 5);
            assert_eq!(t.get(1), t.get(3), "item id equals outer mid");
        }
        assert_eq!(got[0].get(4).unwrap().as_text(), Some("Inception"));
    }

    #[test]
    fn join_recommend_skips_rated_pairs() {
        let outer_schema = Schema::new(vec![Column::qualified("M", "mid", DataType::Int)]);
        let outer = Box::new(ValuesOp::new(
            outer_schema,
            vec![Tuple::new(vec![Value::Int(1)])], // user 1 already rated item 1
        ));
        let mut op =
            JoinRecommendOp::new(model(), rec_schema(), outer, 0, Some(vec![1]), None, None);
        assert!(drain(&mut op).unwrap().is_empty());
    }

    fn sample_index() -> Arc<RecScoreIndex> {
        let mut idx = RecScoreIndex::new();
        idx.insert(1, 10, 4.5);
        idx.insert(1, 11, 2.0);
        idx.insert(1, 12, 5.0);
        idx.insert(2, 10, 3.0);
        idx.mark_complete(1);
        idx.mark_complete(2);
        Arc::new(idx)
    }

    #[test]
    fn index_recommend_emits_descending() {
        let mut op = IndexRecommendOp::new(sample_index(), rec_schema(), vec![1], None, None, None);
        let got = drain(&mut op).unwrap();
        let items: Vec<i64> = got
            .iter()
            .map(|t| t.get(1).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(items, vec![12, 10, 11]);
        let scores: Vec<f64> = got
            .iter()
            .map(|t| t.get(2).unwrap().as_f64().unwrap())
            .collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn index_recommend_three_phase_filtering() {
        // Phase I: users [1, 2]; Phase II: rating ≥ 3; Phase III: items {10, 12}.
        let mut op = IndexRecommendOp::new(
            sample_index(),
            rec_schema(),
            vec![1, 2],
            Some(vec![10, 12]),
            Some(3.0),
            None,
        );
        let got = drain(&mut op).unwrap();
        let triples: Vec<(i64, i64, f64)> = got
            .iter()
            .map(|t| {
                (
                    t.get(0).unwrap().as_int().unwrap(),
                    t.get(1).unwrap().as_int().unwrap(),
                    t.get(2).unwrap().as_f64().unwrap(),
                )
            })
            .collect();
        assert_eq!(triples, vec![(1, 12, 5.0), (1, 10, 4.5), (2, 10, 3.0)]);
    }

    #[test]
    fn index_recommend_unknown_user_is_empty() {
        let mut op =
            IndexRecommendOp::new(sample_index(), rec_schema(), vec![42], None, None, None);
        assert!(drain(&mut op).unwrap().is_empty());
    }

    #[test]
    fn filter_recommend_does_less_prediction_work_than_full() {
        // Cost-shape assertion: the filtered operator emits (and therefore
        // scored) a small fraction of what the full operator does.
        let full = drain(&mut RecommendOp::new(
            model(),
            rec_schema(),
            None,
            None,
            None,
            None,
        ))
        .unwrap()
        .len();
        let filtered = drain(&mut RecommendOp::new(
            model(),
            rec_schema(),
            Some(vec![1]),
            Some(vec![2]),
            None,
            None,
        ))
        .unwrap()
        .len();
        assert!(filtered * 2 <= full, "filtered {filtered} vs full {full}");
    }
}
