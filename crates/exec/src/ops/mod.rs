//! Volcano-style physical operators.
//!
//! Every operator implements [`PhysicalOp`]: `next()` produces one tuple at
//! a time, so recommendation operators are non-blocking ("pipeline-able")
//! exactly as §IV-B requires — downstream operators receive scored tuples
//! before the recommender has finished all its predictions.

pub mod aggregate;
pub mod index_join;
pub mod join;
pub mod recommend;

use crate::error::ExecResult;
use crate::expr::BoundExpr;
use recdb_guard::QueryGuard;
use recdb_obs::{Clock, Counter, OpStats};
use recdb_storage::{HeapTable, Rid, Schema, Tuple, Value};
use std::sync::Arc;

pub use aggregate::{AggFunc, AggOutput, HashAggregateOp};
pub use index_join::IndexJoinOp;
pub use join::JoinOp;
pub use recommend::{IndexRecommendOp, JoinRecommendOp, RecommendOp};

/// A pull-based physical operator.
pub trait PhysicalOp {
    /// The operator's output schema.
    fn schema(&self) -> &Schema;
    /// Produce the next tuple, `None` at end of stream.
    fn next(&mut self) -> Option<ExecResult<Tuple>>;
    /// The physical operator name as shown by `EXPLAIN ANALYZE` (e.g.
    /// `"HashJoin"`). Access-path variants report what actually ran, which
    /// is the point of ANALYZE over plain EXPLAIN.
    fn name(&self) -> &'static str;
    /// Peak bytes this operator buffered (0 for streaming operators;
    /// materializing operators like [`SortOp`] report their high-water
    /// mark).
    fn buffered_bytes(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------- Metered

/// Profiling decorator: wraps any operator and records per-call actuals
/// into a shared [`OpStats`] — rows out, `next()` calls, cumulative time
/// (children included, since the child's `next()` runs inside ours), and
/// the inner operator's buffered high-water mark.
pub struct MeteredOp<'a> {
    inner: Box<dyn PhysicalOp + 'a>,
    stats: Arc<OpStats>,
    clock: Arc<dyn Clock>,
}

impl<'a> MeteredOp<'a> {
    /// Wrap `inner`, recording into `stats` with time read from `clock`.
    pub fn new(
        inner: Box<dyn PhysicalOp + 'a>,
        stats: Arc<OpStats>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        MeteredOp {
            inner,
            stats,
            clock,
        }
    }
}

impl PhysicalOp for MeteredOp<'_> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        self.stats.record_call();
        let start = self.clock.now_micros();
        let out = self.inner.next();
        self.stats
            .record_elapsed_micros(self.clock.now_micros().saturating_sub(start));
        self.stats
            .record_buffered_bytes(self.inner.buffered_bytes());
        if matches!(out, Some(Ok(_))) {
            self.stats.record_row();
        }
        out
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn buffered_bytes(&self) -> u64 {
        self.inner.buffered_bytes()
    }
}

/// Drain an operator into a vector, stopping at the first error.
pub fn drain(op: &mut dyn PhysicalOp) -> ExecResult<Vec<Tuple>> {
    let mut rows = Vec::new();
    while let Some(t) = op.next() {
        rows.push(t?);
    }
    Ok(rows)
}

// ------------------------------------------------------------------- Scan

/// Sequential heap scan, page at a time (charges one page read per block).
pub struct ScanOp<'a> {
    heap: &'a HeapTable,
    schema: Schema,
    page: u32,
    buffer: std::vec::IntoIter<(Rid, Tuple)>,
    guard: QueryGuard,
    rows_scanned: Option<Arc<Counter>>,
}

impl<'a> ScanOp<'a> {
    /// Scan `heap`, emitting tuples under `schema` (the table schema
    /// qualified by the query binding).
    pub fn new(heap: &'a HeapTable, schema: Schema) -> Self {
        ScanOp {
            heap,
            schema,
            page: 0,
            buffer: Vec::new().into_iter(),
            guard: QueryGuard::unlimited(),
            rows_scanned: None,
        }
    }

    /// Attach a resource governor (checked once per emitted tuple).
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }

    /// Attach an engine-wide rows-scanned counter, bumped once per tuple
    /// the scan emits.
    pub fn with_rows_counter(mut self, counter: Arc<Counter>) -> Self {
        self.rows_scanned = Some(counter);
        self
    }
}

impl PhysicalOp for ScanOp<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        if let Err(e) = self.guard.tick() {
            return Some(Err(e.into()));
        }
        loop {
            if let Some((_, tuple)) = self.buffer.next() {
                if let Some(c) = &self.rows_scanned {
                    c.inc();
                }
                return Some(Ok(tuple));
            }
            let tuples = self.heap.read_page(self.page)?;
            self.page += 1;
            self.buffer = tuples.into_iter();
        }
    }

    fn name(&self) -> &'static str {
        "SeqScan"
    }
}

// ----------------------------------------------------------------- Filter

/// σ — emit tuples whose predicate evaluates to TRUE.
pub struct FilterOp<'a> {
    input: Box<dyn PhysicalOp + 'a>,
    predicate: BoundExpr,
    guard: QueryGuard,
}

impl<'a> FilterOp<'a> {
    /// Wrap `input` with a bound predicate.
    pub fn new(input: Box<dyn PhysicalOp + 'a>, predicate: BoundExpr) -> Self {
        FilterOp {
            input,
            predicate,
            guard: QueryGuard::unlimited(),
        }
    }

    /// Attach a resource governor (checked once per input tuple, so
    /// long runs of filtered-out rows stay cancellable).
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }
}

impl PhysicalOp for FilterOp<'_> {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        loop {
            if let Err(e) = self.guard.tick() {
                return Some(Err(e.into()));
            }
            let tuple = match self.input.next()? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            match self.predicate.eval_predicate(&tuple) {
                Ok(true) => return Some(Ok(tuple)),
                Ok(false) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
    }

    fn name(&self) -> &'static str {
        "Filter"
    }
}

// ---------------------------------------------------------------- Project

/// π — compute output expressions per tuple.
pub struct ProjectOp<'a> {
    input: Box<dyn PhysicalOp + 'a>,
    exprs: Vec<BoundExpr>,
    schema: Schema,
    guard: QueryGuard,
}

impl<'a> ProjectOp<'a> {
    /// Wrap `input`; `exprs` are bound against the input schema, `schema`
    /// is the output schema.
    pub fn new(input: Box<dyn PhysicalOp + 'a>, exprs: Vec<BoundExpr>, schema: Schema) -> Self {
        ProjectOp {
            input,
            exprs,
            schema,
            guard: QueryGuard::unlimited(),
        }
    }

    /// Attach a resource governor (checked once per emitted tuple).
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }
}

impl PhysicalOp for ProjectOp<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        if let Err(e) = self.guard.tick() {
            return Some(Err(e.into()));
        }
        let tuple = match self.input.next()? {
            Ok(t) => t,
            Err(e) => return Some(Err(e)),
        };
        let mut out = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            match e.eval(&tuple) {
                Ok(v) => out.push(v),
                Err(e) => return Some(Err(e)),
            }
        }
        Some(Ok(Tuple::new(out)))
    }

    fn name(&self) -> &'static str {
        "Project"
    }
}

// ------------------------------------------------------------------- Sort

/// Blocking sort. Materializes its input on first `next()`.
///
/// With [`SortOp::with_limit`] the operator becomes a bounded top-k: only
/// the best `k` rows are kept during materialization (`O(n log k)` heap
/// selection instead of an `O(n log n)` full sort). Selection is stable —
/// rows that tie on every key keep input order — so the output is exactly
/// the full sort truncated to `k`; the planner uses this to fuse
/// `LIMIT k` over `ORDER BY` (the `RECOMMEND … LIMIT k` fast path).
pub struct SortOp<'a> {
    input: Box<dyn PhysicalOp + 'a>,
    /// `(key expression, descending?)` in priority order.
    keys: Vec<(BoundExpr, bool)>,
    /// Keep only the best `k` rows (fused `LIMIT`).
    limit: Option<usize>,
    sorted: Option<std::vec::IntoIter<Tuple>>,
    error: Option<crate::error::ExecError>,
    guard: QueryGuard,
    /// Encoded bytes buffered during materialization (profiling actual;
    /// mirrors what `charge_mem` accounted against the governor).
    buffered_bytes: u64,
}

impl<'a> SortOp<'a> {
    /// Wrap `input` with bound sort keys.
    pub fn new(input: Box<dyn PhysicalOp + 'a>, keys: Vec<(BoundExpr, bool)>) -> Self {
        SortOp {
            input,
            keys,
            limit: None,
            sorted: None,
            error: None,
            guard: QueryGuard::unlimited(),
            buffered_bytes: 0,
        }
    }

    /// A sort that only ever emits the best `limit` rows, selected with a
    /// bounded heap.
    pub fn with_limit(
        input: Box<dyn PhysicalOp + 'a>,
        keys: Vec<(BoundExpr, bool)>,
        limit: usize,
    ) -> Self {
        SortOp {
            input,
            keys,
            limit: Some(limit),
            sorted: None,
            error: None,
            guard: QueryGuard::unlimited(),
            buffered_bytes: 0,
        }
    }

    /// Attach a resource governor. The blocking materialize drain ticks
    /// per buffered row and charges each row's encoded size against the
    /// memory budget, so a runaway sort is stopped while buffering, not
    /// after.
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }

    fn materialize(&mut self) {
        if let Err(e) = recdb_fault::fail_point("exec::sort_materialize") {
            self.error = Some(e.into());
            return;
        }
        let mut rows: Vec<(Vec<Value>, Tuple)> = Vec::new();
        while let Some(t) = self.input.next() {
            let tuple = match t {
                Ok(t) => t,
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            };
            let encoded_size = tuple.encoded_size() as u64;
            self.buffered_bytes += encoded_size;
            let governed = self
                .guard
                .tick()
                .and_then(|()| self.guard.charge_mem(encoded_size));
            if let Err(e) = governed {
                self.error = Some(e.into());
                return;
            }
            let mut key = Vec::with_capacity(self.keys.len());
            for (expr, _) in &self.keys {
                match expr.eval(&tuple) {
                    Ok(v) => key.push(v),
                    Err(e) => {
                        self.error = Some(e);
                        return;
                    }
                }
            }
            rows.push((key, tuple));
        }
        let keys = &self.keys;
        let cmp = |a: &(Vec<Value>, Tuple), b: &(Vec<Value>, Tuple)| {
            for (i, (_, desc)) in keys.iter().enumerate() {
                let ord = a.0[i].total_cmp(&b.0[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        };
        match self.limit {
            // Bounded top-k: stable heap selection, identical output to
            // the stable full sort below truncated to `k`.
            Some(k) => rows = recdb_algo::top_k_by(rows, k, cmp),
            None => rows.sort_by(cmp),
        }
        self.sorted = Some(
            rows.into_iter()
                .map(|(_, t)| t)
                .collect::<Vec<_>>()
                .into_iter(),
        );
    }
}

impl PhysicalOp for SortOp<'_> {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        if self.sorted.is_none() && self.error.is_none() {
            self.materialize();
        }
        if let Some(e) = self.error.take() {
            return Some(Err(e));
        }
        self.sorted.as_mut()?.next().map(Ok)
    }

    fn name(&self) -> &'static str {
        if self.limit.is_some() {
            "TopKSort"
        } else {
            "Sort"
        }
    }

    fn buffered_bytes(&self) -> u64 {
        self.buffered_bytes
    }
}

// ------------------------------------------------------------------ Limit

/// Emit at most `limit` tuples.
pub struct LimitOp<'a> {
    input: Box<dyn PhysicalOp + 'a>,
    remaining: u64,
    guard: QueryGuard,
}

impl<'a> LimitOp<'a> {
    /// Wrap `input` with a row budget.
    pub fn new(input: Box<dyn PhysicalOp + 'a>, limit: u64) -> Self {
        LimitOp {
            input,
            remaining: limit,
            guard: QueryGuard::unlimited(),
        }
    }

    /// Attach a resource governor (pass-through check per call; the
    /// wrapped input does its own row accounting).
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }
}

impl PhysicalOp for LimitOp<'_> {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        if self.remaining == 0 {
            return None;
        }
        if let Err(e) = self.guard.check() {
            return Some(Err(e.into()));
        }
        let t = self.input.next()?;
        if t.is_ok() {
            self.remaining -= 1;
        }
        Some(t)
    }

    fn name(&self) -> &'static str {
        "Limit"
    }
}

// A values operator used by tests and INSERT ... SELECT style plumbing.

/// Emit a fixed list of tuples (test/bench helper).
pub struct ValuesOp {
    schema: Schema,
    rows: std::vec::IntoIter<Tuple>,
    guard: QueryGuard,
}

impl ValuesOp {
    /// Build from a schema and rows.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        ValuesOp {
            schema,
            rows: rows.into_iter(),
            guard: QueryGuard::unlimited(),
        }
    }

    /// Attach a resource governor (checked once per emitted tuple).
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }
}

impl PhysicalOp for ValuesOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        if let Err(e) = self.guard.tick() {
            return Some(Err(e.into()));
        }
        self.rows.next().map(Ok)
    }

    fn name(&self) -> &'static str {
        "Values"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::bind;
    use recdb_sql::parse;
    use recdb_storage::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::qualified("R", "uid", DataType::Int),
            Column::qualified("R", "ratingval", DataType::Float),
        ])
    }

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::Float(((i * 7) % 10) as f64 / 2.0),
                ])
            })
            .collect()
    }

    fn values(n: i64) -> Box<dyn PhysicalOp> {
        Box::new(ValuesOp::new(schema(), rows(n)))
    }

    fn predicate(src: &str) -> BoundExpr {
        let recdb_sql::Statement::Select(s) =
            parse(&format!("SELECT * FROM t WHERE {src}")).unwrap()
        else {
            panic!()
        };
        bind(&s.filter.unwrap(), &schema()).unwrap()
    }

    #[test]
    fn scan_reads_all_pages() {
        let mut heap = HeapTable::new(schema());
        for t in rows(2000) {
            heap.insert(t).unwrap();
        }
        let mut op = ScanOp::new(&heap, schema());
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 2000);
        assert_eq!(got[0].get(0).unwrap(), &Value::Int(0));
    }

    #[test]
    fn filter_keeps_matching() {
        let mut op = FilterOp::new(values(10), predicate("uid < 3"));
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn project_computes_expressions() {
        let recdb_sql::Statement::Select(s) = parse("SELECT uid * 2 AS d FROM t").unwrap() else {
            panic!()
        };
        let recdb_sql::SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        let bound = bind(expr, &schema()).unwrap();
        let out_schema = Schema::from_pairs(&[("d", DataType::Int)]);
        let mut op = ProjectOp::new(values(3), vec![bound], out_schema);
        let got = drain(&mut op).unwrap();
        assert_eq!(got[2].get(0).unwrap(), &Value::Int(4));
    }

    #[test]
    fn sort_orders_desc_then_asc() {
        let keys = vec![
            (predicate_expr("ratingval"), true),
            (predicate_expr("uid"), false),
        ];
        let mut op = SortOp::new(values(10), keys);
        let got = drain(&mut op).unwrap();
        let vals: Vec<f64> = got
            .iter()
            .map(|t| t.get(1).unwrap().as_f64().unwrap())
            .collect();
        assert!(vals.windows(2).all(|w| w[0] >= w[1]), "{vals:?}");
        // Ties broken by ascending uid.
        for w in got.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.get(1) == b.get(1) {
                assert!(a.get(0).unwrap() < b.get(0).unwrap());
            }
        }
    }

    fn predicate_expr(col: &str) -> BoundExpr {
        bind(&recdb_sql::Expr::col(col), &schema()).unwrap()
    }

    #[test]
    fn bounded_topk_matches_full_sort_truncated() {
        // ratingval has duplicates ((i*7)%10)/2 cycles every 10 rows, so
        // stability under ties is exercised.
        let keys = || {
            vec![
                (predicate_expr("ratingval"), true),
                (predicate_expr("uid"), false),
            ]
        };
        for n in [0i64, 1, 5, 37] {
            for k in [0usize, 1, 3, 10, 50] {
                let mut full = SortOp::new(values(n), keys());
                let mut want = drain(&mut full).unwrap();
                want.truncate(k);
                let mut topk = SortOp::with_limit(values(n), keys(), k);
                let got = drain(&mut topk).unwrap();
                assert_eq!(got, want, "n {n}, k {k}");
            }
        }
    }

    #[test]
    fn bounded_topk_single_key_ties_keep_input_order() {
        // All rows tie on the (constant) key: top-k must keep the first k
        // rows in input order, like a stable sort + truncate.
        let keys = vec![(predicate_expr("ratingval"), false)];
        let schema = schema();
        let tuples: Vec<Tuple> = (0..8)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Float(1.0)]))
            .collect();
        let input = Box::new(ValuesOp::new(schema, tuples));
        let mut op = SortOp::with_limit(input, keys, 3);
        let got = drain(&mut op).unwrap();
        let ids: Vec<i64> = got
            .iter()
            .map(|t| t.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn limit_truncates() {
        let mut op = LimitOp::new(values(10), 4);
        assert_eq!(drain(&mut op).unwrap().len(), 4);
        let mut op = LimitOp::new(values(2), 100);
        assert_eq!(drain(&mut op).unwrap().len(), 2);
        let mut op = LimitOp::new(values(5), 0);
        assert_eq!(drain(&mut op).unwrap().len(), 0);
    }

    #[test]
    fn filter_propagates_eval_errors() {
        let mut op = FilterOp::new(values(3), predicate("uid / 0 = 1"));
        assert!(drain(&mut op).is_err());
    }

    #[test]
    fn sort_propagates_eval_errors() {
        let keys = vec![(predicate("uid / 0 = 1"), false)];
        let mut op = SortOp::new(values(3), keys);
        assert!(drain(&mut op).is_err());
    }

    #[test]
    fn pipeline_composes() {
        // values → filter → sort → limit
        let filtered = Box::new(FilterOp::new(values(100), predicate("uid >= 10")));
        let sorted = Box::new(SortOp::new(filtered, vec![(predicate_expr("uid"), true)]));
        let mut limited = LimitOp::new(sorted, 3);
        let got = drain(&mut limited).unwrap();
        let uids: Vec<i64> = got
            .iter()
            .map(|t| t.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(uids, vec![99, 98, 97]);
    }
}
