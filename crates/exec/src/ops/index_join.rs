//! Index nested-loop join: probe a base-table B-tree index with each
//! outer tuple instead of materializing and hashing the whole inner table.
//!
//! Chosen by the physical planner when the inner side of an equi-join is a
//! base table (optionally with a filter) that has a secondary index whose
//! leading key column is the join column. For selective outer inputs this
//! touches `O(probes · log n)` pages instead of the full inner relation —
//! the access-path trade-off visible in the shared [`recdb_storage::IoStats`]
//! counters.

use super::PhysicalOp;
use crate::error::ExecResult;
use crate::expr::BoundExpr;
use recdb_guard::QueryGuard;
use recdb_storage::{BTreeIndex, Schema, Table, Tuple, Value};
use std::collections::VecDeque;

/// An index nested-loop join. Output tuples are `outer ++ inner`.
pub struct IndexJoinOp<'a> {
    outer: Box<dyn PhysicalOp + 'a>,
    inner_table: &'a Table,
    index: &'a BTreeIndex,
    schema: Schema,
    /// Ordinal of the probe column in the outer schema.
    outer_ordinal: usize,
    /// Residual predicate over the joined schema (covers any filter on the
    /// inner side plus non-equi join conjuncts).
    residual: Option<BoundExpr>,
    pending: VecDeque<Tuple>,
    guard: QueryGuard,
}

impl<'a> IndexJoinOp<'a> {
    /// Build the operator. `inner_schema` is the inner table's schema
    /// qualified by its query binding.
    pub fn new(
        outer: Box<dyn PhysicalOp + 'a>,
        inner_table: &'a Table,
        index: &'a BTreeIndex,
        inner_schema: &Schema,
        outer_ordinal: usize,
        residual: Option<BoundExpr>,
    ) -> Self {
        let schema = outer.schema().join(inner_schema);
        IndexJoinOp {
            outer,
            inner_table,
            index,
            schema,
            outer_ordinal,
            residual,
            pending: VecDeque::new(),
            guard: QueryGuard::unlimited(),
        }
    }

    /// Attach a resource governor (checked once per probe).
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }
}

impl PhysicalOp for IndexJoinOp<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        loop {
            if let Err(e) = self.guard.tick() {
                return Some(Err(e.into()));
            }
            if let Some(t) = self.pending.pop_front() {
                return Some(Ok(t));
            }
            let outer_tuple = match self.outer.next()? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            let key = outer_tuple
                .get(self.outer_ordinal)
                .cloned()
                .unwrap_or(Value::Null);
            if key.is_null() {
                continue; // SQL equality: NULL joins nothing
            }
            for rid in self.index.lookup(&vec![key]) {
                let inner_tuple = match self.inner_table.get(rid) {
                    Ok(t) => t,
                    Err(e) => return Some(Err(e.into())),
                };
                let joined = outer_tuple.join(&inner_tuple);
                match &self.residual {
                    None => self.pending.push_back(joined),
                    Some(p) => match p.eval_predicate(&joined) {
                        Ok(true) => self.pending.push_back(joined),
                        Ok(false) => {}
                        Err(e) => return Some(Err(e)),
                    },
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "IndexJoin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::bind;
    use crate::ops::{drain, ValuesOp};
    use recdb_sql::parse;
    use recdb_storage::{Catalog, Column, DataType};

    fn outer_schema() -> Schema {
        Schema::new(vec![
            Column::qualified("R", "uid", DataType::Int),
            Column::qualified("R", "iid", DataType::Int),
        ])
    }

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let movies = cat
            .create_table(
                "movies",
                Schema::from_pairs(&[
                    ("mid", DataType::Int),
                    ("name", DataType::Text),
                    ("genre", DataType::Text),
                ]),
            )
            .unwrap();
        for (mid, name, genre) in [
            (10, "Spartacus", "Action"),
            (11, "Inception", "Suspense"),
            (12, "The Matrix", "Sci-Fi"),
            (10, "Spartacus (1960)", "Action"), // duplicate key
        ] {
            movies
                .insert(Tuple::new(vec![
                    Value::Int(mid),
                    Value::Text(name.into()),
                    Value::Text(genre.into()),
                ]))
                .unwrap();
        }
        movies.create_index("movies_mid", &["mid"]).unwrap();
        cat
    }

    fn outer_rows() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![Value::Int(1), Value::Int(10)]),
            Tuple::new(vec![Value::Int(1), Value::Int(12)]),
            Tuple::new(vec![Value::Int(2), Value::Null]),
            Tuple::new(vec![Value::Int(2), Value::Int(99)]),
        ]
    }

    #[test]
    fn probes_match_hash_join_semantics() {
        let cat = catalog();
        let table = cat.table("movies").unwrap();
        let index = table.index("movies_mid").unwrap();
        let inner_schema = table.schema().with_qualifier("M");
        let outer = Box::new(ValuesOp::new(outer_schema(), outer_rows()));
        let mut op = IndexJoinOp::new(outer, table, index, &inner_schema, 1, None);
        let got = drain(&mut op).unwrap();
        // iid 10 matches two movies, iid 12 one, NULL and 99 none.
        assert_eq!(got.len(), 3);
        for t in &got {
            assert_eq!(t.get(1), t.get(2), "join key equality");
            assert_eq!(t.arity(), 5);
        }
    }

    #[test]
    fn residual_filters_joined_rows() {
        let cat = catalog();
        let table = cat.table("movies").unwrap();
        let index = table.index("movies_mid").unwrap();
        let inner_schema = table.schema().with_qualifier("M");
        let joined = outer_schema().join(&inner_schema);
        let recdb_sql::Statement::Select(s) =
            parse("SELECT * FROM t WHERE M.genre = 'Action'").unwrap()
        else {
            panic!()
        };
        let residual = bind(&s.filter.unwrap(), &joined).unwrap();
        let outer = Box::new(ValuesOp::new(outer_schema(), outer_rows()));
        let mut op = IndexJoinOp::new(outer, table, index, &inner_schema, 1, Some(residual));
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 2, "only the two Action duplicates of mid 10");
    }

    #[test]
    fn index_join_reads_fewer_pages_than_full_scan() {
        // Cost-model check: with one probe, the index path charges log-
        // height page reads plus one fetch, far less than scanning the
        // (here, single-page) table per probe would at scale. We assert
        // the counters move at all and stay below a full-scan bound.
        let cat = catalog();
        let table = cat.table("movies").unwrap();
        let index = table.index("movies_mid").unwrap();
        let inner_schema = table.schema().with_qualifier("M");
        cat.stats().reset();
        let outer = Box::new(ValuesOp::new(
            outer_schema(),
            vec![Tuple::new(vec![Value::Int(1), Value::Int(12)])],
        ));
        let mut op = IndexJoinOp::new(outer, table, index, &inner_schema, 1, None);
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 1);
        let reads = cat.stats().page_reads();
        assert!(reads >= 1, "index descent + fetch must be charged");
        assert!(
            reads <= 4,
            "one probe must not scan the table ({reads} reads)"
        );
        assert_eq!(cat.stats().tuple_reads(), 1, "exactly one tuple fetched");
    }
}
