//! Inner join: hash join on one extracted equi-condition, falling back to
//! block nested loop when no equality is available.

use super::PhysicalOp;
use crate::error::ExecResult;
use crate::expr::BoundExpr;
use recdb_guard::QueryGuard;
use recdb_storage::{Schema, Tuple, Value};
use std::collections::HashMap;

/// An inner join operator. The right input is materialized at open time
/// (build side); the left input streams (probe side).
pub struct JoinOp<'a> {
    left: Box<dyn PhysicalOp + 'a>,
    schema: Schema,
    /// `(left ordinal, right ordinal)` for the hash path.
    equi: Option<(usize, usize)>,
    /// Residual predicate bound against the joined schema.
    residual: Option<BoundExpr>,
    right_rows: Vec<Tuple>,
    /// Hash table over the build side (populated when `equi` is set):
    /// key value → row indexes in `right_rows`.
    hash: HashMap<Value, Vec<usize>>,
    built: bool,
    current_left: Option<Tuple>,
    /// Pending matches for the current probe tuple (indexes into
    /// `right_rows`), consumed in order.
    match_queue: std::vec::IntoIter<usize>,
    right_source: Option<Box<dyn PhysicalOp + 'a>>,
    guard: QueryGuard,
}

impl<'a> JoinOp<'a> {
    /// Construct a join. `equi` is a pair of ordinals (left-side ordinal in
    /// the left schema, right-side ordinal in the right schema) for a hash
    /// join; `residual` is any remaining predicate over the joined schema.
    pub fn new(
        left: Box<dyn PhysicalOp + 'a>,
        right: Box<dyn PhysicalOp + 'a>,
        equi: Option<(usize, usize)>,
        residual: Option<BoundExpr>,
    ) -> Self {
        let schema = left.schema().join(right.schema());
        JoinOp {
            left,
            schema,
            equi,
            residual,
            right_rows: Vec::new(),
            hash: HashMap::new(),
            built: false,
            current_left: None,
            match_queue: Vec::new().into_iter(),
            right_source: Some(right),
            guard: QueryGuard::unlimited(),
        }
    }

    /// Attach a resource governor: the build-side drain ticks per row
    /// and charges each buffered row's encoded size against the memory
    /// budget; the probe loop ticks per probe tuple.
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }

    fn build(&mut self) -> ExecResult<()> {
        let mut right = self.right_source.take().expect("build runs once");
        while let Some(t) = right.next() {
            let tuple = t?;
            self.guard.tick()?;
            self.guard.charge_mem(tuple.encoded_size() as u64)?;
            if let Some((_, r_ord)) = self.equi {
                let key = tuple.get(r_ord).cloned().unwrap_or(Value::Null);
                // NULL keys never match in SQL equality; skip them.
                if !key.is_null() {
                    self.hash
                        .entry(key)
                        .or_default()
                        .push(self.right_rows.len());
                }
            }
            self.right_rows.push(tuple);
        }
        self.built = true;
        Ok(())
    }

    fn matches_for(&self, left: &Tuple) -> Vec<usize> {
        match self.equi {
            Some((l_ord, _)) => {
                let key = left.get(l_ord).cloned().unwrap_or(Value::Null);
                if key.is_null() {
                    return Vec::new();
                }
                self.hash.get(&key).cloned().unwrap_or_default()
            }
            None => (0..self.right_rows.len()).collect(),
        }
    }
}

impl PhysicalOp for JoinOp<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        if !self.built {
            if let Err(e) = self.build() {
                return Some(Err(e));
            }
        }
        loop {
            if let Err(e) = self.guard.tick() {
                return Some(Err(e.into()));
            }
            if let Some(left) = &self.current_left {
                for idx in self.match_queue.by_ref() {
                    let joined = left.join(&self.right_rows[idx]);
                    match &self.residual {
                        None => return Some(Ok(joined)),
                        Some(p) => match p.eval_predicate(&joined) {
                            Ok(true) => return Some(Ok(joined)),
                            Ok(false) => continue,
                            Err(e) => return Some(Err(e)),
                        },
                    }
                }
                self.current_left = None;
            }
            let left = match self.left.next()? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            self.match_queue = self.matches_for(&left).into_iter();
            self.current_left = Some(left);
        }
    }

    fn name(&self) -> &'static str {
        if self.equi.is_some() {
            "HashJoin"
        } else {
            "NestedLoopJoin"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::bind;
    use crate::ops::{drain, ValuesOp};
    use recdb_sql::parse;
    use recdb_storage::{Column, DataType};

    fn left_schema() -> Schema {
        Schema::new(vec![
            Column::qualified("R", "uid", DataType::Int),
            Column::qualified("R", "iid", DataType::Int),
        ])
    }

    fn right_schema() -> Schema {
        Schema::new(vec![
            Column::qualified("M", "mid", DataType::Int),
            Column::qualified("M", "genre", DataType::Text),
        ])
    }

    fn left_rows() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![Value::Int(1), Value::Int(10)]),
            Tuple::new(vec![Value::Int(1), Value::Int(11)]),
            Tuple::new(vec![Value::Int(2), Value::Int(10)]),
            Tuple::new(vec![Value::Int(3), Value::Null]),
        ]
    }

    fn right_rows() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![Value::Int(10), Value::Text("Action".into())]),
            Tuple::new(vec![Value::Int(11), Value::Text("Sci-Fi".into())]),
            Tuple::new(vec![Value::Int(12), Value::Text("Action".into())]),
        ]
    }

    fn make(equi: Option<(usize, usize)>, residual_sql: Option<&str>) -> JoinOp<'static> {
        let left = Box::new(ValuesOp::new(left_schema(), left_rows()));
        let right = Box::new(ValuesOp::new(right_schema(), right_rows()));
        let joined_schema = left_schema().join(&right_schema());
        let residual = residual_sql.map(|src| {
            let recdb_sql::Statement::Select(s) =
                parse(&format!("SELECT * FROM t WHERE {src}")).unwrap()
            else {
                panic!()
            };
            bind(&s.filter.unwrap(), &joined_schema).unwrap()
        });
        JoinOp::new(left, right, equi, residual)
    }

    #[test]
    fn hash_join_on_equality() {
        let mut op = make(Some((1, 0)), None); // R.iid = M.mid
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 3, "three rating rows match a movie");
        for t in &got {
            assert_eq!(t.get(1), t.get(2), "iid equals mid in every output");
            assert_eq!(t.arity(), 4);
        }
    }

    #[test]
    fn null_keys_never_match() {
        let mut op = make(Some((1, 0)), None);
        let got = drain(&mut op).unwrap();
        assert!(got.iter().all(|t| t.get(0).unwrap() != &Value::Int(3)));
    }

    #[test]
    fn residual_filters_joined_rows() {
        let mut op = make(Some((1, 0)), Some("M.genre = 'Action'"));
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 2);
        for t in &got {
            assert_eq!(t.get(3).unwrap().as_text(), Some("Action"));
        }
    }

    #[test]
    fn nested_loop_cross_product() {
        let mut op = make(None, None);
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 4 * 3);
    }

    #[test]
    fn nested_loop_with_non_equi_predicate() {
        let mut op = make(None, Some("R.iid < M.mid"));
        let got = drain(&mut op).unwrap();
        // (10 < 11), (10 < 12), (11 < 12), (10 < 11), (10 < 12) rows:
        // left (1,10): matches mid 11, 12 → 2
        // left (1,11): matches mid 12 → 1
        // left (2,10): matches mid 11, 12 → 2
        // left (3,NULL): comparison is NULL → rejected
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn empty_sides() {
        let left = Box::new(ValuesOp::new(left_schema(), Vec::new()));
        let right = Box::new(ValuesOp::new(right_schema(), right_rows()));
        let mut op = JoinOp::new(left, right, Some((1, 0)), None);
        assert!(drain(&mut op).unwrap().is_empty());

        let left = Box::new(ValuesOp::new(left_schema(), left_rows()));
        let right = Box::new(ValuesOp::new(right_schema(), Vec::new()));
        let mut op = JoinOp::new(left, right, Some((1, 0)), None);
        assert!(drain(&mut op).unwrap().is_empty());
    }

    #[test]
    fn schema_concatenates() {
        let op = make(Some((1, 0)), None);
        assert_eq!(op.schema().arity(), 4);
        assert_eq!(op.schema().resolve("M.genre").unwrap(), 3);
    }
}
