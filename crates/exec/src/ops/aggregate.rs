//! Hash aggregation (`GROUP BY` + `COUNT/SUM/AVG/MIN/MAX`).
//!
//! Not part of the RecDB paper's operator set, but recommendation
//! *analytics* — "how many ratings per genre", "average predicted score
//! per city" — need it, and the engine would not be credible as a database
//! without it. NULL handling follows SQL: aggregate arguments that
//! evaluate to NULL are skipped; `COUNT(*)` counts rows; aggregates over
//! an empty group yield NULL (except `COUNT`, which yields 0).

use super::PhysicalOp;
use crate::error::{ExecError, ExecResult};
use crate::expr::BoundExpr;
use recdb_guard::QueryGuard;
use recdb_storage::{Schema, Tuple, Value};
use std::collections::HashMap;

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggFunc {
    /// Resolve an aggregate function name, `None` for non-aggregates.
    pub fn resolve(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// The SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One output column of the aggregation.
pub enum AggOutput {
    /// A grouping key, by index into the key list.
    Group(usize),
    /// An aggregate over an optional argument (`None` = `COUNT(*)`).
    Agg(AggFunc, Option<BoundExpr>),
}

#[derive(Debug, Clone)]
enum Accum {
    Count(u64),
    Sum { sum: f64, any: bool },
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Accum {
    fn new(func: AggFunc) -> Accum {
        match func {
            AggFunc::Count => Accum::Count(0),
            AggFunc::Sum => Accum::Sum {
                sum: 0.0,
                any: false,
            },
            AggFunc::Avg => Accum::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Accum::Min(None),
            AggFunc::Max => Accum::Max(None),
        }
    }

    fn update(&mut self, value: Option<&Value>) -> ExecResult<()> {
        match self {
            Accum::Count(n) => {
                // COUNT(*) gets `None` (count the row); COUNT(expr) counts
                // non-NULL values.
                match value {
                    None => *n += 1,
                    Some(v) if !v.is_null() => *n += 1,
                    Some(_) => {}
                }
            }
            Accum::Sum { sum, any } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let x = v.as_f64().ok_or_else(|| {
                            ExecError::Type(format!("SUM over non-numeric value {v}"))
                        })?;
                        *sum += x;
                        *any = true;
                    }
                }
            }
            Accum::Avg { sum, n } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let x = v.as_f64().ok_or_else(|| {
                            ExecError::Type(format!("AVG over non-numeric value {v}"))
                        })?;
                        *sum += x;
                        *n += 1;
                    }
                }
            }
            Accum::Min(best) => {
                if let Some(v) = value {
                    if !v.is_null()
                        && best
                            .as_ref()
                            .is_none_or(|b| v.total_cmp(b) == std::cmp::Ordering::Less)
                    {
                        *best = Some(v.clone());
                    }
                }
            }
            Accum::Max(best) => {
                if let Some(v) = value {
                    if !v.is_null()
                        && best
                            .as_ref()
                            .is_none_or(|b| v.total_cmp(b) == std::cmp::Ordering::Greater)
                    {
                        *best = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Accum::Count(n) => Value::Int(n as i64),
            Accum::Sum { sum, any } => {
                if any {
                    Value::Float(sum)
                } else {
                    Value::Null
                }
            }
            Accum::Avg { sum, n } => {
                if n > 0 {
                    Value::Float(sum / n as f64)
                } else {
                    Value::Null
                }
            }
            Accum::Min(v) | Accum::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Blocking hash-aggregate operator. Groups appear in first-seen order.
pub struct HashAggregateOp<'a> {
    input: Box<dyn PhysicalOp + 'a>,
    keys: Vec<BoundExpr>,
    outputs: Vec<AggOutput>,
    schema: Schema,
    result: Option<std::vec::IntoIter<Tuple>>,
    error: Option<ExecError>,
    guard: QueryGuard,
}

impl<'a> HashAggregateOp<'a> {
    /// Build the operator. `keys` are the GROUP BY expressions bound
    /// against the input schema; `outputs` describe the emitted columns;
    /// `schema` is the output schema (one column per output, in order).
    pub fn new(
        input: Box<dyn PhysicalOp + 'a>,
        keys: Vec<BoundExpr>,
        outputs: Vec<AggOutput>,
        schema: Schema,
    ) -> Self {
        HashAggregateOp {
            input,
            keys,
            outputs,
            schema,
            result: None,
            error: None,
            guard: QueryGuard::unlimited(),
        }
    }

    /// Attach a resource governor: the blocking aggregation drain ticks
    /// per input row and charges each new group's key size against the
    /// memory budget.
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }

    fn aggregate_all(&mut self) -> ExecResult<Vec<Tuple>> {
        let agg_count = self
            .outputs
            .iter()
            .filter(|o| matches!(o, AggOutput::Agg(..)))
            .count();
        let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut states: Vec<(Vec<Value>, Vec<Accum>)> = Vec::new();
        while let Some(t) = self.input.next() {
            let tuple = t?;
            self.guard.tick()?;
            let key: Vec<Value> = self
                .keys
                .iter()
                .map(|k| k.eval(&tuple))
                .collect::<ExecResult<_>>()?;
            let slot = match groups.get(&key) {
                Some(&s) => s,
                None => {
                    // New-group state is what a hash aggregate actually
                    // retains, so only that is charged to the budget.
                    self.guard
                        .charge_mem(Tuple::new(key.clone()).encoded_size() as u64)?;
                    let accums: Vec<Accum> = self
                        .outputs
                        .iter()
                        .filter_map(|o| match o {
                            AggOutput::Agg(f, _) => Some(Accum::new(*f)),
                            AggOutput::Group(_) => None,
                        })
                        .collect();
                    states.push((key.clone(), accums));
                    groups.insert(key, states.len() - 1);
                    states.len() - 1
                }
            };
            let mut agg_idx = 0;
            for output in &self.outputs {
                if let AggOutput::Agg(_, arg) = output {
                    let value = match arg {
                        Some(e) => Some(e.eval(&tuple)?),
                        None => None,
                    };
                    states[slot].1[agg_idx].update(value.as_ref())?;
                    agg_idx += 1;
                }
            }
        }
        // Global aggregate over an empty input still yields one row.
        if states.is_empty() && self.keys.is_empty() && agg_count > 0 {
            let accums: Vec<Accum> = self
                .outputs
                .iter()
                .filter_map(|o| match o {
                    AggOutput::Agg(f, _) => Some(Accum::new(*f)),
                    AggOutput::Group(_) => None,
                })
                .collect();
            states.push((Vec::new(), accums));
        }
        let mut rows = Vec::with_capacity(states.len());
        for (key, accums) in states {
            let mut finished = accums.into_iter().map(Accum::finish);
            let values: Vec<Value> = self
                .outputs
                .iter()
                .map(|o| match o {
                    AggOutput::Group(k) => key[*k].clone(),
                    AggOutput::Agg(..) => finished.next().expect("one accum per agg"),
                })
                .collect();
            rows.push(Tuple::new(values));
        }
        Ok(rows)
    }
}

impl PhysicalOp for HashAggregateOp<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<ExecResult<Tuple>> {
        if self.result.is_none() && self.error.is_none() {
            match self.aggregate_all() {
                Ok(rows) => self.result = Some(rows.into_iter()),
                Err(e) => self.error = Some(e),
            }
        }
        if let Some(e) = self.error.take() {
            return Some(Err(e));
        }
        self.result.as_mut()?.next().map(Ok)
    }

    fn name(&self) -> &'static str {
        "HashAggregate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::bind;
    use crate::ops::{drain, ValuesOp};
    use recdb_sql::Expr;
    use recdb_storage::{Column, DataType};

    fn input_schema() -> Schema {
        Schema::new(vec![
            Column::qualified("M", "genre", DataType::Text),
            Column::qualified("M", "rating", DataType::Float),
        ])
    }

    fn rows() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![Value::Text("Action".into()), Value::Float(4.0)]),
            Tuple::new(vec![Value::Text("Drama".into()), Value::Float(2.0)]),
            Tuple::new(vec![Value::Text("Action".into()), Value::Float(5.0)]),
            Tuple::new(vec![Value::Text("Action".into()), Value::Null]),
            Tuple::new(vec![Value::Text("Drama".into()), Value::Float(3.0)]),
        ]
    }

    fn col(name: &str) -> BoundExpr {
        bind(&Expr::col(name), &input_schema()).unwrap()
    }

    fn out_schema(cols: &[(&str, DataType)]) -> Schema {
        Schema::from_pairs(cols)
    }

    #[test]
    fn group_by_with_count_sum_avg() {
        let op = HashAggregateOp::new(
            Box::new(ValuesOp::new(input_schema(), rows())),
            vec![col("genre")],
            vec![
                AggOutput::Group(0),
                AggOutput::Agg(AggFunc::Count, None),
                AggOutput::Agg(AggFunc::Count, Some(col("rating"))),
                AggOutput::Agg(AggFunc::Sum, Some(col("rating"))),
                AggOutput::Agg(AggFunc::Avg, Some(col("rating"))),
            ],
            out_schema(&[
                ("genre", DataType::Text),
                ("rows", DataType::Int),
                ("rated", DataType::Int),
                ("total", DataType::Float),
                ("mean", DataType::Float),
            ]),
        );
        let mut op = op;
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 2);
        // First-seen order: Action first.
        assert_eq!(got[0].get(0).unwrap().as_text(), Some("Action"));
        assert_eq!(
            got[0].get(1).unwrap(),
            &Value::Int(3),
            "COUNT(*) counts NULL row"
        );
        assert_eq!(
            got[0].get(2).unwrap(),
            &Value::Int(2),
            "COUNT(col) skips NULL"
        );
        assert_eq!(got[0].get(3).unwrap(), &Value::Float(9.0));
        assert_eq!(got[0].get(4).unwrap(), &Value::Float(4.5));
        assert_eq!(got[1].get(0).unwrap().as_text(), Some("Drama"));
        assert_eq!(got[1].get(4).unwrap(), &Value::Float(2.5));
    }

    #[test]
    fn min_max() {
        let mut op = HashAggregateOp::new(
            Box::new(ValuesOp::new(input_schema(), rows())),
            vec![],
            vec![
                AggOutput::Agg(AggFunc::Min, Some(col("rating"))),
                AggOutput::Agg(AggFunc::Max, Some(col("rating"))),
            ],
            out_schema(&[("lo", DataType::Float), ("hi", DataType::Float)]),
        );
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get(0).unwrap(), &Value::Float(2.0));
        assert_eq!(got[0].get(1).unwrap(), &Value::Float(5.0));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let mut op = HashAggregateOp::new(
            Box::new(ValuesOp::new(input_schema(), Vec::new())),
            vec![],
            vec![
                AggOutput::Agg(AggFunc::Count, None),
                AggOutput::Agg(AggFunc::Sum, Some(col("rating"))),
                AggOutput::Agg(AggFunc::Min, Some(col("rating"))),
            ],
            out_schema(&[
                ("n", DataType::Int),
                ("s", DataType::Float),
                ("m", DataType::Float),
            ]),
        );
        let got = drain(&mut op).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get(0).unwrap(), &Value::Int(0));
        assert_eq!(got[0].get(1).unwrap(), &Value::Null);
        assert_eq!(got[0].get(2).unwrap(), &Value::Null);
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let mut op = HashAggregateOp::new(
            Box::new(ValuesOp::new(input_schema(), Vec::new())),
            vec![col("genre")],
            vec![AggOutput::Group(0), AggOutput::Agg(AggFunc::Count, None)],
            out_schema(&[("genre", DataType::Text), ("n", DataType::Int)]),
        );
        assert!(drain(&mut op).unwrap().is_empty());
    }

    #[test]
    fn sum_over_text_is_type_error() {
        let mut op = HashAggregateOp::new(
            Box::new(ValuesOp::new(input_schema(), rows())),
            vec![],
            vec![AggOutput::Agg(AggFunc::Sum, Some(col("genre")))],
            out_schema(&[("s", DataType::Float)]),
        );
        assert!(matches!(drain(&mut op), Err(ExecError::Type(_))));
    }

    #[test]
    fn resolve_names() {
        assert_eq!(AggFunc::resolve("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::resolve("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::resolve("st_distance"), None);
        assert_eq!(AggFunc::Max.name(), "MAX");
    }
}
