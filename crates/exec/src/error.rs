//! Execution-layer errors.

use recdb_fault::FaultError;
use recdb_guard::GuardError;
use recdb_storage::StorageError;
use std::fmt;

/// Result alias for the exec crate.
pub type ExecResult<T> = Result<T, ExecError>;

/// Errors raised during planning, binding, or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// An underlying storage error.
    Storage(StorageError),
    /// A name could not be resolved or a construct is malformed.
    Bind(String),
    /// A runtime type error (e.g. `'abc' + 1`).
    Type(String),
    /// Integer or float division by zero.
    DivisionByZero,
    /// The query references a recommender that was never created for this
    /// (ratings table, algorithm) pair.
    NoRecommender {
        /// The ratings table in the FROM/RECOMMEND clause.
        table: String,
        /// The algorithm in the USING clause.
        algorithm: String,
    },
    /// An algorithm name that RecDB does not support.
    UnknownAlgorithm(String),
    /// A feature the engine does not implement.
    Unsupported(String),
    /// The query's resource governor stopped execution (cancellation,
    /// deadline, or a row/memory budget).
    Guard(GuardError),
    /// A deterministic fault-injection site fired (tests only).
    FaultInjected(FaultError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::Bind(msg) => write!(f, "binding error: {msg}"),
            ExecError::Type(msg) => write!(f, "type error: {msg}"),
            ExecError::DivisionByZero => f.write_str("division by zero"),
            ExecError::NoRecommender { table, algorithm } => write!(
                f,
                "no {algorithm} recommender has been created on table `{table}` \
                 (run CREATE RECOMMENDER first)"
            ),
            ExecError::UnknownAlgorithm(name) => {
                write!(f, "unknown recommendation algorithm `{name}`")
            }
            ExecError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            ExecError::Guard(e) => write!(f, "query stopped: {e}"),
            ExecError::FaultInjected(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Storage(e) => Some(e),
            ExecError::Guard(e) => Some(e),
            ExecError::FaultInjected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<GuardError> for ExecError {
    fn from(e: GuardError) -> Self {
        ExecError::Guard(e)
    }
}

impl From<FaultError> for ExecError {
    fn from(e: FaultError) -> Self {
        ExecError::FaultInjected(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_no_recommender_is_actionable() {
        let e = ExecError::NoRecommender {
            table: "ratings".into(),
            algorithm: "SVD".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("SVD"));
        assert!(msg.contains("ratings"));
        assert!(msg.contains("CREATE RECOMMENDER"));
    }

    #[test]
    fn storage_error_converts_and_chains() {
        let e: ExecError = StorageError::TableNotFound("t".into()).into();
        assert!(matches!(e, ExecError::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
