//! Materialized query results.

use recdb_storage::{Schema, Tuple, Value};
use std::fmt;

/// A materialized result: output schema plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl ResultSet {
    /// Build a result set.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        ResultSet { schema, rows }
    }

    /// The output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows, in output order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at `(row, column named)`, resolving the column by reference.
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let i = self.schema.resolve(column).ok()?;
        self.rows.get(row)?.get(i)
    }

    /// All values of a named column.
    pub fn column_values(&self, column: &str) -> Vec<Value> {
        match self.schema.resolve(column) {
            Ok(i) => self
                .rows
                .iter()
                .map(|r| r.get(i).cloned().unwrap_or(Value::Null))
                .collect(),
            Err(_) => Vec::new(),
        }
    }
}

impl fmt::Display for ResultSet {
    /// A psql-ish aligned table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.qualified_name())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    f.write_str(" | ")?;
                }
                write!(
                    f,
                    "{cell:<width$}",
                    width = widths.get(i).copied().unwrap_or(0)
                )?;
            }
            writeln!(f)
        };
        write_row(f, &headers)?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-")
        )?;
        for row in &cells {
            write_row(f, row)?;
        }
        writeln!(f, "({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_storage::{Column, DataType};

    fn rs() -> ResultSet {
        ResultSet::new(
            Schema::new(vec![
                Column::qualified("R", "uid", DataType::Int),
                Column::qualified("R", "ratingval", DataType::Float),
            ]),
            vec![
                Tuple::new(vec![Value::Int(1), Value::Float(4.5)]),
                Tuple::new(vec![Value::Int(2), Value::Float(3.0)]),
            ],
        )
    }

    #[test]
    fn accessors() {
        let r = rs();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.value(0, "uid"), Some(&Value::Int(1)));
        assert_eq!(r.value(1, "R.ratingval"), Some(&Value::Float(3.0)));
        assert_eq!(r.value(2, "uid"), None);
        assert_eq!(r.value(0, "nope"), None);
        assert_eq!(r.column_values("uid"), vec![Value::Int(1), Value::Int(2)]);
        assert!(r.column_values("nope").is_empty());
    }

    #[test]
    fn display_renders_table() {
        let text = rs().to_string();
        assert!(text.contains("R.uid"));
        assert!(text.contains("4.5"));
        assert!(text.contains("(2 rows)"));
    }
}
