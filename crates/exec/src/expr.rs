//! Expression binding and evaluation.
//!
//! SQL [`Expr`]s reference columns by name; a [`BoundExpr`] has every
//! reference resolved to a tuple ordinal against a concrete [`Schema`], so
//! evaluation is a direct walk with no name lookups in the per-tuple hot
//! path.
//!
//! NULL follows SQL three-valued logic: comparisons with NULL yield NULL,
//! `AND`/`OR` are Kleene, and a filter keeps a tuple only when its
//! predicate evaluates to `TRUE`.

use crate::error::{ExecError, ExecResult};
use recdb_spatial::{functions, Point, Polygon, Rect};
use recdb_sql::{BinaryOp, Expr, Literal, UnaryOp};
use recdb_storage::{Schema, Tuple, Value};

/// An expression with all column references resolved to ordinals.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// A constant.
    Literal(Value),
    /// Tuple ordinal.
    Column(usize),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// `expr IN (…)`.
    InList {
        /// Probe.
        expr: Box<BoundExpr>,
        /// Candidates.
        list: Vec<BoundExpr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr IN (…)` where every candidate is a constant: evaluated by a
    /// hashed set probe instead of a linear scan (the constant-IN-list
    /// optimization real engines apply).
    InSet {
        /// Probe.
        expr: Box<BoundExpr>,
        /// The constant candidates.
        set: std::collections::HashSet<Value>,
        /// Whether a NULL constant appeared in the list (affects the
        /// no-match result under three-valued logic).
        has_null: bool,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Probe.
        expr: Box<BoundExpr>,
        /// Lower bound (inclusive).
        low: Box<BoundExpr>,
        /// Upper bound (inclusive).
        high: Box<BoundExpr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// A built-in function call.
    Function {
        /// Which built-in.
        func: BuiltinFunc,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
}

/// The built-in (mostly spatial) functions of the §V case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinFunc {
    /// `ST_Contains(region, point)` → BOOL.
    StContains,
    /// `ST_DWithin(point, point, dist)` → BOOL.
    StDWithin,
    /// `ST_Distance(point, point)` → FLOAT.
    StDistance,
    /// `CScore(ratingval, distance)` → FLOAT.
    CScore,
    /// `POINT(x, y)` → POINT.
    MakePoint,
    /// `RECT(min_x, min_y, max_x, max_y)` → RECT.
    MakeRect,
    /// `ABS(x)` → numeric.
    Abs,
}

impl BuiltinFunc {
    /// Resolve a function name (case-insensitive) to the built-in and its
    /// arity, or `None` for unknown functions.
    pub fn resolve(name: &str) -> Option<(BuiltinFunc, usize)> {
        let lower = name.to_ascii_lowercase();
        Some(match lower.as_str() {
            "st_contains" => (BuiltinFunc::StContains, 2),
            "st_dwithin" => (BuiltinFunc::StDWithin, 3),
            "st_distance" => (BuiltinFunc::StDistance, 2),
            "cscore" => (BuiltinFunc::CScore, 2),
            "point" => (BuiltinFunc::MakePoint, 2),
            "rect" => (BuiltinFunc::MakeRect, 4),
            "abs" => (BuiltinFunc::Abs, 1),
            _ => return None,
        })
    }
}

/// Convert a SQL literal to a runtime value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Null => Value::Null,
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Text(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// Bind an AST expression against a schema.
pub fn bind(expr: &Expr, schema: &Schema) -> ExecResult<BoundExpr> {
    match expr {
        Expr::Literal(lit) => Ok(BoundExpr::Literal(literal_value(lit))),
        Expr::Column { .. } => {
            let reference = expr
                .column_ref()
                .ok_or_else(|| ExecError::Bind("column expression has no reference".into()))?;
            let ordinal = schema.resolve(&reference)?;
            Ok(BoundExpr::Column(ordinal))
        }
        Expr::Unary { op, expr } => Ok(BoundExpr::Unary {
            op: *op,
            expr: Box::new(bind(expr, schema)?),
        }),
        Expr::Binary { op, left, right } => Ok(BoundExpr::Binary {
            op: *op,
            left: Box::new(bind(left, schema)?),
            right: Box::new(bind(right, schema)?),
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let probe = Box::new(bind(expr, schema)?);
            // Constant candidate lists become a hashed set probe.
            if list.iter().all(|e| matches!(e, Expr::Literal(_))) {
                let mut set = std::collections::HashSet::with_capacity(list.len());
                let mut has_null = false;
                for e in list {
                    let Expr::Literal(lit) = e else {
                        unreachable!()
                    };
                    let v = literal_value(lit);
                    if v.is_null() {
                        has_null = true;
                    } else {
                        set.insert(v);
                    }
                }
                return Ok(BoundExpr::InSet {
                    expr: probe,
                    set,
                    has_null,
                    negated: *negated,
                });
            }
            Ok(BoundExpr::InList {
                expr: probe,
                list: list
                    .iter()
                    .map(|e| bind(e, schema))
                    .collect::<ExecResult<_>>()?,
                negated: *negated,
            })
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Ok(BoundExpr::Between {
            expr: Box::new(bind(expr, schema)?),
            low: Box::new(bind(low, schema)?),
            high: Box::new(bind(high, schema)?),
            negated: *negated,
        }),
        Expr::Function { name, args } => {
            if crate::ops::aggregate::AggFunc::resolve(name).is_some() {
                return Err(ExecError::Bind(format!(
                    "aggregate function `{name}` is only allowed at the top \
                     level of the select list of a GROUP BY / aggregate query"
                )));
            }
            let (func, arity) = BuiltinFunc::resolve(name)
                .ok_or_else(|| ExecError::Bind(format!("unknown function `{name}`")))?;
            if args.len() != arity {
                return Err(ExecError::Bind(format!(
                    "function `{name}` takes {arity} arguments, got {}",
                    args.len()
                )));
            }
            Ok(BoundExpr::Function {
                func,
                args: args
                    .iter()
                    .map(|e| bind(e, schema))
                    .collect::<ExecResult<_>>()?,
            })
        }
    }
}

impl BoundExpr {
    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> ExecResult<Value> {
        match self {
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Column(i) => Ok(tuple.get(*i).cloned().unwrap_or(Value::Null)),
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval(tuple)?;
                match op {
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(x) => Ok(Value::Int(-x)),
                        Value::Float(x) => Ok(Value::Float(-x)),
                        other => Err(ExecError::Type(format!("cannot negate {other}"))),
                    },
                    UnaryOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => Err(ExecError::Type(format!("NOT applied to {other}"))),
                    },
                }
            }
            BoundExpr::Binary { op, left, right } => eval_binary(*op, left, right, tuple),
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let probe = expr.eval(tuple)?;
                if probe.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for candidate in list {
                    let c = candidate.eval(tuple)?;
                    match probe.sql_eq(&c) {
                        Some(true) => return Ok(Value::Bool(!negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            BoundExpr::InSet {
                expr,
                set,
                has_null,
                negated,
            } => {
                let probe = expr.eval(tuple)?;
                if probe.is_null() {
                    return Ok(Value::Null);
                }
                if set.contains(&probe) {
                    Ok(Value::Bool(!negated))
                } else if *has_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(tuple)?;
                let lo = low.eval(tuple)?;
                let hi = high.eval(tuple)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let inside = v.total_cmp(&lo) != std::cmp::Ordering::Less
                    && v.total_cmp(&hi) != std::cmp::Ordering::Greater;
                Ok(Value::Bool(inside != *negated))
            }
            BoundExpr::Function { func, args } => eval_function(*func, args, tuple),
        }
    }

    /// Evaluate as a predicate: `true` only when the result is `TRUE`
    /// (SQL filter semantics — NULL and FALSE both reject).
    pub fn eval_predicate(&self, tuple: &Tuple) -> ExecResult<bool> {
        match self.eval(tuple)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(ExecError::Type(format!(
                "WHERE predicate evaluated to non-boolean {other}"
            ))),
        }
    }
}

fn eval_binary(
    op: BinaryOp,
    left: &BoundExpr,
    right: &BoundExpr,
    tuple: &Tuple,
) -> ExecResult<Value> {
    // Kleene AND/OR with short-circuit on the determining value.
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let l = left.eval(tuple)?;
        let l = match l {
            Value::Null => None,
            Value::Bool(b) => Some(b),
            other => return Err(ExecError::Type(format!("logical op on {other}"))),
        };
        if op == BinaryOp::And && l == Some(false) {
            return Ok(Value::Bool(false));
        }
        if op == BinaryOp::Or && l == Some(true) {
            return Ok(Value::Bool(true));
        }
        let r = right.eval(tuple)?;
        let r = match r {
            Value::Null => None,
            Value::Bool(b) => Some(b),
            other => return Err(ExecError::Type(format!("logical op on {other}"))),
        };
        let out = match (op, l, r) {
            (BinaryOp::And, Some(true), Some(true)) => Some(true),
            (BinaryOp::And, Some(false), _) | (BinaryOp::And, _, Some(false)) => Some(false),
            (BinaryOp::Or, Some(false), Some(false)) => Some(false),
            (BinaryOp::Or, Some(true), _) | (BinaryOp::Or, _, Some(true)) => Some(true),
            _ => None,
        };
        return Ok(out.map(Value::Bool).unwrap_or(Value::Null));
    }

    let l = left.eval(tuple)?;
    let r = right.eval(tuple)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Both operands are non-null here, so `sql_eq` is total; treat a None
    // defensively as NULL rather than panicking.
    let eq = |l: &Value, r: &Value| l.sql_eq(r).map(Value::Bool).unwrap_or(Value::Null);
    match op {
        BinaryOp::Eq => Ok(eq(&l, &r)),
        BinaryOp::Neq => Ok(match eq(&l, &r) {
            Value::Bool(b) => Value::Bool(!b),
            other => other,
        }),
        BinaryOp::Lt => Ok(Value::Bool(l.total_cmp(&r) == std::cmp::Ordering::Less)),
        BinaryOp::Le => Ok(Value::Bool(l.total_cmp(&r) != std::cmp::Ordering::Greater)),
        BinaryOp::Gt => Ok(Value::Bool(l.total_cmp(&r) == std::cmp::Ordering::Greater)),
        BinaryOp::Ge => Ok(Value::Bool(l.total_cmp(&r) != std::cmp::Ordering::Less)),
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
            eval_arithmetic(op, &l, &r)
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

fn eval_arithmetic(op: BinaryOp, l: &Value, r: &Value) -> ExecResult<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            Ok(match op {
                BinaryOp::Add => Value::Int(a.wrapping_add(b)),
                BinaryOp::Sub => Value::Int(a.wrapping_sub(b)),
                BinaryOp::Mul => Value::Int(a.wrapping_mul(b)),
                BinaryOp::Div => {
                    if b == 0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    Value::Int(a.wrapping_div(b))
                }
                _ => unreachable!(),
            })
        }
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(ExecError::Type(format!(
                        "arithmetic on non-numeric values {l} and {r}"
                    )))
                }
            };
            Ok(match op {
                BinaryOp::Add => Value::Float(a + b),
                BinaryOp::Sub => Value::Float(a - b),
                BinaryOp::Mul => Value::Float(a * b),
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    Value::Float(a / b)
                }
                _ => unreachable!(),
            })
        }
    }
}

fn eval_function(func: BuiltinFunc, args: &[BoundExpr], tuple: &Tuple) -> ExecResult<Value> {
    let vals: Vec<Value> = args
        .iter()
        .map(|a| a.eval(tuple))
        .collect::<ExecResult<_>>()?;
    if vals.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let point = |v: &Value, fname: &str| -> ExecResult<Point> {
        v.as_point()
            .map(|(x, y)| Point::new(x, y))
            .ok_or_else(|| ExecError::Type(format!("{fname} expects a POINT, got {v}")))
    };
    let num = |v: &Value, fname: &str| -> ExecResult<f64> {
        v.as_f64()
            .ok_or_else(|| ExecError::Type(format!("{fname} expects a number, got {v}")))
    };
    match func {
        BuiltinFunc::StContains => {
            let (a, b, c, d) = vals[0].as_rect().ok_or_else(|| {
                ExecError::Type(format!(
                    "ST_Contains expects a RECT region, got {}",
                    vals[0]
                ))
            })?;
            let region = Polygon::from_rect(Rect::new(Point::new(a, b), Point::new(c, d)));
            let p = point(&vals[1], "ST_Contains")?;
            Ok(Value::Bool(functions::st_contains(&region, &p)))
        }
        BuiltinFunc::StDWithin => {
            let a = point(&vals[0], "ST_DWithin")?;
            let b = point(&vals[1], "ST_DWithin")?;
            let d = num(&vals[2], "ST_DWithin")?;
            Ok(Value::Bool(functions::st_dwithin(&a, &b, d)))
        }
        BuiltinFunc::StDistance => {
            let a = point(&vals[0], "ST_Distance")?;
            let b = point(&vals[1], "ST_Distance")?;
            Ok(Value::Float(functions::st_distance(&a, &b)))
        }
        BuiltinFunc::CScore => {
            let r = num(&vals[0], "CScore")?;
            let d = num(&vals[1], "CScore")?;
            Ok(Value::Float(functions::cscore(r, d)))
        }
        BuiltinFunc::MakePoint => {
            let x = num(&vals[0], "POINT")?;
            let y = num(&vals[1], "POINT")?;
            Ok(Value::Point(x, y))
        }
        BuiltinFunc::MakeRect => {
            let a = num(&vals[0], "RECT")?;
            let b = num(&vals[1], "RECT")?;
            let c = num(&vals[2], "RECT")?;
            let d = num(&vals[3], "RECT")?;
            Ok(Value::Rect(a, b, c, d))
        }
        BuiltinFunc::Abs => match &vals[0] {
            Value::Int(v) => Ok(Value::Int(v.abs())),
            Value::Float(v) => Ok(Value::Float(v.abs())),
            other => Err(ExecError::Type(format!(
                "ABS expects a number, got {other}"
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_sql::parse;
    use recdb_storage::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::qualified("R", "uid", DataType::Int),
            Column::qualified("R", "iid", DataType::Int),
            Column::qualified("R", "ratingval", DataType::Float),
            Column::qualified("R", "name", DataType::Text),
            Column::qualified("R", "loc", DataType::Point),
            Column::qualified("R", "area", DataType::Rect),
        ])
    }

    fn tuple() -> Tuple {
        Tuple::new(vec![
            Value::Int(1),
            Value::Int(42),
            Value::Float(4.5),
            Value::Text("Spartacus".into()),
            Value::Point(3.0, 4.0),
            Value::Rect(0.0, 0.0, 10.0, 10.0),
        ])
    }

    /// Bind the WHERE clause of `SELECT * FROM t WHERE <src>`.
    fn where_expr(src: &str) -> BoundExpr {
        let stmt = parse(&format!("SELECT * FROM t WHERE {src}")).unwrap();
        let recdb_sql::Statement::Select(s) = stmt else {
            panic!()
        };
        bind(&s.filter.unwrap(), &schema()).unwrap()
    }

    fn eval_bool(src: &str) -> bool {
        where_expr(src).eval_predicate(&tuple()).unwrap()
    }

    #[test]
    fn comparisons_and_logic() {
        assert!(eval_bool("R.uid = 1"));
        assert!(eval_bool("uid = 1 AND iid = 42"));
        assert!(!eval_bool("uid = 1 AND iid = 43"));
        assert!(eval_bool("uid = 9 OR ratingval > 4"));
        assert!(eval_bool("NOT (uid = 9)"));
        assert!(eval_bool("ratingval >= 4.5 AND ratingval <= 4.5"));
        assert!(eval_bool("name = 'Spartacus'"));
        assert!(eval_bool("uid != 2"));
    }

    #[test]
    fn in_list_and_between() {
        assert!(eval_bool("iid IN (1, 42, 99)"));
        assert!(!eval_bool("iid IN (1, 2)"));
        assert!(eval_bool("iid NOT IN (1, 2)"));
        assert!(eval_bool("ratingval BETWEEN 4 AND 5"));
        assert!(!eval_bool("ratingval BETWEEN 1 AND 2"));
        assert!(eval_bool("ratingval NOT BETWEEN 1 AND 2"));
    }

    #[test]
    fn arithmetic() {
        let e = where_expr("uid + iid = 43");
        assert!(e.eval_predicate(&tuple()).unwrap());
        assert!(eval_bool("ratingval * 2 = 9"));
        assert!(eval_bool("7 / 2 = 3"), "integer division truncates");
        assert!(eval_bool("7.0 / 2 = 3.5"));
        assert!(eval_bool("-uid = -1"));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = where_expr("uid / 0 = 1");
        assert_eq!(e.eval_predicate(&tuple()), Err(ExecError::DivisionByZero));
        let e = where_expr("ratingval / 0.0 = 1");
        assert_eq!(e.eval_predicate(&tuple()), Err(ExecError::DivisionByZero));
    }

    #[test]
    fn null_semantics() {
        // NULL comparisons are NULL → filter rejects.
        assert!(!eval_bool("NULL = 1"));
        assert!(!eval_bool("uid = NULL"));
        // Kleene: NULL OR TRUE = TRUE; NULL AND FALSE = FALSE.
        assert!(eval_bool("NULL = 1 OR uid = 1"));
        assert!(!eval_bool("NULL = 1 AND uid = 9"));
        // IN with NULL candidates: TRUE if matched, NULL otherwise.
        assert!(eval_bool("iid IN (42, NULL)"));
        assert!(!eval_bool("iid IN (1, NULL)"));
    }

    #[test]
    fn spatial_functions() {
        assert!(eval_bool("ST_DWithin(loc, POINT(0, 0), 5)"));
        assert!(!eval_bool("ST_DWithin(loc, POINT(0, 0), 4.9)"));
        assert!(eval_bool("ST_Distance(loc, POINT(0, 0)) = 5"));
        assert!(eval_bool("ST_Contains(area, loc)"));
        assert!(!eval_bool("ST_Contains(area, POINT(11, 0))"));
        assert!(eval_bool("ST_Contains(RECT(2, 3, 4, 5), loc)"));
        assert!(eval_bool("CScore(ratingval, 100) > 0"));
    }

    #[test]
    fn bind_errors() {
        let s = schema();
        let stmt = parse("SELECT * FROM t WHERE nosuch = 1").unwrap();
        let recdb_sql::Statement::Select(sel) = stmt else {
            panic!()
        };
        assert!(matches!(
            bind(&sel.filter.unwrap(), &s),
            Err(ExecError::Storage(_))
        ));
        let stmt = parse("SELECT * FROM t WHERE frobnicate(uid) = 1").unwrap();
        let recdb_sql::Statement::Select(sel) = stmt else {
            panic!()
        };
        let err = bind(&sel.filter.unwrap(), &s).unwrap_err();
        assert!(matches!(err, ExecError::Bind(m) if m.contains("frobnicate")));
        // Wrong arity.
        let stmt = parse("SELECT * FROM t WHERE ST_Distance(loc) = 1").unwrap();
        let recdb_sql::Statement::Select(sel) = stmt else {
            panic!()
        };
        let err = bind(&sel.filter.unwrap(), &s).unwrap_err();
        assert!(matches!(err, ExecError::Bind(m) if m.contains("2 arguments")));
    }

    #[test]
    fn type_errors_are_reported() {
        let e = where_expr("name + 1 = 2");
        assert!(matches!(
            e.eval_predicate(&tuple()),
            Err(ExecError::Type(_))
        ));
        let e = where_expr("ST_Distance(uid, loc) = 1");
        assert!(matches!(
            e.eval_predicate(&tuple()),
            Err(ExecError::Type(_))
        ));
        let e = where_expr("NOT uid");
        assert!(matches!(
            e.eval_predicate(&tuple()),
            Err(ExecError::Type(_))
        ));
    }

    #[test]
    fn non_boolean_predicate_rejected() {
        let e = where_expr("uid + 1");
        assert!(matches!(
            e.eval_predicate(&tuple()),
            Err(ExecError::Type(_))
        ));
    }

    #[test]
    fn qualified_and_unqualified_references() {
        assert!(eval_bool("R.ratingval = ratingval"));
    }

    #[test]
    fn constant_in_list_binds_to_hashed_set() {
        let e = where_expr("iid IN (1, 42, 99)");
        assert!(matches!(e, BoundExpr::InSet { .. }), "{e:?}");
        assert!(e.eval_predicate(&tuple()).unwrap());
        let e = where_expr("iid NOT IN (1, 2)");
        assert!(matches!(e, BoundExpr::InSet { negated: true, .. }));
        assert!(e.eval_predicate(&tuple()).unwrap());
        // Numeric cross-type match: Int probe against Float constant.
        assert!(eval_bool("iid IN (42.0)"));
        // Non-constant candidates fall back to the scanning form.
        let e = where_expr("iid IN (uid, 42)");
        assert!(matches!(e, BoundExpr::InList { .. }));
    }

    #[test]
    fn hashed_in_set_null_semantics_match_scan_form() {
        // Matched → TRUE even with NULL present.
        assert!(eval_bool("iid IN (42, NULL)"));
        // Unmatched with NULL present → NULL → filter rejects.
        assert!(!eval_bool("iid IN (1, NULL)"));
        // Unmatched without NULL under NOT IN → TRUE.
        assert!(eval_bool("iid NOT IN (1, 2)"));
        // NOT IN with NULL and no match → NULL → rejects.
        assert!(!eval_bool("iid NOT IN (1, NULL)"));
    }
}
