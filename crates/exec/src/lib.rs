//! # recdb-exec
//!
//! Query processing for RecDB-rs (paper §IV): logical plans, a rule-based
//! optimizer, and Volcano-style physical operators — including the paper's
//! recommendation-aware operator family:
//!
//! * `RECOMMEND` (ItemCF / UserCF / MatrixFact, Algorithms 1–2) — the leaf
//!   that scores user/item pairs,
//! * `FILTERRECOMMEND` — the same leaf with uid/iid/ratingval predicates
//!   pushed *below* the score computation (§IV-B1),
//! * `JOINRECOMMEND` — index-nested-loop-style join that predicts scores
//!   only for tuples that satisfy the join predicate (§IV-B2),
//! * `INDEXRECOMMEND` (Algorithm 3) — serves pre-computed scores from
//!   [`rec_index::RecScoreIndex`] in descending score order (§IV-C).
//!
//! The optimizer (in [`optimizer`]) implements the paper's plan rewrites:
//! predicate pushdown into the Recommend leaf, JoinRecommend selection, and
//! IndexRecommend access-path choice when a materialized score index covers
//! the querying users.

// Engine-reachable code must surface errors, not panic; tests are exempt
// via `allow-unwrap-in-tests` in the workspace clippy.toml.
#![warn(clippy::unwrap_used)]

pub mod error;
pub mod expr;
pub mod ops;
pub mod optimizer;
pub mod physical;
pub mod plan;
pub mod provider;
pub mod rec_index;
pub mod result;

pub use error::{ExecError, ExecResult};
pub use expr::BoundExpr;
pub use optimizer::optimize;
pub use physical::{execute_plan, execute_plan_profiled, ExecContext, Profiler};
pub use plan::{build_logical, LogicalPlan};
pub use provider::RecommenderProvider;
pub use rec_index::RecScoreIndex;
pub use result::ResultSet;
