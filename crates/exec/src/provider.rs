//! The bridge between the executor and the recommender catalog.
//!
//! The `RECOMMEND` clause does not name a recommender: the paper's engine
//! "figures that an ItemCosCF recommender is already created" from the
//! ratings table in FROM and the algorithm in USING (§IV-A1, Query 2
//! discussion). [`RecommenderProvider`] is that lookup, implemented by
//! `recdb-core`'s recommender catalog and by test doubles here.

use crate::rec_index::RecScoreIndex;
use recdb_algo::{Algorithm, RecModel};
use std::sync::Arc;

/// Resolves `(ratings table, algorithm)` to a trained model and, when
/// materialized, a pre-computed score index.
pub trait RecommenderProvider {
    /// The trained model for a recommender created on `ratings_table` with
    /// `algorithm`, or `None` if no such recommender exists.
    fn model(&self, ratings_table: &str, algorithm: Algorithm) -> Option<Arc<RecModel>>;

    /// The materialized [`RecScoreIndex`] for the recommender, if the cache
    /// manager has materialized one.
    fn rec_index(&self, ratings_table: &str, algorithm: Algorithm) -> Option<Arc<RecScoreIndex>>;
}

/// A provider with no recommenders (plain-SQL execution contexts).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoRecommenders;

impl RecommenderProvider for NoRecommenders {
    fn model(&self, _: &str, _: Algorithm) -> Option<Arc<RecModel>> {
        None
    }

    fn rec_index(&self, _: &str, _: Algorithm) -> Option<Arc<RecScoreIndex>> {
        None
    }
}

/// A single-recommender provider, convenient for tests and benches.
pub struct SingleRecommender {
    /// Table the recommender was created on (folded to lowercase).
    pub table: String,
    /// Algorithm it was trained with.
    pub algorithm: Algorithm,
    /// The trained model.
    pub model: Arc<RecModel>,
    /// Optional materialized index.
    pub index: Option<Arc<RecScoreIndex>>,
}

impl SingleRecommender {
    /// Wrap a model as a provider for `table`/`algorithm`.
    pub fn new(table: &str, algorithm: Algorithm, model: RecModel) -> Self {
        SingleRecommender {
            table: table.to_ascii_lowercase(),
            algorithm,
            model: Arc::new(model),
            index: None,
        }
    }

    /// Attach a materialized index.
    pub fn with_index(mut self, index: RecScoreIndex) -> Self {
        self.index = Some(Arc::new(index));
        self
    }
}

impl RecommenderProvider for SingleRecommender {
    fn model(&self, ratings_table: &str, algorithm: Algorithm) -> Option<Arc<RecModel>> {
        (self.table.eq_ignore_ascii_case(ratings_table) && self.algorithm == algorithm)
            .then(|| Arc::clone(&self.model))
    }

    fn rec_index(&self, ratings_table: &str, algorithm: Algorithm) -> Option<Arc<RecScoreIndex>> {
        if !self.table.eq_ignore_ascii_case(ratings_table) || self.algorithm != algorithm {
            return None;
        }
        self.index.as_ref().map(Arc::clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_algo::{Rating, RatingsMatrix};

    fn model() -> RecModel {
        RecModel::train(
            Algorithm::ItemCosCF,
            RatingsMatrix::from_ratings(vec![Rating::new(1, 1, 5.0), Rating::new(1, 2, 3.0)]),
            &Default::default(),
        )
    }

    #[test]
    fn single_provider_matches_table_and_algorithm() {
        let p = SingleRecommender::new("Ratings", Algorithm::ItemCosCF, model());
        assert!(p.model("ratings", Algorithm::ItemCosCF).is_some());
        assert!(p.model("RATINGS", Algorithm::ItemCosCF).is_some());
        assert!(p.model("ratings", Algorithm::Svd).is_none());
        assert!(p.model("other", Algorithm::ItemCosCF).is_none());
        assert!(p.rec_index("ratings", Algorithm::ItemCosCF).is_none());
    }

    #[test]
    fn index_attachment() {
        let mut idx = RecScoreIndex::new();
        idx.insert(1, 3, 4.0);
        let p = SingleRecommender::new("r", Algorithm::ItemCosCF, model()).with_index(idx);
        assert_eq!(p.rec_index("r", Algorithm::ItemCosCF).unwrap().len(), 1);
        assert!(p.rec_index("r", Algorithm::Svd).is_none());
    }

    #[test]
    fn no_recommenders_returns_none() {
        let p = NoRecommenders;
        assert!(p.model("x", Algorithm::Svd).is_none());
        assert!(p.rec_index("x", Algorithm::Svd).is_none());
    }
}
