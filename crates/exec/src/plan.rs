//! Logical query plans.
//!
//! [`build_logical`] turns a parsed `SELECT` into the *naive* plan shape of
//! the paper's Figure 3: the `RECOMMEND` leaf (or table scans) at the
//! bottom, cross joins in FROM order, one `Filter` carrying the whole WHERE
//! clause, then `Sort` / `Limit` / `Project`. The optimizer
//! ([`crate::optimizer`]) rewrites that shape into the paper's optimized
//! plans (FilterRecommend, JoinRecommend).

use crate::error::{ExecError, ExecResult};
use crate::expr::BuiltinFunc;
use crate::ops::aggregate::AggFunc;
use recdb_algo::Algorithm;
use recdb_sql::{Expr, Literal, OrderKey, SelectItem, SelectStatement};
use recdb_storage::{Catalog, Column, DataType, Schema};
use std::fmt;

/// The `RECOMMEND` leaf: which recommender to read and, after
/// optimization, which uid/iid/ratingval predicates were pushed into it
/// (turning it into the paper's FILTERRECOMMEND).
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendNode {
    /// The binding (alias) of the ratings table in FROM.
    pub binding: String,
    /// The ratings table the recommender was created on.
    pub ratings_table: String,
    /// The recommendation algorithm from USING.
    pub algorithm: Algorithm,
    /// Output column name for the user id (from `TO <col>`).
    pub user_column: String,
    /// Output column name for the item id (from `RECOMMEND <col>`).
    pub item_column: String,
    /// Output column name for the predicted rating (from `ON <col>`).
    pub rating_column: String,
    /// Only score these users (`uPred`), when pushed down.
    pub user_ids: Option<Vec<i64>>,
    /// Only score these items (`iPred`), when pushed down.
    pub item_ids: Option<Vec<i64>>,
    /// Minimum predicted rating (`rPred` lower bound, inclusive).
    pub min_rating: Option<f64>,
    /// Maximum predicted rating (`rPred` upper bound, inclusive).
    pub max_rating: Option<f64>,
}

impl RecommendNode {
    /// Output schema: `(user, item, rating)` qualified by the binding.
    pub fn schema(&self) -> Schema {
        Schema::new(vec![
            Column::qualified(&self.binding, &self.user_column, DataType::Int),
            Column::qualified(&self.binding, &self.item_column, DataType::Int),
            Column::qualified(&self.binding, &self.rating_column, DataType::Float),
        ])
    }

    /// True once any predicate was pushed into the leaf (i.e. the physical
    /// operator will be FILTERRECOMMEND rather than plain RECOMMEND).
    pub fn is_filtered(&self) -> bool {
        self.user_ids.is_some()
            || self.item_ids.is_some()
            || self.min_rating.is_some()
            || self.max_rating.is_some()
    }
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan.
    Scan {
        /// Table name in the catalog.
        table: String,
        /// Binding (alias) used by the query.
        binding: String,
        /// Schema qualified by the binding.
        schema: Schema,
    },
    /// The recommendation leaf.
    Recommend(RecommendNode),
    /// σ — keep tuples where the predicate is TRUE.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The predicate.
        predicate: Expr,
    },
    /// Inner join (cross product when `predicate` is `None`).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join predicate, if any.
        predicate: Option<Expr>,
    },
    /// The paper's JOINRECOMMEND: scores only the items flowing out of
    /// `outer`. Output columns: recommend columns first, then outer's.
    RecJoin {
        /// The recommendation side.
        rec: RecommendNode,
        /// The outer relation (already filtered).
        outer: Box<LogicalPlan>,
        /// Column reference in `outer` equated with the item id.
        outer_item_column: String,
    },
    /// γ — hash aggregation with optional grouping.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// GROUP BY expressions (grouping keys).
        group_by: Vec<Expr>,
        /// Output columns in select-list order.
        outputs: Vec<AggregateOutput>,
    },
    /// Sort by keys.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys in priority order.
        keys: Vec<OrderKey>,
    },
    /// Keep the first `limit` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row budget.
        limit: u64,
    },
    /// π — compute output expressions.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
}

/// One output column of an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateOutput {
    /// A grouping expression (must appear in GROUP BY).
    Group {
        /// The expression (index into `group_by` resolved at build time).
        index: usize,
        /// Output column name.
        name: String,
    },
    /// An aggregate call.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Argument (`None` = `COUNT(*)`).
        arg: Option<Expr>,
        /// Output column name.
        name: String,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema.clone(),
            LogicalPlan::Recommend(node) => node.schema(),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Join { left, right, .. } => left.schema().join(&right.schema()),
            LogicalPlan::RecJoin { rec, outer, .. } => rec.schema().join(&outer.schema()),
            LogicalPlan::Aggregate {
                input,
                group_by,
                outputs,
            } => {
                let input_schema = input.schema();
                Schema::new(
                    outputs
                        .iter()
                        .map(|o| match o {
                            AggregateOutput::Group { index, name } => {
                                // Column-ref groups keep their qualifier so
                                // `ORDER BY M.genre` still binds above the
                                // aggregate.
                                let expr = &group_by[*index];
                                let from_input = expr.column_ref().and_then(|r| {
                                    input_schema
                                        .resolve_column(&r)
                                        .ok()
                                        .map(|(_, c)| (c.relation.clone(), c.data_type))
                                });
                                match from_input {
                                    Some((relation, data_type)) => Column {
                                        relation,
                                        name: name.clone(),
                                        data_type,
                                    },
                                    None => {
                                        Column::new(name.clone(), infer_type(expr, &input_schema))
                                    }
                                }
                            }
                            AggregateOutput::Agg { func, arg, name } => {
                                let ty = match func {
                                    AggFunc::Count => DataType::Int,
                                    AggFunc::Sum | AggFunc::Avg => DataType::Float,
                                    AggFunc::Min | AggFunc::Max => arg
                                        .as_ref()
                                        .map(|a| infer_type(a, &input_schema))
                                        .unwrap_or(DataType::Float),
                                };
                                Column::new(name.clone(), ty)
                            }
                        })
                        .collect(),
                )
            }
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Project { input, exprs } => {
                let input_schema = input.schema();
                Schema::new(
                    exprs
                        .iter()
                        .map(|(e, name)| {
                            // Column refs keep their qualifier; computed
                            // expressions are unqualified outputs.
                            if let Some(reference) = e.column_ref() {
                                if let Ok((_, col)) = input_schema.resolve_column(&reference) {
                                    return Column {
                                        relation: col.relation.clone(),
                                        name: name.clone(),
                                        data_type: col.data_type,
                                    };
                                }
                            }
                            Column::new(name.clone(), infer_type(e, &input_schema))
                        })
                        .collect(),
                )
            }
        }
    }

    /// EXPLAIN-style indented rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table, binding, .. } => {
                out.push_str(&format!("{pad}SeqScan {table} AS {binding}\n"));
            }
            LogicalPlan::Recommend(node) => {
                let op = if node.is_filtered() {
                    "FilterRecommend"
                } else {
                    "Recommend"
                };
                out.push_str(&format!(
                    "{pad}{op} {} ON {} USING {}",
                    node.binding, node.ratings_table, node.algorithm
                ));
                if let Some(users) = &node.user_ids {
                    out.push_str(&format!(" users={users:?}"));
                }
                if let Some(items) = &node.item_ids {
                    out.push_str(&format!(" items[{}]", items.len()));
                }
                if node.min_rating.is_some() || node.max_rating.is_some() {
                    out.push_str(&format!(
                        " rating=[{:?}, {:?}]",
                        node.min_rating, node.max_rating
                    ));
                }
                out.push('\n');
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate}\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
            } => {
                match predicate {
                    Some(p) => out.push_str(&format!("{pad}Join on {p}\n")),
                    None => out.push_str(&format!("{pad}CrossJoin\n")),
                }
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            LogicalPlan::RecJoin {
                rec,
                outer,
                outer_item_column,
            } => {
                out.push_str(&format!(
                    "{pad}JoinRecommend {}.{} = {outer_item_column} USING {}",
                    rec.binding, rec.item_column, rec.algorithm
                ));
                if let Some(users) = &rec.user_ids {
                    out.push_str(&format!(" users={users:?}"));
                }
                out.push('\n');
                outer.explain_into(out, depth + 1);
            }
            LogicalPlan::Aggregate { input, outputs, .. } => {
                out.push_str(&format!(
                    "{pad}HashAggregate [{}]\n",
                    outputs
                        .iter()
                        .map(|o| match o {
                            AggregateOutput::Group { name, .. } => name.clone(),
                            AggregateOutput::Agg { func, name, .. } =>
                                format!("{}({name})", func.name()),
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                out.push_str(&format!(
                    "{pad}Sort [{}]\n",
                    keys.iter()
                        .map(|k| format!("{} {}", k.expr, if k.desc { "DESC" } else { "ASC" }))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Limit { input, limit } => {
                out.push_str(&format!("{pad}Limit {limit}\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Project { input, exprs } => {
                out.push_str(&format!(
                    "{pad}Project [{}]\n",
                    exprs
                        .iter()
                        .map(|(_, n)| n.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

/// Best-effort output type inference for computed projection columns.
fn infer_type(expr: &Expr, schema: &Schema) -> DataType {
    match expr {
        Expr::Literal(Literal::Int(_)) => DataType::Int,
        Expr::Literal(Literal::Float(_)) => DataType::Float,
        Expr::Literal(Literal::Str(_)) => DataType::Text,
        Expr::Literal(Literal::Bool(_)) => DataType::Bool,
        Expr::Literal(Literal::Null) => DataType::Int,
        Expr::Column { .. } => {
            let reference = expr.column_ref().expect("column");
            schema
                .resolve_column(&reference)
                .map(|(_, c)| c.data_type)
                .unwrap_or(DataType::Float)
        }
        Expr::Unary { expr, .. } => infer_type(expr, schema),
        Expr::Binary { op, left, .. } => {
            use recdb_sql::BinaryOp::*;
            match op {
                Or | And | Eq | Neq | Lt | Le | Gt | Ge => DataType::Bool,
                Add | Sub | Mul | Div => infer_type(left, schema),
            }
        }
        Expr::InList { .. } | Expr::Between { .. } => DataType::Bool,
        Expr::Function { name, .. } => match BuiltinFunc::resolve(name) {
            Some((BuiltinFunc::StContains | BuiltinFunc::StDWithin, _)) => DataType::Bool,
            Some((BuiltinFunc::MakePoint, _)) => DataType::Point,
            Some((BuiltinFunc::MakeRect, _)) => DataType::Rect,
            _ => DataType::Float,
        },
    }
}

/// Build the naive logical plan for a SELECT against a catalog.
pub fn build_logical(select: &SelectStatement, catalog: &Catalog) -> ExecResult<LogicalPlan> {
    if select.from.is_empty() {
        return Err(ExecError::Unsupported(
            "SELECT without FROM is not supported".into(),
        ));
    }

    // Which FROM entry is the recommender's ratings table?
    let rec_binding = select.recommend.as_ref().map(|rec| {
        let qualifier = rec.item_column.split_once('.').map(|(q, _)| q.to_owned());
        // Unqualified RECOMMEND columns bind to the first FROM entry.
        qualifier.unwrap_or_else(|| select.from[0].binding().to_owned())
    });

    let mut leaves: Vec<LogicalPlan> = Vec::with_capacity(select.from.len());
    for table_ref in &select.from {
        let binding = table_ref.binding();
        let is_rec = rec_binding
            .as_deref()
            .is_some_and(|b| b.eq_ignore_ascii_case(binding));
        if is_rec {
            let rec = select
                .recommend
                .as_ref()
                .expect("rec_binding implies clause");
            let algorithm: Algorithm = rec
                .algorithm
                .parse()
                .map_err(|_| ExecError::UnknownAlgorithm(rec.algorithm.clone()))?;
            let strip = |s: &str| -> String {
                s.split_once('.')
                    .map(|(_, c)| c.to_owned())
                    .unwrap_or_else(|| s.to_owned())
            };
            leaves.push(LogicalPlan::Recommend(RecommendNode {
                binding: binding.to_owned(),
                ratings_table: table_ref.table.clone(),
                algorithm,
                user_column: strip(&rec.user_column),
                item_column: strip(&rec.item_column),
                rating_column: strip(&rec.rating_column),
                user_ids: None,
                item_ids: None,
                min_rating: None,
                max_rating: None,
            }));
        } else {
            let table = catalog.table(&table_ref.table)?;
            leaves.push(LogicalPlan::Scan {
                table: table_ref.table.clone(),
                binding: binding.to_owned(),
                schema: table.schema().with_qualifier(binding),
            });
        }
    }

    // Left-deep cross-join tree in FROM order.
    let mut plan = leaves.remove(0);
    for right in leaves {
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            predicate: None,
        };
    }

    if let Some(filter) = &select.filter {
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: filter.clone(),
        };
    }

    // Aggregate queries replace the projection with a γ node.
    let has_aggregates = select.items.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => contains_aggregate(expr),
        SelectItem::Wildcard => false,
    });
    if has_aggregates || !select.group_by.is_empty() {
        plan = build_aggregate(select, plan)?;
        if !select.order_by.is_empty() {
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys: select.order_by.clone(),
            };
        }
        if let Some(limit) = select.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                limit,
            };
        }
        return Ok(plan);
    }

    if !select.order_by.is_empty() {
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys: select.order_by.clone(),
        };
    }
    if let Some(limit) = select.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            limit,
        };
    }

    // Projection: expand * against the current schema.
    let input_schema = plan.schema();
    let mut exprs: Vec<(Expr, String)> = Vec::new();
    for (i, item) in select.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for col in input_schema.columns() {
                    let e = match &col.relation {
                        Some(rel) => Expr::qcol(rel, &col.name),
                        None => Expr::col(&col.name),
                    };
                    exprs.push((e, col.name.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| {
                    expr.column_ref()
                        .map(|r| r.split_once('.').map(|(_, c)| c.to_owned()).unwrap_or(r))
                        .unwrap_or_else(|| format!("col{}", i + 1))
                });
                exprs.push((expr.clone(), name));
            }
        }
    }
    Ok(LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
    })
}

/// Is this expression exactly an aggregate call?
fn aggregate_call(expr: &Expr) -> Option<(AggFunc, Option<Expr>)> {
    let Expr::Function { name, args } = expr else {
        return None;
    };
    let func = AggFunc::resolve(name)?;
    match (func, args.len()) {
        (AggFunc::Count, 0) => Some((func, None)),
        (_, 1) => Some((func, Some(args[0].clone()))),
        _ => None,
    }
}

/// Does the expression contain an aggregate call anywhere?
fn contains_aggregate(expr: &Expr) -> bool {
    if aggregate_call(expr).is_some() {
        return true;
    }
    match expr {
        Expr::Literal(_) | Expr::Column { .. } => false,
        Expr::Unary { expr, .. } => contains_aggregate(expr),
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        Expr::Function { args, .. } => args.iter().any(contains_aggregate),
    }
}

/// Build the γ node: every select item must be either a grouping
/// expression (appearing in GROUP BY) or a top-level aggregate call — the
/// standard simple-aggregation rule.
fn build_aggregate(select: &SelectStatement, input: LogicalPlan) -> ExecResult<LogicalPlan> {
    let input_schema = input.schema();
    // Two expressions group identically if they are structurally equal or
    // are column references resolving to the same ordinal.
    let same_group = |a: &Expr, b: &Expr| -> bool {
        if a == b {
            return true;
        }
        match (a.column_ref(), b.column_ref()) {
            (Some(ra), Some(rb)) => {
                matches!(
                    (input_schema.resolve(&ra), input_schema.resolve(&rb)),
                    (Ok(x), Ok(y)) if x == y
                )
            }
            _ => false,
        }
    };
    let mut outputs = Vec::with_capacity(select.items.len());
    for (i, item) in select.items.iter().enumerate() {
        let SelectItem::Expr { expr, alias } = item else {
            return Err(ExecError::Unsupported(
                "SELECT * cannot be combined with GROUP BY / aggregates".into(),
            ));
        };
        let name = alias.clone().unwrap_or_else(|| match expr {
            Expr::Function { name, .. } => name.to_ascii_lowercase(),
            _ => expr
                .column_ref()
                .map(|r| r.split_once('.').map(|(_, c)| c.to_owned()).unwrap_or(r))
                .unwrap_or_else(|| format!("col{}", i + 1)),
        });
        if let Some((func, arg)) = aggregate_call(expr) {
            outputs.push(AggregateOutput::Agg { func, arg, name });
            continue;
        }
        if contains_aggregate(expr) {
            return Err(ExecError::Unsupported(
                "aggregates must be top-level select items (e.g. AVG(x), not AVG(x) + 1)".into(),
            ));
        }
        let index = select
            .group_by
            .iter()
            .position(|g| same_group(g, expr))
            .ok_or_else(|| {
                ExecError::Bind(format!(
                    "select item `{name}` must appear in GROUP BY or be an aggregate"
                ))
            })?;
        outputs.push(AggregateOutput::Group { index, name });
    }
    Ok(LogicalPlan::Aggregate {
        input: Box::new(input),
        group_by: select.group_by.clone(),
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_sql::parse;
    use recdb_storage::Value;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "ratings",
            Schema::from_pairs(&[
                ("uid", DataType::Int),
                ("iid", DataType::Int),
                ("ratingval", DataType::Float),
            ]),
        )
        .unwrap();
        cat.create_table(
            "movies",
            Schema::from_pairs(&[
                ("mid", DataType::Int),
                ("name", DataType::Text),
                ("genre", DataType::Text),
            ]),
        )
        .unwrap();
        cat
    }

    fn select(src: &str) -> SelectStatement {
        match parse(src).unwrap() {
            recdb_sql::Statement::Select(s) => s,
            _ => panic!("not a select"),
        }
    }

    #[test]
    fn plain_select_builds_scan_filter_project() {
        let plan =
            build_logical(&select("SELECT uid FROM ratings WHERE uid = 1"), &catalog()).unwrap();
        let LogicalPlan::Project { input, exprs } = &plan else {
            panic!()
        };
        assert_eq!(exprs.len(), 1);
        assert!(matches!(**input, LogicalPlan::Filter { .. }));
        assert_eq!(plan.schema().arity(), 1);
    }

    #[test]
    fn recommend_leaf_replaces_ratings_scan() {
        let plan = build_logical(
            &select(
                "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF",
            ),
            &catalog(),
        )
        .unwrap();
        let LogicalPlan::Project { input, .. } = &plan else {
            panic!()
        };
        let LogicalPlan::Recommend(node) = &**input else {
            panic!("expected Recommend leaf, got {input}")
        };
        assert_eq!(node.algorithm, Algorithm::ItemCosCF);
        assert_eq!(node.binding, "R");
        assert!(!node.is_filtered());
        // Schema is (uid, iid, ratingval) qualified by R.
        let s = node.schema();
        assert_eq!(s.resolve("R.uid").unwrap(), 0);
        assert_eq!(s.resolve("R.ratingval").unwrap(), 2);
    }

    #[test]
    fn star_expansion_uses_input_schema() {
        let plan = build_logical(&select("SELECT * FROM movies"), &catalog()).unwrap();
        assert_eq!(plan.schema().arity(), 3);
        assert_eq!(plan.schema().column(1).unwrap().name, "name");
    }

    #[test]
    fn join_order_is_from_order() {
        let plan = build_logical(
            &select("SELECT R.uid, M.name FROM ratings AS R, movies AS M WHERE R.iid = M.mid"),
            &catalog(),
        )
        .unwrap();
        // Project → Filter → Join(Scan ratings, Scan movies)
        let LogicalPlan::Project { input, .. } = plan else {
            panic!()
        };
        let LogicalPlan::Filter { input, .. } = *input else {
            panic!()
        };
        let LogicalPlan::Join { left, right, .. } = *input else {
            panic!()
        };
        assert!(matches!(*left, LogicalPlan::Scan { ref binding, .. } if binding == "R"));
        assert!(matches!(*right, LogicalPlan::Scan { ref binding, .. } if binding == "M"));
    }

    #[test]
    fn unknown_table_and_algorithm_error() {
        let err = build_logical(&select("SELECT * FROM nope"), &catalog()).unwrap_err();
        assert!(matches!(err, ExecError::Storage(_)));
        let err = build_logical(
            &select(
                "SELECT R.uid FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING DeepFM",
            ),
            &catalog(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::UnknownAlgorithm(a) if a == "DeepFM"));
    }

    #[test]
    fn unqualified_recommend_binds_first_table() {
        let plan = build_logical(
            &select(
                "SELECT uid FROM ratings \
                 RECOMMEND iid TO uid ON ratingval USING SVD",
            ),
            &catalog(),
        )
        .unwrap();
        let LogicalPlan::Project { input, .. } = &plan else {
            panic!()
        };
        let LogicalPlan::Recommend(node) = &**input else {
            panic!()
        };
        assert_eq!(node.binding, "ratings");
        assert_eq!(node.algorithm, Algorithm::Svd);
    }

    #[test]
    fn order_and_limit_nodes_stack() {
        let plan = build_logical(
            &select("SELECT uid FROM ratings ORDER BY uid DESC LIMIT 5"),
            &catalog(),
        )
        .unwrap();
        let LogicalPlan::Project { input, .. } = plan else {
            panic!()
        };
        let LogicalPlan::Limit { input, limit } = *input else {
            panic!()
        };
        assert_eq!(limit, 5);
        assert!(matches!(*input, LogicalPlan::Sort { .. }));
    }

    #[test]
    fn explain_renders_tree() {
        let plan = build_logical(
            &select(
                "SELECT R.uid FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1",
            ),
            &catalog(),
        )
        .unwrap();
        let text = plan.explain();
        assert!(text.contains("Project"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Recommend"));
        assert!(text.contains("ItemCosCF"));
    }

    #[test]
    fn aggregate_plan_shape_and_schema() {
        let plan = build_logical(
            &select(
                "SELECT genre, COUNT(*) AS n, AVG(mid) AS mean FROM movies \
                 GROUP BY genre ORDER BY n DESC LIMIT 3",
            ),
            &catalog(),
        )
        .unwrap();
        let text = plan.explain();
        assert!(text.contains("HashAggregate"), "{text}");
        let LogicalPlan::Limit { input, .. } = plan else {
            panic!("{text}")
        };
        let LogicalPlan::Sort { input, .. } = *input else {
            panic!("{text}")
        };
        let LogicalPlan::Aggregate { outputs, .. } = *input else {
            panic!("{text}")
        };
        assert_eq!(outputs.len(), 3);
        // Schema: Text, Int, Float.
        let plan = build_logical(
            &select("SELECT genre, COUNT(*) AS n, AVG(mid) AS mean FROM movies GROUP BY genre"),
            &catalog(),
        )
        .unwrap();
        let s = plan.schema();
        assert_eq!(s.column(0).unwrap().data_type, DataType::Text);
        assert_eq!(s.column(1).unwrap().data_type, DataType::Int);
        assert_eq!(s.column(2).unwrap().data_type, DataType::Float);
    }

    #[test]
    fn non_grouped_select_item_rejected() {
        let err = build_logical(
            &select("SELECT name, COUNT(*) FROM movies GROUP BY genre"),
            &catalog(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Bind(m) if m.contains("GROUP BY")));
        let err =
            build_logical(&select("SELECT * FROM movies GROUP BY genre"), &catalog()).unwrap_err();
        assert!(matches!(err, ExecError::Unsupported(_)));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let plan = build_logical(
            &select("SELECT COUNT(*) AS n, MIN(mid) AS lo FROM movies"),
            &catalog(),
        )
        .unwrap();
        assert!(matches!(plan, LogicalPlan::Aggregate { .. }));
    }

    #[test]
    fn projected_type_inference() {
        let plan = build_logical(
            &select(
                "SELECT name, mid * 2 AS double_mid, genre = 'Action' AS is_action FROM movies",
            ),
            &catalog(),
        )
        .unwrap();
        let s = plan.schema();
        assert_eq!(s.column(0).unwrap().data_type, DataType::Text);
        assert_eq!(s.column(1).unwrap().data_type, DataType::Int);
        assert_eq!(s.column(2).unwrap().data_type, DataType::Bool);
        // Sanity: Value::Bool conforms to the inferred Bool column.
        assert!(Value::Bool(true).conforms_to(s.column(2).unwrap().data_type));
    }
}
