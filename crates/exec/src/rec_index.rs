//! `RecScoreIndex` — the pre-computed recommendation score index (§IV-C).
//!
//! The paper's structure (Figure 4) is a hash table from user id to a
//! per-user B+-tree keyed by predicted rating, whose leaves point to items
//! in descending score order. Here the whole index is **disk-resident**:
//! two paged [`recdb_storage::BTree`]s over a shared [`BufferPool`], so a
//! materialized index far larger than RAM pages in and out of a bounded
//! frame set instead of living in process heap.
//!
//! * the **forward tree** is keyed `(user, score, item)` with the score
//!   (and the tie-breaking item id) encoded *descending*, so an ascending
//!   leaf-chain scan of one user's key range yields items from best to
//!   worst — exactly Algorithm 3's Phase II/III traversal;
//! * the **reverse tree** is keyed `(user, item, score)`, giving the
//!   cache manager an `O(log n)` point lookup of a pair's materialized
//!   score without knowing it — needed to evict `(user, item)` from the
//!   forward tree, whose key embeds the score.
//!
//! All three fields use order-preserving byte encodings (sign-flipped
//! big-endian for `i64`, IEEE-754 total-order bits for `f64` — the same
//! order as [`f64::total_cmp`]), packed into the tree's fixed 24-byte
//! keys. Small per-user metadata (entry counts, the completeness set)
//! stays in memory: it is O(users), not O(users × items).

use recdb_storage::{BTree, BufferPool, DEFAULT_NODE_CAPACITY};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Uniquifies pool file labels so two indexes sharing one spilling pool
/// never collide on a spill-file name.
static NEXT_INDEX_ID: AtomicU64 = AtomicU64::new(0);

type Key = [u8; 24];

/// Order-preserving encoding of an `i64`: flip the sign bit and emit
/// big-endian, so unsigned byte order matches signed integer order.
fn enc_i64(x: i64) -> [u8; 8] {
    ((x as u64) ^ (1 << 63)).to_be_bytes()
}

fn dec_i64(b: &[u8]) -> i64 {
    let mut arr = [0u8; 8];
    arr.copy_from_slice(b);
    (u64::from_be_bytes(arr) ^ (1 << 63)) as i64
}

/// Total-order bits of an `f64`, ascending: byte order matches
/// [`f64::total_cmp`] (`-NaN < -∞ < … < +∞ < +NaN`, `-0.0 < +0.0`).
fn enc_f64_asc(s: f64) -> [u8; 8] {
    let bits = s.to_bits();
    let ordered = if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    };
    ordered.to_be_bytes()
}

fn dec_f64_asc(b: &[u8]) -> f64 {
    let mut arr = [0u8; 8];
    arr.copy_from_slice(b);
    let ordered = u64::from_be_bytes(arr);
    let bits = if ordered >> 63 == 1 {
        ordered & !(1 << 63)
    } else {
        !ordered
    };
    f64::from_bits(bits)
}

/// Forward-tree key `(user↑, score↓, item↓)`: ascending key order scans
/// one user's entries from highest to lowest score, ties by item id
/// descending (matching the previous in-heap implementation).
fn fwd_key(user: i64, score: f64, item: i64) -> Key {
    let mut k = [0u8; 24];
    k[..8].copy_from_slice(&enc_i64(user));
    let desc_score = enc_f64_asc(score).map(|b| !b);
    k[8..16].copy_from_slice(&desc_score);
    let desc_item = enc_i64(item).map(|b| !b);
    k[16..].copy_from_slice(&desc_item);
    k
}

fn fwd_decode(k: &Key) -> (i64, i64, f64) {
    let user = dec_i64(&k[..8]);
    let asc_score: Vec<u8> = k[8..16].iter().map(|b| !b).collect();
    let score = dec_f64_asc(&asc_score);
    let asc_item: Vec<u8> = k[16..].iter().map(|b| !b).collect();
    let item = dec_i64(&asc_item);
    (user, item, score)
}

/// Reverse-tree key `(user↑, item↑, score↑)` for point lookups.
fn rev_key(user: i64, item: i64, score: f64) -> Key {
    let mut k = [0u8; 24];
    k[..8].copy_from_slice(&enc_i64(user));
    k[8..16].copy_from_slice(&enc_i64(item));
    k[16..].copy_from_slice(&enc_f64_asc(score));
    k
}

/// The smallest key strictly greater than `k`, or `None` if `k` is the
/// maximum key (used as an exclusive upper bound for inclusive ranges).
fn successor(mut k: Key) -> Option<Key> {
    for b in k.iter_mut().rev() {
        if *b < u8::MAX {
            *b += 1;
            return Some(k);
        }
        *b = 0;
    }
    None
}

/// The pre-computed score index, paged through a buffer pool.
#[derive(Debug, Clone)]
pub struct RecScoreIndex {
    /// `(user, score↓, item↓)` — serves descending-score traversals.
    fwd: BTree,
    /// `(user, item, score)` — serves `(user, item)` point lookups.
    rev: BTree,
    /// Materialized entries per user (O(users) memory).
    counts: HashMap<i64, usize>,
    /// Users whose *entire* unseen-item list is materialized. Only these
    /// can serve IndexRecommend top-k queries soundly; partially-admitted
    /// users (Algorithm 4 admits per pair) only accelerate point lookups.
    complete: HashSet<i64>,
    entries: usize,
}

/// Pool faults during index maintenance are process-local invariant
/// violations (a corrupt spill file, or every frame pinned at once) —
/// the durable store is never involved, so there is no recovery path
/// short of rebuilding the index. Surface them loudly.
const POOL_FAULT: &str = "RecScoreIndex buffer-pool operation failed";

impl RecScoreIndex {
    /// An empty index over a private, unbounded in-memory pool.
    pub fn new() -> Self {
        Self::with_pool(Arc::new(BufferPool::unbounded()), DEFAULT_NODE_CAPACITY)
    }

    /// An empty index paged through `pool`. `node_capacity` bounds keys
    /// per tree node (tests shrink it to force splits early).
    pub fn with_pool(pool: Arc<BufferPool>, node_capacity: usize) -> Self {
        let id = NEXT_INDEX_ID.fetch_add(1, Ordering::Relaxed);
        let fwd = BTree::create(
            Arc::clone(&pool),
            &format!("rec_index.{id}.fwd"),
            node_capacity,
        )
        .expect(POOL_FAULT);
        let rev =
            BTree::create(pool, &format!("rec_index.{id}.rev"), node_capacity).expect(POOL_FAULT);
        RecScoreIndex {
            fwd,
            rev,
            counts: HashMap::new(),
            complete: HashSet::new(),
            entries: 0,
        }
    }

    /// The pool this index pages through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.fwd.pool()
    }

    /// Node pages allocated across both trees (for sizing diagnostics).
    pub fn node_pages(&self) -> u64 {
        u64::from(self.fwd.node_pages()) + u64::from(self.rev.node_pages())
    }

    /// Number of materialized `(user, item, score)` entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when nothing is materialized.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of users with at least one materialized entry.
    pub fn user_count(&self) -> usize {
        self.counts.len()
    }

    /// Whether user `u` has any materialized entries.
    pub fn has_user(&self, user: i64) -> bool {
        self.counts.contains_key(&user)
    }

    /// The materialized score for a pair, if present: a reverse-tree
    /// range probe over the `(user, item)` prefix.
    pub fn get(&self, user: i64, item: i64) -> Option<f64> {
        let lo = rev_key(user, item, f64::from_bits(0xFFF8_0000_0000_0000)); // -NaN: minimum in total order
        let hi = successor(rev_key(user, item, f64::from_bits(0x7FFF_FFFF_FFFF_FFFF)));
        let mut found = None;
        self.rev
            .for_each_range(&lo, hi.as_ref(), |k| {
                found = Some(dec_f64_asc(&k[16..]));
                false
            })
            .expect(POOL_FAULT);
        found
    }

    /// Materialize (or refresh) one entry.
    pub fn insert(&mut self, user: i64, item: i64, score: f64) {
        if let Some(old) = self.get(user, item) {
            if old.to_bits() == score.to_bits() {
                return;
            }
            self.fwd
                .remove(&fwd_key(user, old, item))
                .expect(POOL_FAULT);
            self.rev
                .remove(&rev_key(user, item, old))
                .expect(POOL_FAULT);
        } else {
            *self.counts.entry(user).or_insert(0) += 1;
            self.entries += 1;
        }
        self.fwd
            .insert(fwd_key(user, score, item))
            .expect(POOL_FAULT);
        self.rev
            .insert(rev_key(user, item, score))
            .expect(POOL_FAULT);
    }

    /// Mark a user's list as fully materialized (every unseen item is
    /// present). Set by the engine's materialization step, cleared by any
    /// eviction touching the user.
    pub fn mark_complete(&mut self, user: i64) {
        self.complete.insert(user);
    }

    /// Whether the user's full unseen-item list is materialized.
    pub fn is_complete(&self, user: i64) -> bool {
        self.complete.contains(&user)
    }

    /// Evict one entry; returns whether it was present.
    pub fn remove(&mut self, user: i64, item: i64) -> bool {
        let Some(score) = self.get(user, item) else {
            return false;
        };
        self.fwd
            .remove(&fwd_key(user, score, item))
            .expect(POOL_FAULT);
        self.rev
            .remove(&rev_key(user, item, score))
            .expect(POOL_FAULT);
        self.complete.remove(&user);
        self.entries -= 1;
        match self.counts.get_mut(&user) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                self.counts.remove(&user);
            }
        }
        true
    }

    /// Replace user `u`'s entire materialized list in one pass and mark
    /// it complete — the bulk path for the engine's materializer, which
    /// otherwise pays a point lookup per inserted pair.
    pub fn replace_user_list(&mut self, user: i64, list: &[(i64, f64)]) {
        for (item, score) in self.collect_desc(user, None, None) {
            self.fwd
                .remove(&fwd_key(user, score, item))
                .expect(POOL_FAULT);
            self.rev
                .remove(&rev_key(user, item, score))
                .expect(POOL_FAULT);
            self.entries -= 1;
        }
        self.counts.remove(&user);
        let mut added = 0usize;
        for &(item, score) in list {
            if self
                .fwd
                .insert(fwd_key(user, score, item))
                .expect(POOL_FAULT)
            {
                added += 1;
            }
            self.rev
                .insert(rev_key(user, item, score))
                .expect(POOL_FAULT);
        }
        if added > 0 {
            self.counts.insert(user, added);
        }
        self.entries += added;
        self.complete.insert(user);
    }

    fn collect_desc(
        &self,
        user: i64,
        min_score: Option<f64>,
        max_score: Option<f64>,
    ) -> Vec<(i64, f64)> {
        if !self.has_user(user) {
            return Vec::new();
        }
        // In the forward key space the *highest* score sorts first, so the
        // range's low end carries the max bound and vice versa.
        let lo = fwd_key(user, max_score.unwrap_or(f64::INFINITY), i64::MAX);
        let hi = successor(fwd_key(
            user,
            min_score.unwrap_or(f64::NEG_INFINITY),
            i64::MIN,
        ));
        let mut out = Vec::new();
        self.fwd
            .for_each_range(&lo, hi.as_ref(), |k| {
                let (_, item, score) = fwd_decode(k);
                out.push((item, score));
                true
            })
            .expect(POOL_FAULT);
        out
    }

    /// Iterate a user's `(item, score)` entries in **descending** score
    /// order — Algorithm 3's Phase II/III traversal. Optional inclusive
    /// score bounds implement the `rPred` rating-value filter.
    pub fn iter_desc(
        &self,
        user: i64,
        min_score: Option<f64>,
        max_score: Option<f64>,
    ) -> impl Iterator<Item = (i64, f64)> + '_ {
        self.collect_desc(user, min_score, max_score).into_iter()
    }

    /// All materialized users (arbitrary order).
    pub fn users(&self) -> impl Iterator<Item = i64> + '_ {
        self.counts.keys().copied()
    }

    /// Every materialized `(user, item, score)` entry (user-major,
    /// descending score within a user) — used when re-scoring
    /// materialized entries after a model rebuild.
    pub fn iter_all(&self) -> impl Iterator<Item = (i64, i64, f64)> + '_ {
        let mut out = Vec::with_capacity(self.entries);
        self.fwd
            .for_each_range(&[0u8; 24], None, |k| {
                out.push(fwd_decode(k));
                true
            })
            .expect(POOL_FAULT);
        out.into_iter()
    }

    /// Drop everything (used when the model is rebuilt from scratch).
    pub fn clear(&mut self) {
        self.fwd.clear().expect(POOL_FAULT);
        self.rev.clear().expect(POOL_FAULT);
        self.counts.clear();
        self.complete.clear();
        self.entries = 0;
    }
}

impl Default for RecScoreIndex {
    fn default() -> Self {
        RecScoreIndex::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecScoreIndex {
        let mut idx = RecScoreIndex::new();
        idx.insert(1, 10, 4.5);
        idx.insert(1, 11, 2.0);
        idx.insert(1, 12, 5.0);
        idx.insert(2, 10, 3.0);
        idx
    }

    #[test]
    fn i64_encoding_is_order_preserving() {
        let vals = [i64::MIN, -7, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(enc_i64(w[0]) < enc_i64(w[1]), "{} < {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(dec_i64(&enc_i64(v)), v);
        }
    }

    #[test]
    fn f64_encoding_matches_total_cmp() {
        let vals = [
            f64::NEG_INFINITY,
            -5.5,
            -0.0,
            0.0,
            1.0e-300,
            2.0,
            f64::INFINITY,
            f64::NAN,
        ];
        for w in vals.windows(2) {
            assert!(enc_f64_asc(w[0]) < enc_f64_asc(w[1]), "{} < {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(dec_f64_asc(&enc_f64_asc(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn fwd_key_roundtrips_and_orders_descending() {
        let (u, i, s) = fwd_decode(&fwd_key(3, 4.25, -9));
        assert_eq!((u, i, s), (3, -9, 4.25));
        // Higher score sorts first; ties broken by higher item id first.
        assert!(fwd_key(1, 5.0, 2) < fwd_key(1, 4.0, 2));
        assert!(fwd_key(1, 3.0, 8) < fwd_key(1, 3.0, 7));
        // User is the major dimension.
        assert!(fwd_key(1, -10.0, 0) < fwd_key(2, 10.0, 0));
    }

    #[test]
    fn desc_iteration_orders_by_score() {
        let idx = sample();
        let items: Vec<i64> = idx.iter_desc(1, None, None).map(|(i, _)| i).collect();
        assert_eq!(items, vec![12, 10, 11]);
    }

    #[test]
    fn score_range_filter() {
        let idx = sample();
        let items: Vec<i64> = idx
            .iter_desc(1, Some(2.5), Some(4.5))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(items, vec![10], "only 4.5 is within [2.5, 4.5]");
        let items: Vec<i64> = idx.iter_desc(1, Some(2.0), None).map(|(i, _)| i).collect();
        assert_eq!(items, vec![12, 10, 11], "inclusive lower bound");
    }

    #[test]
    fn insert_refreshes_score() {
        let mut idx = sample();
        assert_eq!(idx.len(), 4);
        idx.insert(1, 10, 1.0); // re-score, not a new entry
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.get(1, 10), Some(1.0));
        let items: Vec<i64> = idx.iter_desc(1, None, None).map(|(i, _)| i).collect();
        assert_eq!(items, vec![12, 11, 10]);
    }

    #[test]
    fn remove_evicts_and_cleans_empty_users() {
        let mut idx = sample();
        assert!(idx.remove(2, 10));
        assert!(!idx.has_user(2), "user with no entries disappears");
        assert!(!idx.remove(2, 10), "double eviction is a no-op");
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn missing_user_iterates_empty() {
        let idx = sample();
        assert_eq!(idx.iter_desc(99, None, None).count(), 0);
        assert_eq!(idx.get(99, 1), None);
    }

    #[test]
    fn equal_scores_are_kept_distinct_by_item() {
        let mut idx = RecScoreIndex::new();
        idx.insert(1, 7, 3.0);
        idx.insert(1, 8, 3.0);
        assert_eq!(idx.len(), 2);
        let items: Vec<i64> = idx.iter_desc(1, None, None).map(|(i, _)| i).collect();
        assert_eq!(items, vec![8, 7], "ties broken by item id, descending");
    }

    #[test]
    fn negative_ids_and_scores_order_correctly() {
        let mut idx = RecScoreIndex::new();
        idx.insert(-5, -3, -1.5);
        idx.insert(-5, -4, 2.5);
        idx.insert(-5, 6, 0.0);
        let got: Vec<(i64, f64)> = idx.iter_desc(-5, None, None).collect();
        assert_eq!(got, vec![(-4, 2.5), (6, 0.0), (-3, -1.5)]);
        assert_eq!(idx.get(-5, -3), Some(-1.5));
    }

    #[test]
    fn completeness_tracking() {
        let mut idx = sample();
        assert!(!idx.is_complete(1));
        idx.mark_complete(1);
        assert!(idx.is_complete(1));
        // Evicting any pair of the user invalidates completeness.
        idx.remove(1, 11);
        assert!(!idx.is_complete(1));
    }

    #[test]
    fn clear_resets() {
        let mut idx = sample();
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.user_count(), 0);
    }

    #[test]
    fn replace_user_list_swaps_and_completes() {
        let mut idx = sample();
        idx.replace_user_list(1, &[(20, 9.0), (21, 8.0)]);
        assert!(idx.is_complete(1));
        let got: Vec<i64> = idx.iter_desc(1, None, None).map(|(i, _)| i).collect();
        assert_eq!(got, vec![20, 21]);
        assert_eq!(idx.len(), 3, "user 2's entry survives");
        idx.replace_user_list(1, &[]);
        assert!(!idx.has_user(1));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn iter_all_covers_every_entry() {
        let idx = sample();
        let mut all: Vec<(i64, i64, f64)> = idx.iter_all().collect();
        all.sort_by_key(|a| (a.0, a.1));
        assert_eq!(
            all,
            vec![(1, 10, 4.5), (1, 11, 2.0), (1, 12, 5.0), (2, 10, 3.0)]
        );
    }

    #[test]
    fn works_under_a_tiny_shared_pool() {
        // Both trees page through 6 frames; the dataset spans far more
        // node pages than that, so iteration exercises real eviction.
        let pool = Arc::new(BufferPool::in_memory(6));
        let mut idx = RecScoreIndex::with_pool(Arc::clone(&pool), 8);
        for user in 0..20 {
            for item in 0..50 {
                idx.insert(user, item, (item % 11) as f64 - (user % 3) as f64);
            }
        }
        assert_eq!(idx.len(), 20 * 50);
        assert!(pool.evictions() > 0, "tiny pool must evict");
        for user in 0..20 {
            let scores: Vec<f64> = idx.iter_desc(user, None, None).map(|(_, s)| s).collect();
            assert_eq!(scores.len(), 50);
            assert!(scores.windows(2).all(|w| w[0] >= w[1]), "descending");
        }
        assert_eq!(pool.pinned_pages(), 0, "no pins may outlive a scan");
    }
}
