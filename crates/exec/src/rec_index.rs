//! `RecScoreIndex` — the pre-computed recommendation score index (§IV-C).
//!
//! The paper's structure (Figure 4) is a hash table from user id to a
//! per-user B+-tree keyed by predicted rating, whose leaves point to items
//! in descending score order. Here each per-user tree is a `BTreeMap`
//! keyed by `(score, item)` with a total order on the score, plus an
//! item → score side map so the cache manager can evict a specific
//! user/item pair without knowing its score.

use std::collections::{BTreeMap, HashMap, HashSet};

/// A B+-tree key ordering floats totally (NaN-safe) then by item id.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ScoreKey {
    score: f64,
    item: i64,
}

impl Eq for ScoreKey {}

impl PartialOrd for ScoreKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoreKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| self.item.cmp(&other.item))
    }
}

/// Per-user score tree (the paper's `RecTree_u`).
#[derive(Debug, Clone, Default)]
struct RecTree {
    tree: BTreeMap<ScoreKey, ()>,
    by_item: HashMap<i64, f64>,
}

impl RecTree {
    fn insert(&mut self, item: i64, score: f64) {
        if let Some(old) = self.by_item.insert(item, score) {
            self.tree.remove(&ScoreKey { score: old, item });
        }
        self.tree.insert(ScoreKey { score, item }, ());
    }

    fn remove(&mut self, item: i64) -> bool {
        match self.by_item.remove(&item) {
            Some(score) => {
                self.tree.remove(&ScoreKey { score, item });
                true
            }
            None => false,
        }
    }
}

/// The pre-computed score index: user → RecTree.
#[derive(Debug, Clone, Default)]
pub struct RecScoreIndex {
    trees: HashMap<i64, RecTree>,
    /// Users whose *entire* unseen-item list is materialized. Only these
    /// can serve IndexRecommend top-k queries soundly; partially-admitted
    /// users (Algorithm 4 admits per pair) only accelerate point lookups.
    complete: HashSet<i64>,
    entries: usize,
}

impl RecScoreIndex {
    /// An empty index.
    pub fn new() -> Self {
        RecScoreIndex::default()
    }

    /// Number of materialized `(user, item, score)` entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when nothing is materialized.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of users with at least one materialized entry.
    pub fn user_count(&self) -> usize {
        self.trees.len()
    }

    /// Whether user `u` has any materialized entries.
    pub fn has_user(&self, user: i64) -> bool {
        self.trees.contains_key(&user)
    }

    /// Materialize (or refresh) one entry.
    pub fn insert(&mut self, user: i64, item: i64, score: f64) {
        let tree = self.trees.entry(user).or_default();
        let before = tree.by_item.len();
        tree.insert(item, score);
        if tree.by_item.len() > before {
            self.entries += 1;
        }
    }

    /// Mark a user's list as fully materialized (every unseen item is
    /// present). Set by the engine's materialization step, cleared by any
    /// eviction touching the user.
    pub fn mark_complete(&mut self, user: i64) {
        self.complete.insert(user);
    }

    /// Whether the user's full unseen-item list is materialized.
    pub fn is_complete(&self, user: i64) -> bool {
        self.complete.contains(&user)
    }

    /// Evict one entry; returns whether it was present.
    pub fn remove(&mut self, user: i64, item: i64) -> bool {
        let Some(tree) = self.trees.get_mut(&user) else {
            return false;
        };
        let removed = tree.remove(item);
        if removed {
            self.complete.remove(&user);
            self.entries -= 1;
            if tree.by_item.is_empty() {
                self.trees.remove(&user);
            }
        }
        removed
    }

    /// The materialized score for a pair, if present.
    pub fn get(&self, user: i64, item: i64) -> Option<f64> {
        self.trees.get(&user)?.by_item.get(&item).copied()
    }

    /// Iterate a user's `(item, score)` entries in **descending** score
    /// order — Algorithm 3's Phase II/III traversal. Optional inclusive
    /// score bounds implement the `rPred` rating-value filter.
    pub fn iter_desc(
        &self,
        user: i64,
        min_score: Option<f64>,
        max_score: Option<f64>,
    ) -> impl Iterator<Item = (i64, f64)> + '_ {
        let lo = ScoreKey {
            score: min_score.unwrap_or(f64::NEG_INFINITY),
            item: i64::MIN,
        };
        let hi = ScoreKey {
            score: max_score.unwrap_or(f64::INFINITY),
            item: i64::MAX,
        };
        self.trees.get(&user).into_iter().flat_map(move |tree| {
            tree.tree
                .range(lo..=hi)
                .rev()
                .map(|(k, _)| (k.item, k.score))
        })
    }

    /// All materialized users (arbitrary order).
    pub fn users(&self) -> impl Iterator<Item = i64> + '_ {
        self.trees.keys().copied()
    }

    /// Every materialized `(user, item, score)` entry (arbitrary order) —
    /// used when re-scoring materialized entries after a model rebuild.
    pub fn iter_all(&self) -> impl Iterator<Item = (i64, i64, f64)> + '_ {
        self.trees.iter().flat_map(|(&user, tree)| {
            tree.by_item
                .iter()
                .map(move |(&item, &score)| (user, item, score))
        })
    }

    /// Drop everything (used when the model is rebuilt from scratch).
    pub fn clear(&mut self) {
        self.trees.clear();
        self.complete.clear();
        self.entries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecScoreIndex {
        let mut idx = RecScoreIndex::new();
        idx.insert(1, 10, 4.5);
        idx.insert(1, 11, 2.0);
        idx.insert(1, 12, 5.0);
        idx.insert(2, 10, 3.0);
        idx
    }

    #[test]
    fn desc_iteration_orders_by_score() {
        let idx = sample();
        let items: Vec<i64> = idx.iter_desc(1, None, None).map(|(i, _)| i).collect();
        assert_eq!(items, vec![12, 10, 11]);
    }

    #[test]
    fn score_range_filter() {
        let idx = sample();
        let items: Vec<i64> = idx
            .iter_desc(1, Some(2.5), Some(4.5))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(items, vec![10], "only 4.5 is within [2.5, 4.5]");
        let items: Vec<i64> = idx.iter_desc(1, Some(2.0), None).map(|(i, _)| i).collect();
        assert_eq!(items, vec![12, 10, 11], "inclusive lower bound");
    }

    #[test]
    fn insert_refreshes_score() {
        let mut idx = sample();
        assert_eq!(idx.len(), 4);
        idx.insert(1, 10, 1.0); // re-score, not a new entry
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.get(1, 10), Some(1.0));
        let items: Vec<i64> = idx.iter_desc(1, None, None).map(|(i, _)| i).collect();
        assert_eq!(items, vec![12, 11, 10]);
    }

    #[test]
    fn remove_evicts_and_cleans_empty_users() {
        let mut idx = sample();
        assert!(idx.remove(2, 10));
        assert!(!idx.has_user(2), "user with no entries disappears");
        assert!(!idx.remove(2, 10), "double eviction is a no-op");
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn missing_user_iterates_empty() {
        let idx = sample();
        assert_eq!(idx.iter_desc(99, None, None).count(), 0);
        assert_eq!(idx.get(99, 1), None);
    }

    #[test]
    fn equal_scores_are_kept_distinct_by_item() {
        let mut idx = RecScoreIndex::new();
        idx.insert(1, 7, 3.0);
        idx.insert(1, 8, 3.0);
        assert_eq!(idx.len(), 2);
        let items: Vec<i64> = idx.iter_desc(1, None, None).map(|(i, _)| i).collect();
        assert_eq!(items, vec![8, 7], "ties broken by item id, descending");
    }

    #[test]
    fn completeness_tracking() {
        let mut idx = sample();
        assert!(!idx.is_complete(1));
        idx.mark_complete(1);
        assert!(idx.is_complete(1));
        // Evicting any pair of the user invalidates completeness.
        idx.remove(1, 11);
        assert!(!idx.is_complete(1));
    }

    #[test]
    fn clear_resets() {
        let mut idx = sample();
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.user_count(), 0);
    }
}
