//! # recdb-ontop
//!
//! The **OnTopDB** baseline of the paper's evaluation (§I, §VI): the
//! recommendation functionality implemented *on top of* the database
//! engine, the way an application would wire LensKit/Mahout to PostgreSQL.
//!
//! The baseline deliberately reproduces both costs the paper attributes to
//! this architecture:
//!
//! 1. **Data movement** — ratings are extracted from the database with a
//!    full scan, the model lives in the application's memory, and the
//!    produced predictions are bulk-loaded *back into the database* before
//!    the query's filters/joins/top-k run over them as ordinary SQL.
//! 2. **All-pairs prediction** — "OnTopDB processes a recommendation query
//!    for all the users before recommending the items to a particular
//!    user" (§VI-B): every query recomputes the full prediction table
//!    regardless of how selective its predicates are.
//!
//! [`PredictionScope`] lets ablations relax cost 2 (predict for the query
//! user only) to separate the two effects.

use recdb_algo::model::TrainConfig;
use recdb_algo::{Algorithm, RecModel};
use recdb_core::recommender::load_matrix;
use recdb_core::{EngineError, EngineResult, RecDb};
use recdb_exec::ResultSet;
use recdb_storage::{DataType, Schema, Tuple, Value};
use std::time::{Duration, Instant};

/// The name of the table OnTopDB loads predictions into.
pub const PREDICTIONS_TABLE: &str = "_ontop_predictions";

/// How much of the prediction matrix each query recomputes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionScope {
    /// The paper's OnTopDB: predict for every user (default).
    AllUsers,
    /// Ablation: predict only for one user (a smarter application layer).
    SingleUser(i64),
}

/// An external recommendation engine bolted onto the database.
pub struct OnTopEngine {
    algorithm: Algorithm,
    ratings_table: String,
    model: RecModel,
    build_time: Duration,
}

impl OnTopEngine {
    /// Extract the ratings from the database and train the model in
    /// application memory (the extract + load half of cost 1).
    pub fn build(
        db: &RecDb,
        ratings_table: &str,
        users_column: &str,
        items_column: &str,
        ratings_column: &str,
        algorithm: Algorithm,
        config: &TrainConfig,
    ) -> EngineResult<Self> {
        let started = Instant::now();
        let matrix = {
            let catalog = db.catalog();
            load_matrix(
                &catalog,
                ratings_table,
                users_column,
                items_column,
                ratings_column,
            )?
        };
        let model = RecModel::train(algorithm, matrix, config);
        Ok(OnTopEngine {
            algorithm,
            ratings_table: ratings_table.to_ascii_lowercase(),
            model,
            build_time: started.elapsed(),
        })
    }

    /// The algorithm this engine was trained with.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The ratings table the model was extracted from.
    pub fn ratings_table(&self) -> &str {
        &self.ratings_table
    }

    /// Extraction + training time (Table II's OnTopDB-side counterpart).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// The trained model (read access for tests).
    pub fn model(&self) -> &RecModel {
        &self.model
    }

    /// Compute the prediction rows for the given scope: one
    /// `(uid, iid, ratingval)` row per unseen pair.
    pub fn predict_rows(&self, scope: PredictionScope) -> Vec<Tuple> {
        let matrix = self.model.matrix();
        let users: Vec<i64> = match scope {
            PredictionScope::AllUsers => matrix.user_ids().to_vec(),
            PredictionScope::SingleUser(u) => vec![u],
        };
        let mut rows = Vec::new();
        for &user in &users {
            for &item in matrix.item_ids() {
                if matrix.rating_of(user, item).is_some() {
                    continue;
                }
                let score = self.model.predict(user, item).unwrap_or(0.0);
                rows.push(Tuple::new(vec![
                    Value::Int(user),
                    Value::Int(item),
                    Value::Float(score),
                ]));
            }
        }
        rows
    }
}

/// The OnTopDB application: a database plus external engines.
pub struct OnTopDb {
    db: RecDb,
    engines: Vec<OnTopEngine>,
}

impl OnTopDb {
    /// Wrap a database. The predictions table is created eagerly.
    pub fn new(db: RecDb) -> EngineResult<Self> {
        if !db.catalog().contains(PREDICTIONS_TABLE) {
            db.catalog_mut().create_table(
                PREDICTIONS_TABLE,
                Schema::from_pairs(&[
                    ("uid", DataType::Int),
                    ("iid", DataType::Int),
                    ("ratingval", DataType::Float),
                ]),
            )?;
        }
        Ok(OnTopDb {
            db,
            engines: Vec::new(),
        })
    }

    /// The underlying database.
    pub fn db(&self) -> &RecDb {
        &self.db
    }

    /// Mutable access to the underlying database (loading data).
    pub fn db_mut(&mut self) -> &mut RecDb {
        &mut self.db
    }

    /// Extract + train an external engine (counterpart of
    /// `CREATE RECOMMENDER`).
    pub fn create_recommender(
        &mut self,
        ratings_table: &str,
        users_column: &str,
        items_column: &str,
        ratings_column: &str,
        algorithm: Algorithm,
    ) -> EngineResult<Duration> {
        let config = self.db.config().train;
        let engine = OnTopEngine::build(
            &self.db,
            ratings_table,
            users_column,
            items_column,
            ratings_column,
            algorithm,
            &config,
        )?;
        let build_time = engine.build_time();
        self.engines
            .retain(|e| !(e.ratings_table == engine.ratings_table && e.algorithm == algorithm));
        self.engines.push(engine);
        Ok(build_time)
    }

    fn engine(&self, ratings_table: &str, algorithm: Algorithm) -> EngineResult<&OnTopEngine> {
        self.engines
            .iter()
            .find(|e| {
                e.ratings_table.eq_ignore_ascii_case(ratings_table) && e.algorithm == algorithm
            })
            .ok_or_else(|| {
                EngineError::RecommenderNotFound(format!(
                    "OnTopDB engine for `{ratings_table}` using {algorithm}"
                ))
            })
    }

    /// Run one recommendation query the OnTopDB way:
    ///
    /// 1. recompute predictions (scope per [`PredictionScope`]),
    /// 2. truncate and bulk-load [`PREDICTIONS_TABLE`],
    /// 3. execute `residual_sql` — plain SQL that reads
    ///    `_ontop_predictions` (and any other tables) to apply the query's
    ///    filters, joins, ordering, and limit.
    pub fn run(
        &mut self,
        ratings_table: &str,
        algorithm: Algorithm,
        scope: PredictionScope,
        residual_sql: &str,
    ) -> EngineResult<ResultSet> {
        let rows = self.engine(ratings_table, algorithm)?.predict_rows(scope);
        {
            let mut catalog = self.db.catalog_mut();
            let table = catalog.table_mut(PREDICTIONS_TABLE)?;
            table.truncate()?;
            table.insert_many(rows)?;
        }
        self.db.query(residual_sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1 world loaded into a fresh database.
    fn base_db() -> RecDb {
        let db = RecDb::new();
        db.execute_script(
            "CREATE TABLE movies (mid INT, name TEXT, genre TEXT);
             CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
             INSERT INTO movies VALUES (1, 'Spartacus', 'Action'),
                                       (2, 'Inception', 'Suspense'),
                                       (3, 'The Matrix', 'Sci-Fi');
             INSERT INTO ratings VALUES (1, 1, 1.5), (2, 2, 3.5), (2, 1, 4.5),
                                        (2, 3, 2.0), (3, 2, 1.0), (3, 1, 2.0), (4, 2, 1.0);",
        )
        .unwrap();
        db
    }

    fn ontop() -> OnTopDb {
        let mut o = OnTopDb::new(base_db()).unwrap();
        o.create_recommender("ratings", "uid", "iid", "ratingval", Algorithm::ItemCosCF)
            .unwrap();
        o
    }

    #[test]
    fn predictions_cover_all_unseen_pairs() {
        let o = ontop();
        let rows = o
            .engine("ratings", Algorithm::ItemCosCF)
            .unwrap()
            .predict_rows(PredictionScope::AllUsers);
        // 4 users × 3 items − 7 rated = 5 unseen pairs.
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn single_user_scope_is_smaller() {
        let o = ontop();
        let engine = o.engine("ratings", Algorithm::ItemCosCF).unwrap();
        let all = engine.predict_rows(PredictionScope::AllUsers).len();
        let one = engine.predict_rows(PredictionScope::SingleUser(1)).len();
        assert_eq!(one, 2);
        assert!(one < all);
    }

    #[test]
    fn run_loads_predictions_then_filters() {
        let mut o = ontop();
        let result = o
            .run(
                "ratings",
                Algorithm::ItemCosCF,
                PredictionScope::AllUsers,
                "SELECT P.iid, P.ratingval FROM _ontop_predictions AS P \
                 WHERE P.uid = 1 ORDER BY P.ratingval DESC LIMIT 10",
            )
            .unwrap();
        assert_eq!(result.len(), 2);
        // The predictions table holds the full matrix even though the
        // query asked for one user — that's the OnTopDB inefficiency.
        assert_eq!(
            o.db()
                .catalog()
                .table(PREDICTIONS_TABLE)
                .unwrap()
                .tuple_count(),
            5
        );
    }

    #[test]
    fn ontop_matches_recdb_answers() {
        // Same data, same algorithm → identical recommendation sets.
        let recdb = base_db();
        recdb
            .execute(
                "CREATE RECOMMENDER R ON ratings USERS FROM uid ITEMS FROM iid \
                 RATINGS FROM ratingval USING ItemCosCF",
            )
            .unwrap();
        let native = recdb
            .query(
                "SELECT R.iid, R.ratingval FROM ratings AS R \
                 RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                 WHERE R.uid = 1 ORDER BY R.iid",
            )
            .unwrap();
        let mut o = ontop();
        let baseline = o
            .run(
                "ratings",
                Algorithm::ItemCosCF,
                PredictionScope::AllUsers,
                "SELECT P.iid, P.ratingval FROM _ontop_predictions AS P \
                 WHERE P.uid = 1 ORDER BY P.iid",
            )
            .unwrap();
        assert_eq!(native.len(), baseline.len());
        for (a, b) in native.rows().iter().zip(baseline.rows()) {
            assert_eq!(a.get(0), b.get(0));
            let (x, y) = (
                a.get(1).unwrap().as_f64().unwrap(),
                b.get(1).unwrap().as_f64().unwrap(),
            );
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn run_with_join_over_predictions() {
        let mut o = ontop();
        let result = o
            .run(
                "ratings",
                Algorithm::ItemCosCF,
                PredictionScope::AllUsers,
                "SELECT M.name, P.ratingval \
                 FROM _ontop_predictions AS P, movies AS M \
                 WHERE P.uid = 4 AND M.mid = P.iid AND M.genre = 'Sci-Fi'",
            )
            .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(
            result.value(0, "name").unwrap().as_text(),
            Some("The Matrix")
        );
    }

    #[test]
    fn reruns_replace_previous_predictions() {
        let mut o = ontop();
        for _ in 0..3 {
            o.run(
                "ratings",
                Algorithm::ItemCosCF,
                PredictionScope::AllUsers,
                "SELECT P.uid FROM _ontop_predictions AS P LIMIT 1",
            )
            .unwrap();
        }
        assert_eq!(
            o.db()
                .catalog()
                .table(PREDICTIONS_TABLE)
                .unwrap()
                .tuple_count(),
            5,
            "truncate-and-reload, not append"
        );
    }

    #[test]
    fn missing_engine_reported() {
        let mut o = ontop();
        let err = o
            .run(
                "ratings",
                Algorithm::Svd,
                PredictionScope::AllUsers,
                "SELECT P.uid FROM _ontop_predictions AS P",
            )
            .unwrap_err();
        assert!(err.to_string().contains("SVD"));
    }
}
