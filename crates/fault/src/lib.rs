//! Deterministic fault injection for robustness testing.
//!
//! Engine code marks *named sites* — places where a real deployment could
//! fail (an allocation, a worker thread, an I/O call) — with
//! [`fail_point`]. In production builds the call is a single relaxed
//! atomic load and nothing else. Tests arm a site to trigger on its Nth
//! hit, either returning a [`FaultError`] ([`arm_error`]) or panicking
//! ([`arm_panic`]), and then drive the engine through the site to prove
//! the failure unwinds cleanly.
//!
//! Site names are `crate::operation` (e.g. `storage::heap_append`,
//! `core::materialize_worker`, `algo::svd_epoch`): the crate that hosts
//! the call site, then a short snake_case verb phrase for the operation.
//!
//! A triggered site *disarms itself*, so a retried operation succeeds —
//! this mirrors a transient production fault and is what the
//! retry-after-failure tests rely on.
//!
//! The registry is process-global. Tests that arm sites must serialize
//! via [`exclusive`] so concurrent tests don't observe each other's
//! faults.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Error produced by a triggered fault-injection site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The site that fired, e.g. `storage::heap_append`.
    pub site: &'static str,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at site `{}`", self.site)
    }
}

impl std::error::Error for FaultError {}

/// What happens when an armed site triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// `fail_point` returns `Err(FaultError)`.
    Error,
    /// `fail_point` panics (exercises `catch_unwind` containment).
    Panic,
}

#[derive(Debug)]
struct SiteState {
    /// Total `fail_point` evaluations for this site since last `clear`.
    hits: u64,
    /// Armed trigger: fire when `hits` reaches this value.
    trigger_at: Option<u64>,
    mode: FaultMode,
    /// Times this site has actually fired.
    triggered: u64,
}

impl SiteState {
    fn new() -> Self {
        SiteState {
            hits: 0,
            trigger_at: None,
            mode: FaultMode::Error,
            triggered: 0,
        }
    }
}

/// Fast path: when false, `fail_point` is a single relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<&'static str, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> MutexGuard<'static, HashMap<&'static str, SiteState>> {
    // A panicking fail_point poisons the mutex by design; later tests
    // still need the registry, so poisoning is not an error here.
    match registry().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Evaluate a named fault-injection site.
///
/// Returns `Ok(())` unless a test armed this site and this is the
/// triggering hit. On trigger the site disarms itself, then either
/// returns `Err(FaultError)` or panics depending on the armed
/// [`FaultMode`].
#[inline]
pub fn fail_point(site: &'static str) -> Result<(), FaultError> {
    if !ENABLED.load(Ordering::Relaxed) {
        return Ok(());
    }
    fail_point_slow(site)
}

#[cold]
fn fail_point_slow(site: &'static str) -> Result<(), FaultError> {
    let mode = {
        let mut map = lock_registry();
        let state = map.entry(site).or_insert_with(SiteState::new);
        state.hits += 1;
        match state.trigger_at {
            Some(n) if state.hits >= n => {
                state.trigger_at = None; // disarm: the fault is transient
                state.triggered += 1;
                Some(state.mode)
            }
            _ => None,
        }
    };
    match mode {
        None => Ok(()),
        Some(FaultMode::Error) => Err(FaultError { site }),
        Some(FaultMode::Panic) => panic!("injected panic at fault site `{site}`"),
    }
}

fn arm(site: &'static str, nth: u64, mode: FaultMode) {
    let mut map = lock_registry();
    let state = map.entry(site).or_insert_with(SiteState::new);
    // `nth` counts from the *current* hit count so re-arming after a
    // trigger behaves like a fresh schedule.
    state.trigger_at = Some(state.hits + nth.max(1));
    state.mode = mode;
    drop(map);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Arm `site` to return an error on its `nth` future hit (1-based).
pub fn arm_error(site: &'static str, nth: u64) {
    arm(site, nth, FaultMode::Error);
}

/// Arm `site` to panic on its `nth` future hit (1-based).
pub fn arm_panic(site: &'static str, nth: u64) {
    arm(site, nth, FaultMode::Panic);
}

/// Disarm every site, zero all counters, and restore the zero-cost
/// fast path.
pub fn clear() {
    let mut map = lock_registry();
    map.clear();
    drop(map);
    ENABLED.store(false, Ordering::SeqCst);
}

/// Total `fail_point` evaluations at `site` since the last [`clear`].
pub fn hits(site: &'static str) -> u64 {
    lock_registry().get(site).map_or(0, |s| s.hits)
}

/// How many times `site` actually fired since the last [`clear`].
pub fn triggered(site: &'static str) -> u64 {
    lock_registry().get(site).map_or(0, |s| s.triggered)
}

/// Derive a deterministic 1-based trigger hit for `site` from `seed`.
///
/// Used by the seeded CI sweep: every (seed, site) pair maps to a fixed
/// "fail on the Nth hit" schedule in `1..=max_nth`, so a failing seed
/// reproduces exactly.
pub fn schedule_nth(seed: u64, site: &str, max_nth: u64) -> u64 {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in site.bytes() {
        x ^= u64::from(b);
        x = x.wrapping_mul(0x100_0000_01B3);
    }
    // xorshift64 finisher
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    1 + x % max_nth.max(1)
}

/// Serialize tests that arm fault sites. The registry is process-global,
/// so any test calling [`arm_error`]/[`arm_panic`] must hold this for
/// its whole body (and `clear()` before releasing).
pub fn exclusive() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_site_is_ok_and_uncounted() {
        let _gate = exclusive();
        clear();
        assert_eq!(fail_point("fault::test_a"), Ok(()));
        assert_eq!(hits("fault::test_a"), 0, "fast path must not count");
        clear();
    }

    #[test]
    fn error_triggers_on_nth_hit_then_disarms() {
        let _gate = exclusive();
        clear();
        arm_error("fault::test_b", 3);
        assert_eq!(fail_point("fault::test_b"), Ok(()));
        assert_eq!(fail_point("fault::test_b"), Ok(()));
        assert_eq!(
            fail_point("fault::test_b"),
            Err(FaultError {
                site: "fault::test_b"
            })
        );
        // Disarmed: the retry path sees a healthy site.
        assert_eq!(fail_point("fault::test_b"), Ok(()));
        assert_eq!(hits("fault::test_b"), 4);
        assert_eq!(triggered("fault::test_b"), 1);
        clear();
    }

    #[test]
    fn panic_mode_panics_and_registry_survives() {
        let _gate = exclusive();
        clear();
        arm_panic("fault::test_c", 1);
        let r = std::panic::catch_unwind(|| fail_point("fault::test_c"));
        assert!(r.is_err(), "armed panic site must panic");
        assert_eq!(triggered("fault::test_c"), 1);
        assert_eq!(fail_point("fault::test_c"), Ok(()), "disarmed after panic");
        clear();
    }

    #[test]
    fn sites_are_independent() {
        let _gate = exclusive();
        clear();
        arm_error("fault::test_d", 1);
        assert_eq!(fail_point("fault::test_e"), Ok(()));
        assert!(fail_point("fault::test_d").is_err());
        clear();
    }

    #[test]
    fn schedule_is_deterministic_and_in_range() {
        for seed in [0, 1, 7, 42, u64::MAX] {
            for site in ["storage::heap_append", "algo::svd_epoch"] {
                let a = schedule_nth(seed, site, 10);
                let b = schedule_nth(seed, site, 10);
                assert_eq!(a, b);
                assert!((1..=10).contains(&a));
            }
        }
        // Different sites should (for these seeds) get different slots
        // at least once — guards against a degenerate constant hash.
        let spread: std::collections::HashSet<u64> = [1u64, 7, 42]
            .iter()
            .map(|&s| schedule_nth(s, "storage::heap_append", 1000))
            .collect();
        assert!(spread.len() > 1, "seeds must spread the schedule");
    }

    #[test]
    fn display_names_the_site() {
        let e = FaultError {
            site: "core::materialize_worker",
        };
        assert!(e.to_string().contains("core::materialize_worker"));
    }
}
