//! Per-operator actuals and the `EXPLAIN ANALYZE` profile tree.
//!
//! The executor wraps each physical operator in a metering shim that
//! records into an [`OpStats`] — atomic cells, because operators are
//! driven through `&mut` but the profile is read out after the fact
//! through shared `Arc`s. A finished statement yields a [`QueryProfile`]:
//! the operator tree annotated with rows produced, `next()` calls,
//! cumulative (children-inclusive) time, and peak buffered bytes for
//! materializing operators.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Actuals for one operator instance in one statement execution.
///
/// `elapsed_micros` is *inclusive*: it covers the operator and everything
/// below it, like the per-node times in PostgreSQL's `EXPLAIN ANALYZE`.
#[derive(Debug, Default)]
pub struct OpStats {
    rows_out: AtomicU64,
    next_calls: AtomicU64,
    elapsed_micros: AtomicU64,
    peak_buffered_bytes: AtomicU64,
}

impl OpStats {
    /// Record one `next()` invocation.
    pub fn record_call(&self) {
        self.next_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one tuple produced.
    pub fn record_row(&self) {
        self.rows_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Add time spent inside (and below) the operator.
    pub fn record_elapsed_micros(&self, micros: u64) {
        self.elapsed_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Raise the high-water mark of buffered bytes (no-op if `bytes` is
    /// below the current peak).
    pub fn record_buffered_bytes(&self, bytes: u64) {
        self.peak_buffered_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Tuples this operator produced.
    pub fn rows_out(&self) -> u64 {
        self.rows_out.load(Ordering::Relaxed)
    }

    /// Times `next()` was called on this operator.
    pub fn next_calls(&self) -> u64 {
        self.next_calls.load(Ordering::Relaxed)
    }

    /// Cumulative time in microseconds, children included.
    pub fn elapsed_micros(&self) -> u64 {
        self.elapsed_micros.load(Ordering::Relaxed)
    }

    /// Peak bytes buffered by the operator (0 for streaming operators).
    pub fn peak_buffered_bytes(&self) -> u64 {
        self.peak_buffered_bytes.load(Ordering::Relaxed)
    }
}

/// One node of the profiled plan tree: a display label, the recorded
/// actuals, and the profiled children in plan order.
#[derive(Debug, Clone)]
pub struct ProfiledOp {
    /// Display label, e.g. `SeqScan ratings AS r`.
    pub label: String,
    /// The actuals recorded while the statement ran.
    pub stats: Arc<OpStats>,
    /// Child operators, outermost input first.
    pub children: Vec<ProfiledOp>,
}

impl ProfiledOp {
    fn render_into(&self, out: &mut Vec<String>, depth: usize) {
        let indent = "  ".repeat(depth);
        let mut line = format!(
            "{indent}{} (rows={} calls={} time={})",
            self.label,
            self.stats.rows_out(),
            self.stats.next_calls(),
            format_micros(self.stats.elapsed_micros()),
        );
        let buffered = self.stats.peak_buffered_bytes();
        if buffered > 0 {
            line.push_str(&format!(" buffered={buffered}B"));
        }
        out.push(line);
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// The complete profile of one executed statement.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// The root of the profiled operator tree.
    pub root: ProfiledOp,
    /// Wall-clock microseconds for the whole statement (build + drain).
    pub total_micros: u64,
}

impl QueryProfile {
    /// Rows the root operator emitted — the statement's result
    /// cardinality.
    pub fn root_rows(&self) -> u64 {
        self.root.stats.rows_out()
    }

    /// Render the annotated tree, one line per operator, two-space
    /// indentation per level, followed by a total line:
    ///
    /// ```text
    /// TopKSort k=10 (rows=10 calls=11 time=0.412ms)
    ///   FilterRecommend ItemCosCF (rows=250 calls=251 time=0.377ms)
    /// Total: 0.430ms
    /// ```
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.root.render_into(&mut out, 0);
        out.push(format!("Total: {}", format_micros(self.total_micros)));
        out
    }
}

/// Format microseconds as fixed-point milliseconds (`0.412ms`).
fn format_micros(micros: u64) -> String {
    format!("{}.{:03}ms", micros / 1_000, micros % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rows: u64, calls: u64, micros: u64) -> Arc<OpStats> {
        let s = OpStats::default();
        for _ in 0..rows {
            s.record_row();
        }
        for _ in 0..calls {
            s.record_call();
        }
        s.record_elapsed_micros(micros);
        Arc::new(s)
    }

    #[test]
    fn stats_accumulate() {
        let s = OpStats::default();
        s.record_call();
        s.record_row();
        s.record_elapsed_micros(40);
        s.record_elapsed_micros(2);
        s.record_buffered_bytes(100);
        s.record_buffered_bytes(50);
        assert_eq!(s.next_calls(), 1);
        assert_eq!(s.rows_out(), 1);
        assert_eq!(s.elapsed_micros(), 42);
        assert_eq!(s.peak_buffered_bytes(), 100, "max, not last");
    }

    #[test]
    fn render_indents_children_and_appends_total() {
        let profile = QueryProfile {
            root: ProfiledOp {
                label: "Limit k=2".to_owned(),
                stats: stats(2, 3, 1_500),
                children: vec![ProfiledOp {
                    label: "SeqScan t AS t".to_owned(),
                    stats: stats(10, 11, 1_400),
                    children: Vec::new(),
                }],
            },
            total_micros: 1_600,
        };
        assert_eq!(
            profile.render(),
            vec![
                "Limit k=2 (rows=2 calls=3 time=1.500ms)",
                "  SeqScan t AS t (rows=10 calls=11 time=1.400ms)",
                "Total: 1.600ms",
            ]
        );
        assert_eq!(profile.root_rows(), 2);
    }

    #[test]
    fn buffered_bytes_only_rendered_when_nonzero() {
        let buffered = stats(1, 2, 10);
        buffered.record_buffered_bytes(64);
        let profile = QueryProfile {
            root: ProfiledOp {
                label: "Sort".to_owned(),
                stats: buffered,
                children: Vec::new(),
            },
            total_micros: 10,
        };
        assert_eq!(
            profile.render()[0],
            "Sort (rows=1 calls=2 time=0.010ms) buffered=64B"
        );
    }
}
