//! Counters, gauges, histograms, and the registry that names them.
//!
//! Hot-path recording is one atomic RMW per event: metric handles are
//! `Arc`-shared cells handed out by the [`Registry`], so callers resolve a
//! name once (a short mutex-guarded map lookup) and then record lock-free.
//! Series are identified by a canonical key `name{label="value",…}` with
//! labels sorted by label name, so the same logical series always lands in
//! the same cell regardless of call-site label order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    cell: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (e.g. materialized entries).
#[derive(Debug, Default)]
pub struct Gauge {
    cell: AtomicI64,
}

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations (microseconds, rows,
/// bytes). Buckets are upper bounds, exclusive of `+Inf` which is implicit;
/// counts are *per bucket* internally and cumulated only at render time,
/// so `observe` is a single `fetch_add` on the first bucket that fits.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Point-in-time copy of one histogram series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive), ascending. `+Inf` is implicit.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts, aligned with
    /// `bounds`. Observations above the last bound only appear in `count`.
    pub buckets: Vec<u64>,
    /// Total observations, including those above the last bound.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

/// Point-in-time copy of every registered series, keyed by canonical
/// series key (`name{label="value",…}`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: BTreeMap<String, u64>,
    /// All gauges.
    pub gauges: BTreeMap<String, i64>,
    /// All histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter series by exact key, 0 if never registered.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum of every counter series in a family (all label combinations of
    /// `name`).
    pub fn counter_family(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| family_of(k) == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Value of a gauge series by exact key, 0 if never registered.
    pub fn gauge(&self, key: &str) -> i64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// A histogram series by exact key.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(key)
    }

    /// Render in the Prometheus text exposition format: one `# TYPE` line
    /// per metric family, then one sample line per series. Histograms
    /// expand into the conventional `_bucket{le=…}` (cumulative),
    /// `_sum`, and `_count` samples.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_family_group(&mut out, "counter", self.counters.iter(), |out, key, v| {
            out.push_str(&format!("{key} {v}\n"));
        });
        render_family_group(&mut out, "gauge", self.gauges.iter(), |out, key, v| {
            out.push_str(&format!("{key} {v}\n"));
        });
        render_family_group(
            &mut out,
            "histogram",
            self.histograms.iter(),
            |out, key, h| {
                let (family, labels) = split_key(key);
                let with = |extra: &str| -> String {
                    match (labels, extra.is_empty()) {
                        (None, true) => String::new(),
                        (None, false) => format!("{{{extra}}}"),
                        (Some(l), true) => format!("{{{l}}}"),
                        (Some(l), false) => format!("{{{l},{extra}}}"),
                    }
                };
                let mut cumulative = 0u64;
                for (bound, n) in h.bounds.iter().zip(&h.buckets) {
                    cumulative += n;
                    let le = format!("le=\"{bound}\"");
                    out.push_str(&format!("{family}_bucket{} {cumulative}\n", with(&le)));
                }
                out.push_str(&format!(
                    "{family}_bucket{} {}\n",
                    with("le=\"+Inf\""),
                    h.count
                ));
                out.push_str(&format!("{family}_sum{} {}\n", with(""), h.sum));
                out.push_str(&format!("{family}_count{} {}\n", with(""), h.count));
            },
        );
        out
    }
}

/// Emit `# TYPE` headers per family and delegate sample rendering, for one
/// kind of metric. Assumes the iterator is sorted by key (BTreeMap order),
/// which groups each family's series together.
fn render_family_group<'a, V: 'a>(
    out: &mut String,
    kind: &str,
    series: impl Iterator<Item = (&'a String, &'a V)>,
    mut render: impl FnMut(&mut String, &str, &V),
) {
    let mut last_family = String::new();
    for (key, value) in series {
        let family = family_of(key);
        if family != last_family {
            out.push_str(&format!("# TYPE {family} {kind}\n"));
            last_family = family.to_owned();
        }
        render(out, key, value);
    }
}

/// The family name of a series key: everything before the label braces.
fn family_of(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Split a series key into `(family, labels-inside-braces)`.
fn split_key(key: &str) -> (&str, Option<&str>) {
    match key.split_once('{') {
        Some((family, rest)) => (family, rest.strip_suffix('}')),
        None => (key, None),
    }
}

/// The engine-wide metric registry. Cheap to share (`Arc<Registry>`);
/// every accessor takes `&self`, so `&self` query paths can both resolve
/// and record. Handles are memoized: asking for the same series twice
/// returns the same cell.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter series `name` (no labels).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter series `name{labels…}`, created on first use.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        Arc::clone(
            lock(&self.counters)
                .entry(series_key(name, labels))
                .or_default(),
        )
    }

    /// The gauge series `name` (no labels).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The gauge series `name{labels…}`, created on first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        Arc::clone(
            lock(&self.gauges)
                .entry(series_key(name, labels))
                .or_default(),
        )
    }

    /// The histogram series `name` with the given bucket upper bounds
    /// (no labels).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.histogram_with(name, bounds, &[])
    }

    /// The histogram series `name{labels…}`. `bounds` applies on first
    /// registration; later calls reuse the existing buckets regardless.
    pub fn histogram_with(
        &self,
        name: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        Arc::clone(
            lock(&self.histograms)
                .entry(series_key(name, labels))
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Copy every series into a plain value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Render the current state in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// Poison-tolerant lock: metrics must keep working after a contained
/// panic elsewhere in the engine.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Canonical series key: `name` alone, or `name{k="v",…}` with labels
/// sorted by label name and values minimally escaped.
fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{name}{{{}}}", body.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = Registry::new();
        r.counter("hits").inc();
        r.counter("hits").add(2);
        assert_eq!(r.snapshot().counter("hits"), 3);
        assert_eq!(r.snapshot().counter("nonexistent"), 0);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let r = Registry::new();
        r.counter_with("x", &[("b", "2"), ("a", "1")]).inc();
        r.counter_with("x", &[("a", "1"), ("b", "2")]).inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("x{a=\"1\",b=\"2\"}"), 2, "{snap:?}");
        assert_eq!(snap.counter_family("x"), 2);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(r.snapshot().gauge("depth"), 7);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let r = Registry::new();
        let h = r.histogram("lat", &[10, 100]);
        for v in [1, 10, 11, 1_000] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(
            hs.buckets,
            vec![2, 1],
            "le=10 gets 1 and 10; le=100 gets 11"
        );
        assert_eq!(hs.count, 4, "the 1000 overflows into +Inf only");
        assert_eq!(hs.sum, 1_022);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let r = Registry::new();
        r.counter_with("recdb_statements_total", &[("kind", "select")])
            .add(4);
        r.gauge("recdb_materialized_entries").set(5);
        r.histogram("recdb_model_build_micros", &[100, 1_000])
            .observe(150);
        let text = r.render();
        assert!(text.contains("# TYPE recdb_statements_total counter"));
        assert!(text.contains("recdb_statements_total{kind=\"select\"} 4"));
        assert!(text.contains("# TYPE recdb_materialized_entries gauge"));
        assert!(text.contains("recdb_materialized_entries 5"));
        assert!(text.contains("# TYPE recdb_model_build_micros histogram"));
        assert!(text.contains("recdb_model_build_micros_bucket{le=\"100\"} 0"));
        assert!(text.contains("recdb_model_build_micros_bucket{le=\"1000\"} 1"));
        assert!(text.contains("recdb_model_build_micros_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("recdb_model_build_micros_sum 150"));
        assert!(text.contains("recdb_model_build_micros_count 1"));
    }

    #[test]
    fn histogram_render_merges_labels_with_le() {
        let r = Registry::new();
        r.histogram_with("b", &[10], &[("algorithm", "SVD")])
            .observe(3);
        let text = r.render();
        assert!(
            text.contains("b_bucket{algorithm=\"SVD\",le=\"10\"} 1"),
            "{text}"
        );
        assert!(text.contains("b_sum{algorithm=\"SVD\"} 3"));
    }

    #[test]
    fn handles_are_shared() {
        let r = Arc::new(Registry::new());
        let c = r.counter("shared");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("counter thread");
        }
        assert_eq!(r.snapshot().counter("shared"), 4000);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("c", &[("q", "a\"b")]).inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("c{q=\"a\\\"b\"}"), 1);
    }
}
