//! Injectable time source.
//!
//! Everything in the observability layer that measures duration reads a
//! [`Clock`] instead of calling `Instant::now()` directly. Production code
//! uses [`SystemClock`]; deterministic tests (the fault/robustness suites,
//! the `EXPLAIN ANALYZE` golden outputs) inject a [`ManualClock`] and
//! advance it explicitly, so profile renderings are byte-stable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock. Implementations must be cheap to read:
/// the executor reads the clock twice per `next()` call when profiling.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds elapsed since some fixed, per-clock origin. Must be
    /// monotonically non-decreasing.
    fn now_micros(&self) -> u64;
}

/// The production clock: a monotonic [`Instant`] anchored at construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A clock that only moves when told to — the deterministic test double.
/// All clones of the same `Arc<ManualClock>` observe the same time.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A manual clock frozen at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Move time forward by `micros` microseconds.
    pub fn advance(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Jump to an absolute reading. Callers are responsible for keeping
    /// the clock monotonic; moving it backwards yields zero-length
    /// intervals (readers saturate), not panics.
    pub fn set(&self, micros: u64) {
        self.micros.store(micros, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        assert_eq!(c.now_micros(), 0);
        c.advance(250);
        assert_eq!(c.now_micros(), 250);
        c.set(1_000);
        assert_eq!(c.now_micros(), 1_000);
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<std::sync::Arc<dyn Clock>> = vec![
            std::sync::Arc::new(SystemClock::new()),
            std::sync::Arc::new(ManualClock::new()),
        ];
        for c in clocks {
            let _ = c.now_micros();
        }
    }
}
