//! # recdb-obs
//!
//! The observability core of RecDB-rs: a zero-dependency, deterministic
//! metrics layer the rest of the engine records into.
//!
//! Three pieces, deliberately small:
//!
//! * [`metrics`] — monotonic [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s behind an [`Registry`] of atomic cells, so `&self`
//!   query paths can record without locks on the hot path. The registry
//!   snapshots to a plain value type and renders in the Prometheus text
//!   exposition format.
//! * [`clock`] — the injectable [`Clock`] trait. Production code uses
//!   [`SystemClock`] (a monotonic `Instant`); the test suites inject a
//!   [`ManualClock`] so every timing-dependent output is byte-stable.
//! * [`profile`] — per-operator actuals ([`OpStats`]: rows out, `next()`
//!   calls, cumulative time, peak buffered bytes) assembled into a
//!   [`QueryProfile`] tree, the data behind `EXPLAIN ANALYZE`.
//!
//! Why no external tracing dependency: the build environment is fully
//! offline, and the engine only needs counters-plus-one-profile-tree —
//! a few hundred lines of atomics — not spans, subscribers, or an async
//! runtime. Keeping the crate `std`-only also keeps it usable from every
//! other crate in the workspace without dependency cycles.

#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod profile;

pub use clock::{Clock, ManualClock, SystemClock};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use profile::{OpStats, ProfiledOp, QueryProfile};
