//! The synthetic dataset generator.
//!
//! Ratings are sampled as follows:
//!
//! * the item of each rating is drawn from a Zipf(`skew`) distribution
//!   over items, the user from a Zipf(`skew`) distribution over users —
//!   real rating data is heavy-tailed in both dimensions;
//! * duplicate `(user, item)` pairs are rejected until the requested count
//!   of distinct ratings is reached (with a deterministic sweep fallback
//!   for very dense specs);
//! * the rating value has learnable structure: users and items belong to
//!   latent clusters with a random affinity matrix, plus per-user and
//!   per-item bias and noise, quantized to half-star steps and clamped to
//!   the rating scale.

use crate::spec::SyntheticSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A generated user row.
#[derive(Debug, Clone, PartialEq)]
pub struct UserRow {
    /// User id (1-based, like MovieLens).
    pub uid: i64,
    /// Display name.
    pub name: String,
    /// Home city label.
    pub city: String,
}

/// A generated item (movie / business) row.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemRow {
    /// Item id (1-based).
    pub iid: i64,
    /// Display name.
    pub name: String,
    /// Genre (movies) or category (businesses).
    pub genre: String,
    /// Planar location for POI datasets.
    pub location: Option<(f64, f64)>,
    /// City the POI falls in (empty for non-located datasets).
    pub city: String,
}

/// A city region (POI datasets): an axis-aligned rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct CityRow {
    /// City name.
    pub name: String,
    /// Region as `(min_x, min_y, max_x, max_y)`.
    pub rect: (f64, f64, f64, f64),
}

/// A complete generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (from the spec).
    pub name: String,
    /// Users.
    pub users: Vec<UserRow>,
    /// Items.
    pub items: Vec<ItemRow>,
    /// `(uid, iid, rating)` triples, distinct pairs.
    pub ratings: Vec<(i64, i64, f64)>,
    /// City regions (empty unless the spec has locations).
    pub cities: Vec<CityRow>,
}

const GENRES: [&str; 18] = [
    "Action",
    "Adventure",
    "Animation",
    "Comedy",
    "Crime",
    "Documentary",
    "Drama",
    "Fantasy",
    "Film-Noir",
    "Horror",
    "Musical",
    "Mystery",
    "Romance",
    "Sci-Fi",
    "Suspense",
    "Thriller",
    "War",
    "Western",
];

const CITY_NAMES: [&str; 16] = [
    "San Diego",
    "Minneapolis",
    "Austin",
    "Phoenix",
    "Tempe",
    "Seattle",
    "Portland",
    "Denver",
    "Chicago",
    "Boston",
    "Atlanta",
    "Madison",
    "Pittsburgh",
    "Charlotte",
    "Las Vegas",
    "Urbana",
];

/// World extent for POI locations (a planar 1,000 × 1,000 "metro area").
pub const WORLD: f64 = 1000.0;

/// Sampler over `0..n` with probability ∝ `1/(rank+1)^skew`.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, skew: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(skew);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let roll = rng.gen::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c < roll)
            .min(self.cumulative.len() - 1)
    }
}

/// Generate a dataset from a spec. Deterministic for a fixed seed.
pub fn generate(spec: &SyntheticSpec) -> Dataset {
    assert!(
        spec.n_ratings <= spec.n_users * spec.n_items,
        "cannot generate {} distinct ratings from a {}x{} matrix",
        spec.n_ratings,
        spec.n_users,
        spec.n_items
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Latent structure.
    let k = spec.n_clusters.max(1);
    let affinity: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let user_cluster: Vec<usize> = (0..spec.n_users).map(|_| rng.gen_range(0..k)).collect();
    let item_cluster: Vec<usize> = (0..spec.n_items).map(|_| rng.gen_range(0..k)).collect();
    let user_bias: Vec<f64> = (0..spec.n_users)
        .map(|_| rng.gen_range(-0.6..0.6))
        .collect();
    let item_bias: Vec<f64> = (0..spec.n_items)
        .map(|_| rng.gen_range(-0.6..0.6))
        .collect();
    let mid = (spec.rating_min + spec.rating_max) / 2.0;
    let half_span = (spec.rating_max - spec.rating_min) / 2.0;

    let rate = |u: usize, i: usize, rng: &mut StdRng| -> f64 {
        let structure = affinity[user_cluster[u]][item_cluster[i]] * half_span * 0.7;
        let noise = rng.gen_range(-0.5..0.5);
        let raw = mid + structure + user_bias[u] + item_bias[i] + noise;
        // Quantize to half-star steps, clamp to scale.
        let stepped = (raw * 2.0).round() / 2.0;
        stepped.clamp(spec.rating_min, spec.rating_max)
    };

    // Distinct (user, item) pair sampling with Zipf marginals.
    let user_zipf = Zipf::new(spec.n_users, spec.skew);
    let item_zipf = Zipf::new(spec.n_items, spec.skew);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(spec.n_ratings);
    let mut ratings = Vec::with_capacity(spec.n_ratings);
    let mut attempts = 0usize;
    let max_attempts = spec.n_ratings.saturating_mul(30).max(1024);
    while ratings.len() < spec.n_ratings && attempts < max_attempts {
        attempts += 1;
        let u = user_zipf.sample(&mut rng);
        let i = item_zipf.sample(&mut rng);
        if seen.insert((u as u32, i as u32)) {
            let value = rate(u, i, &mut rng);
            ratings.push(((u + 1) as i64, (i + 1) as i64, value));
        }
    }
    // Deterministic sweep fallback for very dense specs where rejection
    // sampling stalls.
    'sweep: for u in 0..spec.n_users {
        if ratings.len() >= spec.n_ratings {
            break 'sweep;
        }
        for i in 0..spec.n_items {
            if ratings.len() >= spec.n_ratings {
                break 'sweep;
            }
            if seen.insert((u as u32, i as u32)) {
                let value = rate(u, i, &mut rng);
                ratings.push(((u + 1) as i64, (i + 1) as i64, value));
            }
        }
    }

    // Users / items / cities.
    let kind = if spec.with_locations {
        "Business"
    } else {
        "Movie"
    };
    let cities: Vec<CityRow> = if spec.with_locations {
        // 4 × 4 grid of city rectangles tiling the world.
        let cell = WORLD / 4.0;
        (0..16)
            .map(|c| {
                let (gx, gy) = ((c % 4) as f64, (c / 4) as f64);
                CityRow {
                    name: CITY_NAMES[c].to_owned(),
                    rect: (gx * cell, gy * cell, (gx + 1.0) * cell, (gy + 1.0) * cell),
                }
            })
            .collect()
    } else {
        Vec::new()
    };
    let users = (0..spec.n_users)
        .map(|u| UserRow {
            uid: (u + 1) as i64,
            name: format!("user-{}", u + 1),
            city: CITY_NAMES[u % CITY_NAMES.len()].to_owned(),
        })
        .collect();
    let items = (0..spec.n_items)
        .map(|i| {
            let location = spec
                .with_locations
                .then(|| (rng.gen_range(0.0..WORLD), rng.gen_range(0.0..WORLD)));
            let city = match location {
                Some((x, y)) => {
                    let cell = WORLD / 4.0;
                    let gx = ((x / cell) as usize).min(3);
                    let gy = ((y / cell) as usize).min(3);
                    CITY_NAMES[gy * 4 + gx].to_owned()
                }
                None => String::new(),
            };
            ItemRow {
                iid: (i + 1) as i64,
                name: format!("{kind}-{}", i + 1),
                genre: GENRES[i % spec.n_genres.clamp(1, GENRES.len())].to_owned(),
                location,
                city,
            }
        })
        .collect();

    Dataset {
        name: spec.name.clone(),
        users,
        items,
        ratings,
        cities,
    }
}

impl Dataset {
    /// Ratings as `recdb_algo` inputs.
    pub fn algo_ratings(&self) -> Vec<recdb_algo::Rating> {
        self.ratings
            .iter()
            .map(|&(u, i, r)| recdb_algo::Rating::new(u, i, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small() -> Dataset {
        generate(&SyntheticSpec::movielens().scaled(0.05))
    }

    #[test]
    fn exact_cardinalities() {
        let d = small();
        let spec = SyntheticSpec::movielens().scaled(0.05);
        assert_eq!(d.users.len(), spec.n_users);
        assert_eq!(d.items.len(), spec.n_items);
        assert_eq!(d.ratings.len(), spec.n_ratings);
    }

    #[test]
    fn pairs_are_distinct_and_in_range() {
        let d = small();
        let mut seen = HashSet::new();
        for &(u, i, r) in &d.ratings {
            assert!(seen.insert((u, i)), "duplicate pair ({u},{i})");
            assert!((1..=d.users.len() as i64).contains(&u));
            assert!((1..=d.items.len() as i64).contains(&i));
            assert!((1.0..=5.0).contains(&r), "rating {r} out of scale");
            assert_eq!(r * 2.0, (r * 2.0).round(), "half-star steps");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.ratings, b.ratings);
        assert_eq!(a.items, b.items);
        let mut other_seed = SyntheticSpec::movielens().scaled(0.05);
        other_seed.seed = 1;
        let c = generate(&other_seed);
        assert_ne!(a.ratings, c.ratings);
    }

    #[test]
    fn item_popularity_is_skewed() {
        let d = small();
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for &(_, i, _) in &d.ratings {
            *counts.entry(i).or_default() += 1;
        }
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Top 10% of items should hold well over 10% of ratings.
        let top = sorted.len() / 10;
        let top_mass: usize = sorted[..top].iter().sum();
        let frac = top_mass as f64 / d.ratings.len() as f64;
        assert!(frac > 0.25, "top-decile mass only {frac}");
    }

    #[test]
    fn ratings_have_learnable_structure() {
        // ItemCosCF on a train split should beat global-mean guessing.
        use recdb_algo::eval::{evaluate, split};
        use recdb_algo::{model::TrainConfig, Algorithm};
        let d = generate(&SyntheticSpec::movielens().scaled(0.1));
        let (train, test) = split(&d.algo_ratings(), 0.2, 7);
        let mean = train.iter().map(|r| r.value).sum::<f64>() / train.len() as f64;
        let baseline_rmse =
            (test.iter().map(|r| (r.value - mean).powi(2)).sum::<f64>() / test.len() as f64).sqrt();
        let acc = evaluate(Algorithm::ItemCosCF, train, &test, &TrainConfig::default());
        assert!(
            acc.rmse < baseline_rmse,
            "CF rmse {} ≥ mean-baseline {}",
            acc.rmse,
            baseline_rmse
        );
    }

    #[test]
    fn yelp_has_locations_and_cities() {
        let d = generate(&SyntheticSpec::yelp().scaled(0.05));
        assert_eq!(d.cities.len(), 16);
        for item in &d.items {
            let (x, y) = item.location.expect("POI location");
            assert!((0.0..WORLD).contains(&x) && (0.0..WORLD).contains(&y));
            // The assigned city's rectangle contains the location.
            let city = d.cities.iter().find(|c| c.name == item.city).unwrap();
            let (ax, ay, bx, by) = city.rect;
            assert!(x >= ax && x <= bx && y >= ay && y <= by);
        }
        // City rectangles tile the world without overlap.
        let area: f64 = d
            .cities
            .iter()
            .map(|c| (c.rect.2 - c.rect.0) * (c.rect.3 - c.rect.1))
            .sum();
        assert!((area - WORLD * WORLD).abs() < 1e-6);
    }

    #[test]
    fn movie_dataset_has_no_locations() {
        let d = small();
        assert!(d.cities.is_empty());
        assert!(d.items.iter().all(|i| i.location.is_none()));
        assert!(d.items.iter().all(|i| !i.genre.is_empty()));
    }

    #[test]
    fn dense_spec_falls_back_to_sweep() {
        let spec = SyntheticSpec {
            name: "dense".into(),
            n_users: 10,
            n_items: 10,
            n_ratings: 100, // the full matrix
            ..SyntheticSpec::movielens()
        };
        let d = generate(&spec);
        assert_eq!(d.ratings.len(), 100);
    }

    #[test]
    #[should_panic(expected = "cannot generate")]
    fn impossible_spec_panics() {
        let spec = SyntheticSpec {
            n_users: 2,
            n_items: 2,
            n_ratings: 5,
            ..SyntheticSpec::movielens()
        };
        let _ = generate(&spec);
    }
}
