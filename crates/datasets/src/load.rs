//! Loading generated datasets into a [`RecDb`] instance.
//!
//! The table layouts mirror the paper's Figure 1 (movies) and §V (POIs):
//!
//! * `users(uid INT, name TEXT, city TEXT)`
//! * `movies(mid INT, name TEXT, genre TEXT)` — non-located datasets
//! * `businesses(bid INT, name TEXT, category TEXT, loc POINT, city TEXT)`
//!   plus `cities(name TEXT, geom RECT)` — located datasets
//! * `ratings(uid INT, iid INT, ratingval FLOAT)`

use crate::generate::Dataset;
use recdb_core::{EngineResult, RecDb};
use recdb_storage::{DataType, Schema, Tuple, Value};

/// Names of the tables a dataset was loaded into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedTables {
    /// The users table.
    pub users: String,
    /// The items table (`movies` or `businesses`).
    pub items: String,
    /// The ratings table.
    pub ratings: String,
    /// The cities table, when the dataset has locations.
    pub cities: Option<String>,
}

impl Dataset {
    /// Create the tables and bulk-load the rows. Table names are fixed by
    /// the layout above; loading twice into one engine is an error (drop
    /// the tables first).
    pub fn load_into(&self, db: &mut RecDb) -> EngineResult<LoadedTables> {
        let located = self.items.iter().any(|i| i.location.is_some());
        let items_table = if located { "businesses" } else { "movies" };

        db.catalog_mut().create_table(
            "users",
            Schema::from_pairs(&[
                ("uid", DataType::Int),
                ("name", DataType::Text),
                ("city", DataType::Text),
            ]),
        )?;
        if located {
            db.catalog_mut().create_table(
                items_table,
                Schema::from_pairs(&[
                    ("bid", DataType::Int),
                    ("name", DataType::Text),
                    ("category", DataType::Text),
                    ("loc", DataType::Point),
                    ("city", DataType::Text),
                ]),
            )?;
            db.catalog_mut().create_table(
                "cities",
                Schema::from_pairs(&[("name", DataType::Text), ("geom", DataType::Rect)]),
            )?;
        } else {
            db.catalog_mut().create_table(
                items_table,
                Schema::from_pairs(&[
                    ("mid", DataType::Int),
                    ("name", DataType::Text),
                    ("genre", DataType::Text),
                ]),
            )?;
        }
        db.catalog_mut().create_table(
            "ratings",
            Schema::from_pairs(&[
                ("uid", DataType::Int),
                ("iid", DataType::Int),
                ("ratingval", DataType::Float),
            ]),
        )?;

        let user_rows: Vec<Tuple> = self
            .users
            .iter()
            .map(|u| {
                Tuple::new(vec![
                    Value::Int(u.uid),
                    Value::Text(u.name.clone()),
                    Value::Text(u.city.clone()),
                ])
            })
            .collect();
        db.insert_tuples("users", user_rows)?;

        let item_rows: Vec<Tuple> = self
            .items
            .iter()
            .map(|i| {
                if located {
                    let (x, y) = i.location.expect("located dataset");
                    Tuple::new(vec![
                        Value::Int(i.iid),
                        Value::Text(i.name.clone()),
                        Value::Text(i.genre.clone()),
                        Value::Point(x, y),
                        Value::Text(i.city.clone()),
                    ])
                } else {
                    Tuple::new(vec![
                        Value::Int(i.iid),
                        Value::Text(i.name.clone()),
                        Value::Text(i.genre.clone()),
                    ])
                }
            })
            .collect();
        db.insert_tuples(items_table, item_rows)?;

        if located {
            let city_rows: Vec<Tuple> = self
                .cities
                .iter()
                .map(|c| {
                    Tuple::new(vec![
                        Value::Text(c.name.clone()),
                        Value::Rect(c.rect.0, c.rect.1, c.rect.2, c.rect.3),
                    ])
                })
                .collect();
            db.insert_tuples("cities", city_rows)?;
        }

        let rating_rows: Vec<Tuple> = self
            .ratings
            .iter()
            .map(|&(u, i, r)| Tuple::new(vec![Value::Int(u), Value::Int(i), Value::Float(r)]))
            .collect();
        db.insert_tuples("ratings", rating_rows)?;

        Ok(LoadedTables {
            users: "users".into(),
            items: items_table.into(),
            ratings: "ratings".into(),
            cities: located.then(|| "cities".into()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::spec::SyntheticSpec;

    #[test]
    fn load_movie_dataset() {
        let d = generate(&SyntheticSpec::movielens().scaled(0.02));
        let mut db = RecDb::new();
        let tables = d.load_into(&mut db).unwrap();
        assert_eq!(tables.items, "movies");
        assert_eq!(tables.cities, None);
        assert_eq!(
            db.catalog().table("ratings").unwrap().tuple_count() as usize,
            d.ratings.len()
        );
        assert_eq!(
            db.catalog().table("users").unwrap().tuple_count() as usize,
            d.users.len()
        );
        // SQL sees the data.
        let db = db;
        let rows = db.query("SELECT * FROM movies WHERE mid = 1").unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn load_poi_dataset_and_run_spatial_sql() {
        let d = generate(&SyntheticSpec::yelp().scaled(0.02));
        let mut db = RecDb::new();
        let tables = d.load_into(&mut db).unwrap();
        assert_eq!(tables.items, "businesses");
        assert_eq!(tables.cities.as_deref(), Some("cities"));
        // Paper Query 6 shape: spatial containment against a city region.
        let rows = db
            .query(
                "SELECT B.name FROM businesses AS B, cities AS C \
                 WHERE C.name = 'San Diego' AND ST_Contains(C.geom, B.loc)",
            )
            .unwrap();
        let in_city = d.items.iter().filter(|i| i.city == "San Diego").count();
        assert_eq!(rows.len(), in_city);
    }

    #[test]
    fn loaded_data_supports_create_recommender() {
        let d = generate(&SyntheticSpec::ldos_comoda().scaled(0.3));
        let mut db = RecDb::new();
        d.load_into(&mut db).unwrap();
        db.execute(
            "CREATE RECOMMENDER R ON ratings USERS FROM uid ITEMS FROM iid \
             RATINGS FROM ratingval USING ItemCosCF",
        )
        .unwrap();
        let rec = db.recommender("R").unwrap();
        assert_eq!(rec.model().trained_on(), d.ratings.len());
    }

    #[test]
    fn double_load_errors_cleanly() {
        let d = generate(&SyntheticSpec::movielens().scaled(0.01));
        let mut db = RecDb::new();
        d.load_into(&mut db).unwrap();
        assert!(d.load_into(&mut db).is_err());
    }
}
