//! # recdb-datasets
//!
//! Seeded synthetic stand-ins for the paper's three evaluation datasets
//! (§VI): **MovieLens-100K** (943 users × 1,682 movies × 100,000 ratings),
//! **LDOS-CoMoDa** (185 × 785 × 2,297), and the **Yelp** challenge subset
//! (3,403 users × 1,446 businesses × 126,747 reviews, with locations for
//! the §V POI case study).
//!
//! The real datasets cannot ship with this repository, so the generators
//! reproduce the properties the experiments depend on:
//!
//! * the exact cardinalities (|U|, |I|, |R|) — operator costs in the
//!   evaluation scale with these,
//! * Zipf-skewed item popularity and user activity (real rating data is
//!   heavy-tailed; neighborhood sizes and similarity-list lengths follow),
//! * learnable low-rank structure plus noise, so the CF/SVD models produce
//!   non-degenerate score distributions,
//! * movie genres / business categories and planar business locations, so
//!   the join and spatial queries of §V–§VI are meaningful.
//!
//! Everything is deterministic for a fixed [`SyntheticSpec::seed`].

pub mod generate;
pub mod load;
pub mod spec;

pub use generate::{generate, CityRow, Dataset, ItemRow, UserRow};
pub use load::LoadedTables;
pub use spec::SyntheticSpec;

/// The MovieLens-100K stand-in: 943 users, 1,682 movies, 100,000 ratings
/// on a 1–5 star scale.
pub fn movielens_like() -> Dataset {
    generate(&SyntheticSpec::movielens())
}

/// The LDOS-CoMoDa stand-in: 185 users, 785 movies, 2,297 ratings.
pub fn ldos_comoda_like() -> Dataset {
    generate(&SyntheticSpec::ldos_comoda())
}

/// The Yelp stand-in: 3,403 users, 1,446 located businesses, 126,747
/// reviews.
pub fn yelp_like() -> Dataset {
    generate(&SyntheticSpec::yelp())
}
