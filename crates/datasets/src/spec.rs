//! Dataset shape specifications.

/// Parameters of a synthetic ratings dataset.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Dataset name (becomes part of generated row names).
    pub name: String,
    /// Number of distinct users.
    pub n_users: usize,
    /// Number of distinct items.
    pub n_items: usize,
    /// Number of distinct (user, item) ratings to generate.
    pub n_ratings: usize,
    /// Minimum rating value.
    pub rating_min: f64,
    /// Maximum rating value.
    pub rating_max: f64,
    /// Number of genres/categories cycled over the items.
    pub n_genres: usize,
    /// Whether items carry planar locations (POI datasets).
    pub with_locations: bool,
    /// Zipf skew exponent for item popularity / user activity.
    pub skew: f64,
    /// Latent cluster count driving the learnable rating structure.
    pub n_clusters: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// The MovieLens-100K shape (§VI: 943 users, 1,682 movies, 100K
    /// ratings, 1–5 stars).
    pub fn movielens() -> Self {
        SyntheticSpec {
            name: "movielens".into(),
            n_users: 943,
            n_items: 1682,
            n_ratings: 100_000,
            rating_min: 1.0,
            rating_max: 5.0,
            n_genres: 18,
            with_locations: false,
            skew: 0.8,
            n_clusters: 8,
            seed: 0x4D4C_3130_304B, // "ML100K"
        }
    }

    /// The LDOS-CoMoDa shape (§VI: 185 users, 785 movies, 2,297 ratings).
    pub fn ldos_comoda() -> Self {
        SyntheticSpec {
            name: "ldos-comoda".into(),
            n_users: 185,
            n_items: 785,
            n_ratings: 2_297,
            rating_min: 1.0,
            rating_max: 5.0,
            n_genres: 18,
            with_locations: false,
            skew: 0.8,
            n_clusters: 6,
            seed: 0x4C44_4F53,
        }
    }

    /// The Yelp challenge subset shape (§VI: 3,403 users, 1,446
    /// businesses, 126,747 reviews) with locations on a 1,000 × 1,000
    /// planar city grid.
    pub fn yelp() -> Self {
        SyntheticSpec {
            name: "yelp".into(),
            n_users: 3_403,
            n_items: 1_446,
            n_ratings: 126_747,
            rating_min: 1.0,
            rating_max: 5.0,
            n_genres: 12,
            with_locations: true,
            skew: 0.8,
            n_clusters: 8,
            seed: 0x59454C50, // "YELP"
        }
    }

    /// A density-preserving shrunk copy for fast unit tests: the rating
    /// count scales by `factor`, the user/item dimensions by `√factor`
    /// (so ratings ÷ (users × items) stays constant, to first order).
    pub fn scaled(&self, factor: f64) -> SyntheticSpec {
        let dim = factor.sqrt();
        let scale = |n: usize| (((n as f64) * dim).round() as usize).max(2);
        let n_users = scale(self.n_users);
        let n_items = scale(self.n_items);
        let n_ratings =
            (((self.n_ratings as f64) * factor).round() as usize).clamp(1, n_users * n_items);
        SyntheticSpec {
            name: format!("{}-x{factor}", self.name),
            n_users,
            n_items,
            n_ratings,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cardinalities() {
        let ml = SyntheticSpec::movielens();
        assert_eq!((ml.n_users, ml.n_items, ml.n_ratings), (943, 1682, 100_000));
        let ldos = SyntheticSpec::ldos_comoda();
        assert_eq!(
            (ldos.n_users, ldos.n_items, ldos.n_ratings),
            (185, 785, 2_297)
        );
        let yelp = SyntheticSpec::yelp();
        assert_eq!(
            (yelp.n_users, yelp.n_items, yelp.n_ratings),
            (3_403, 1_446, 126_747)
        );
        assert!(yelp.with_locations);
        assert!(!ml.with_locations);
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let s = SyntheticSpec::movielens().scaled(0.1);
        assert_eq!(s.n_users, 298);
        assert_eq!(s.n_items, 532);
        assert_eq!(s.n_ratings, 10_000);
        // Density is preserved to first order.
        let full = SyntheticSpec::movielens();
        let d_full = full.n_ratings as f64 / (full.n_users * full.n_items) as f64;
        let d_small = s.n_ratings as f64 / (s.n_users * s.n_items) as f64;
        assert!((d_full - d_small).abs() / d_full < 0.15);
    }

    #[test]
    fn scaling_has_floors() {
        let s = SyntheticSpec::ldos_comoda().scaled(0.0001);
        assert!(s.n_users >= 2);
        assert!(s.n_items >= 2);
        assert!(s.n_ratings >= 1);
    }
}
