//! WAL error type.

use std::fmt;

/// Result alias for WAL operations.
pub type WalResult<T> = Result<T, WalError>;

/// Errors raised by the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// A filesystem operation failed. Carries the operation name and the
    /// OS error text (kept as a string so the type stays `Clone + Eq`).
    Io {
        /// What was being attempted (`"open"`, `"append"`, `"fsync"`, …).
        op: &'static str,
        /// The OS error, stringified.
        message: String,
    },
    /// A deterministic fault-injection site fired (tests only).
    Fault(String),
    /// Log bytes that should decode did not — a mid-log frame with a bad
    /// checksum or malformed payload. (A bad *tail* is not an error: open
    /// truncates it as a torn write.)
    Corrupt {
        /// Byte offset of the bad frame within the log file.
        offset: u64,
        /// What failed to parse.
        reason: String,
    },
}

impl WalError {
    /// Wrap a [`std::io::Error`] with the operation that failed.
    pub fn io(op: &'static str, e: std::io::Error) -> Self {
        WalError::Io {
            op,
            message: e.to_string(),
        }
    }
}

impl From<recdb_fault::FaultError> for WalError {
    fn from(e: recdb_fault::FaultError) -> Self {
        WalError::Fault(e.site.to_string())
    }
}

impl From<recdb_storage::StorageError> for WalError {
    fn from(e: recdb_storage::StorageError) -> Self {
        WalError::Corrupt {
            offset: 0,
            reason: e.to_string(),
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { op, message } => write!(f, "wal I/O error during {op}: {message}"),
            WalError::Fault(site) => write!(f, "injected fault at site `{site}`"),
            WalError::Corrupt { offset, reason } => {
                write!(f, "corrupt wal frame at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_operation_and_offset() {
        let e = WalError::io("fsync", std::io::Error::other("disk on fire"));
        assert!(e.to_string().contains("fsync"));
        assert!(e.to_string().contains("disk on fire"));
        let c = WalError::Corrupt {
            offset: 512,
            reason: "bad checksum".into(),
        };
        assert!(c.to_string().contains("512"));
    }
}
