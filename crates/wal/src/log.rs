//! The append-only log file.
//!
//! On-disk layout:
//!
//! ```text
//! header   magic "RWAL" (4) | version (4) | base LSN (8)
//! frame*   len u32 | crc32 u32 | lsn u64 | payload (len - 8 bytes)
//! ```
//!
//! `len` covers the LSN and payload; the CRC covers the same bytes. LSNs
//! are dense and ascending: the first frame carries `base + 1`. A frame
//! whose length or checksum does not verify marks a *torn tail* — the
//! incomplete flush of a crashed process — and [`Wal::open`] truncates the
//! file there, keeping every record before it. A frame whose checksum
//! verifies but whose payload does not decode is real corruption and fails
//! the open instead; valid checksums mean those bytes were once written
//! whole.
//!
//! Fail points (armed via `recdb-fault`, no-ops in production):
//!
//! * `wal::append` — simulates a torn write: half the frame reaches the
//!   file, then the append errors. The next append self-heals by
//!   truncating the partial bytes.
//! * `wal::fsync` — simulates the OS losing unsynced writes: the file is
//!   rolled back to the last-synced length and the commit errors.

use crate::error::{WalError, WalResult};
use crate::record::WalRecord;
use recdb_obs::Registry;
use recdb_storage::crc32;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const WAL_MAGIC: u32 = u32::from_le_bytes(*b"RWAL");
const WAL_VERSION: u32 = 1;
const HEADER_SIZE: u64 = 16;
/// Frame overhead before the payload: length + CRC + LSN.
const FRAME_OVERHEAD: u64 = 16;

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// LSN the log starts after (records in the file are `base_lsn + 1 ..`).
    base_lsn: u64,
    /// LSN the next append will be assigned.
    next_lsn: u64,
    /// Logical end of the log: header plus every fully-appended frame.
    len: u64,
    /// Prefix of `len` known to be on stable storage.
    synced_len: u64,
    /// `next_lsn` as of the last successful [`Wal::commit`].
    synced_next_lsn: u64,
    /// Whether a failed append may have left partial bytes past `len`.
    tail_dirty: bool,
    /// Optional metrics sink; see [`Wal::attach_metrics`].
    metrics: Option<Arc<Registry>>,
}

/// The result of opening a log: the handle, every decoded record, and
/// whether a torn tail was dropped.
#[derive(Debug)]
pub struct OpenedWal {
    /// The log, positioned for appending.
    pub wal: Wal,
    /// All records in LSN order, as `(lsn, record)` pairs.
    pub records: Vec<(u64, WalRecord)>,
    /// Bytes truncated from a torn tail, if any were found.
    pub truncated: Option<u64>,
}

fn encode_frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let body_len = 8 + payload.len();
    let mut frame = Vec::with_capacity(8 + body_len);
    frame.extend_from_slice(&(body_len as u32).to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]); // CRC placeholder
    frame.extend_from_slice(&lsn.to_le_bytes());
    frame.extend_from_slice(payload);
    let crc = crc32(&frame[8..]);
    frame[4..8].copy_from_slice(&crc.to_le_bytes());
    frame
}

impl Wal {
    /// Open (or create) the log at `path`.
    ///
    /// A fresh file is initialized with `base_lsn_if_new`; an existing file
    /// keeps its own base. The whole log is scanned and decoded: bad frame
    /// *tails* are truncated (torn write), bad frame *interiors* —
    /// checksum-valid frames that fail to decode, or LSN gaps — are
    /// corruption errors.
    pub fn open(path: &Path, base_lsn_if_new: u64) -> WalResult<OpenedWal> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(WalError::io("read log", e)),
        };
        let (base_lsn, mut records, good_len, truncated) = if bytes.is_empty() {
            let mut header = Vec::with_capacity(HEADER_SIZE as usize);
            header.extend_from_slice(&WAL_MAGIC.to_le_bytes());
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            header.extend_from_slice(&base_lsn_if_new.to_le_bytes());
            std::fs::write(path, &header).map_err(|e| WalError::io("create log", e))?;
            (base_lsn_if_new, Vec::new(), HEADER_SIZE, None)
        } else {
            Self::scan(&bytes)?
        };
        if truncated.is_some() {
            // Drop the torn tail on disk too, so the damage cannot be
            // misread by a later, differently-configured open.
            let f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| WalError::io("open log", e))?;
            f.set_len(good_len)
                .map_err(|e| WalError::io("truncate torn tail", e))?;
            f.sync_all().map_err(|e| WalError::io("fsync", e))?;
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| WalError::io("open log", e))?;
        let next_lsn = records.last().map_or(base_lsn, |(l, _)| *l) + 1;
        records.shrink_to_fit();
        Ok(OpenedWal {
            wal: Wal {
                file,
                path: path.to_owned(),
                base_lsn,
                next_lsn,
                len: good_len,
                synced_len: good_len,
                synced_next_lsn: next_lsn,
                tail_dirty: false,
                metrics: None,
            },
            records,
            truncated,
        })
    }

    /// Parse header and frames, returning
    /// `(base_lsn, records, good_len, truncated_bytes)`.
    #[allow(clippy::type_complexity)]
    fn scan(bytes: &[u8]) -> WalResult<(u64, Vec<(u64, WalRecord)>, u64, Option<u64>)> {
        if bytes.len() < HEADER_SIZE as usize {
            return Err(WalError::Corrupt {
                offset: 0,
                reason: "log shorter than its header".into(),
            });
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("fixed-width header"));
        if magic != WAL_MAGIC {
            return Err(WalError::Corrupt {
                offset: 0,
                reason: format!("bad log magic {magic:#010x}"),
            });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("fixed-width header"));
        if version != WAL_VERSION {
            return Err(WalError::Corrupt {
                offset: 4,
                reason: format!("unsupported log version {version}"),
            });
        }
        let base_lsn = u64::from_le_bytes(bytes[8..16].try_into().expect("fixed-width header"));
        let mut records = Vec::new();
        let mut at = HEADER_SIZE as usize;
        let mut expect_lsn = base_lsn + 1;
        let truncated = loop {
            if at == bytes.len() {
                break None; // clean end
            }
            let frame_ok = (|| {
                let len_bytes = bytes.get(at..at + 4)?;
                let body_len =
                    u32::from_le_bytes(len_bytes.try_into().expect("fixed-width slice")) as usize;
                if body_len < 8 {
                    return None;
                }
                let crc_bytes = bytes.get(at + 4..at + 8)?;
                let stored = u32::from_le_bytes(crc_bytes.try_into().expect("fixed-width slice"));
                let body = bytes.get(at + 8..at + 8 + body_len)?;
                (crc32(body) == stored).then_some(body)
            })();
            let Some(body) = frame_ok else {
                // Torn tail: everything from `at` on never finished
                // writing. Keep the good prefix.
                break Some((bytes.len() - at) as u64);
            };
            let lsn = u64::from_le_bytes(body[0..8].try_into().expect("fixed-width slice"));
            if lsn != expect_lsn {
                return Err(WalError::Corrupt {
                    offset: at as u64,
                    reason: format!("lsn {lsn} where {expect_lsn} was expected"),
                });
            }
            let record = WalRecord::decode(&body[8..]).map_err(|e| WalError::Corrupt {
                offset: at as u64,
                reason: format!("checksum-valid frame failed to decode: {e}"),
            })?;
            records.push((lsn, record));
            expect_lsn += 1;
            at += 8 + body.len();
        };
        Ok((base_lsn, records, at as u64, truncated))
    }

    /// Append one record, returning its assigned LSN. The record is
    /// durable only after the next successful [`Wal::commit`].
    pub fn append(&mut self, record: &WalRecord) -> WalResult<u64> {
        if self.tail_dirty {
            // A previous append failed partway; clear its debris so this
            // frame starts at the logical end.
            self.file
                .set_len(self.len)
                .map_err(|e| WalError::io("truncate partial append", e))?;
            self.tail_dirty = false;
        }
        let lsn = self.next_lsn;
        let frame = encode_frame(lsn, &record.encode());
        if let Err(fault) = recdb_fault::fail_point("wal::append") {
            // Simulate a torn write: some bytes land, the call fails, and
            // the LSN is never consumed.
            let half = frame.len() / 2;
            let _ = self.file.write_all(&frame[..half]);
            let _ = self.file.flush();
            self.tail_dirty = true;
            return Err(fault.into());
        }
        self.file
            .write_all(&frame)
            .map_err(|e| WalError::io("append", e))?;
        self.len += frame.len() as u64;
        self.next_lsn += 1;
        if let Some(metrics) = &self.metrics {
            metrics.counter("recdb_wal_appends_total").inc();
            metrics
                .counter("recdb_wal_appended_bytes_total")
                .add(frame.len() as u64);
        }
        Ok(lsn)
    }

    /// Force every appended record to stable storage (fsync).
    ///
    /// On an injected `wal::fsync` fault, the file is rolled back to the
    /// last-synced length — modelling a crash where the page cache never
    /// reached the platter — and the unsynced LSNs are reassigned to the
    /// next appends.
    pub fn commit(&mut self) -> WalResult<()> {
        if let Err(fault) = recdb_fault::fail_point("wal::fsync") {
            self.file
                .set_len(self.synced_len)
                .map_err(|e| WalError::io("roll back unsynced tail", e))?;
            self.len = self.synced_len;
            self.next_lsn = self.synced_next_lsn;
            self.tail_dirty = false;
            return Err(fault.into());
        }
        self.file.sync_all().map_err(|e| WalError::io("fsync", e))?;
        self.synced_len = self.len;
        self.synced_next_lsn = self.next_lsn;
        if let Some(metrics) = &self.metrics {
            metrics.counter("recdb_wal_fsyncs_total").inc();
        }
        Ok(())
    }

    /// Flush appended records to stable storage for the buffer pool's
    /// log-before-page barrier. Unlike [`Wal::commit`] this does not
    /// evaluate the `wal::fsync` fail point: the barrier runs on eviction
    /// paths, and letting it consume injected-fault countdowns would make
    /// the crash matrix depend on cache pressure.
    pub fn sync(&mut self) -> WalResult<()> {
        self.file.sync_all().map_err(|e| WalError::io("fsync", e))?;
        self.synced_len = self.len;
        self.synced_next_lsn = self.next_lsn;
        if let Some(metrics) = &self.metrics {
            metrics.counter("recdb_wal_fsyncs_total").inc();
        }
        Ok(())
    }

    /// Drop every record with `lsn <= upto` (they are covered by a
    /// checkpoint) by rewriting the log with a new base and atomically
    /// renaming it into place.
    pub fn prune(&mut self, upto: u64) -> WalResult<()> {
        let bytes = std::fs::read(&self.path).map_err(|e| WalError::io("read log", e))?;
        let (_, records, _, _) = Self::scan(&bytes)?;
        let mut out = Vec::new();
        out.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        out.extend_from_slice(&WAL_VERSION.to_le_bytes());
        out.extend_from_slice(&upto.to_le_bytes());
        for (lsn, record) in records.iter().filter(|(l, _)| *l > upto) {
            out.extend_from_slice(&encode_frame(*lsn, &record.encode()));
        }
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| WalError::io("create pruned log", e))?;
            f.write_all(&out)
                .map_err(|e| WalError::io("write pruned log", e))?;
            f.sync_all().map_err(|e| WalError::io("fsync", e))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| WalError::io("publish pruned log", e))?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| WalError::io("open log", e))?;
        self.base_lsn = upto;
        self.len = out.len() as u64;
        self.synced_len = self.len;
        self.next_lsn = self.next_lsn.max(upto + 1);
        self.synced_next_lsn = self.next_lsn;
        self.tail_dirty = false;
        Ok(())
    }

    /// Route append/fsync counters (`recdb_wal_*`) to `registry`.
    ///
    /// The log records nothing until a registry is attached, so standalone
    /// uses of the crate pay no metrics cost.
    pub fn attach_metrics(&mut self, registry: Arc<Registry>) {
        self.metrics = Some(registry);
    }

    /// LSN the log starts after.
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// LSN the next append will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// LSN of the last appended record, or the base if the log is empty.
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Logical size in bytes (header plus complete frames).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Size of one encoded frame for a record of `payload_len` bytes —
    /// exposed so tests can reason about exact file sizes.
    pub fn frame_size(payload_len: usize) -> u64 {
        FRAME_OVERHEAD + payload_len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_storage::{Tuple, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_log(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("recdb-wal-{tag}-{}-{n}.log", std::process::id()))
    }

    fn insert(table: &str, u: i64) -> WalRecord {
        WalRecord::Insert {
            table: table.into(),
            tuples: vec![Tuple::new(vec![Value::Int(u), Value::Float(u as f64)])],
        }
    }

    #[test]
    fn append_commit_reopen_roundtrip() {
        let path = temp_log("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, 0).unwrap().wal;
            assert_eq!(wal.append(&insert("ratings", 1)).unwrap(), 1);
            assert_eq!(wal.append(&insert("ratings", 2)).unwrap(), 2);
            wal.commit().unwrap();
        }
        let opened = Wal::open(&path, 0).unwrap();
        assert!(opened.truncated.is_none());
        assert_eq!(opened.records.len(), 2);
        assert_eq!(opened.records[0], (1, insert("ratings", 1)));
        assert_eq!(opened.wal.next_lsn(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_keeping_good_prefix() {
        let path = temp_log("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, 0).unwrap().wal;
            wal.append(&insert("r", 1)).unwrap();
            wal.append(&insert("r", 2)).unwrap();
            wal.commit().unwrap();
        }
        // A crashed writer leaves half a frame behind.
        let good_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x55; 11]).unwrap();
        drop(f);
        let opened = Wal::open(&path, 0).unwrap();
        assert_eq!(opened.truncated, Some(11));
        assert_eq!(opened.records.len(), 2);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            good_len,
            "torn bytes must be physically removed"
        );
        // And appends continue from where the good prefix ended.
        let mut wal = opened.wal;
        assert_eq!(wal.append(&insert("r", 3)).unwrap(), 3);
        wal.commit().unwrap();
        assert_eq!(Wal::open(&path, 0).unwrap().records.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_interior_frame_fails_the_open() {
        let path = temp_log("interior");
        let _ = std::fs::remove_file(&path);
        let frame2_at;
        {
            let mut wal = Wal::open(&path, 0).unwrap().wal;
            wal.append(&insert("r", 1)).unwrap();
            frame2_at = wal.len_bytes();
            wal.append(&insert("r", 2)).unwrap();
            wal.commit().unwrap();
        }
        // Flipping a byte in the *last* frame reads as a torn tail…
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let opened = Wal::open(&path, 0).unwrap();
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.truncated, Some(n as u64 - frame2_at));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lsn_gap_is_corruption_not_torn_tail() {
        let path = temp_log("gap");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, 0).unwrap().wal;
            wal.append(&insert("r", 1)).unwrap();
            wal.commit().unwrap();
        }
        // Hand-craft a checksum-valid frame with a wrong LSN.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_frame(9, &insert("r", 2).encode()));
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Wal::open(&path, 0), Err(WalError::Corrupt { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prune_drops_covered_records_and_rebases() {
        let path = temp_log("prune");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, 0).unwrap().wal;
        for u in 1..=5 {
            wal.append(&insert("r", u)).unwrap();
        }
        wal.commit().unwrap();
        wal.prune(3).unwrap();
        assert_eq!(wal.base_lsn(), 3);
        assert_eq!(wal.next_lsn(), 6);
        let opened = Wal::open(&path, 0).unwrap();
        let lsns: Vec<u64> = opened.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![4, 5]);
        assert_eq!(opened.wal.base_lsn(), 3);
        // Appends after a full prune restart past the base.
        let mut wal = opened.wal;
        wal.prune(5).unwrap();
        assert_eq!(wal.append(&insert("r", 6)).unwrap(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_append_fault_leaves_log_self_healing() {
        let _gate = recdb_fault::exclusive();
        recdb_fault::clear();
        let path = temp_log("fault-append");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, 0).unwrap().wal;
        wal.append(&insert("r", 1)).unwrap();
        wal.commit().unwrap();
        recdb_fault::arm_error("wal::append", 1);
        assert!(matches!(
            wal.append(&insert("r", 2)),
            Err(WalError::Fault(_))
        ));
        // The torn half-frame is invisible: a retry works and a reopen
        // sees a clean two-record log.
        assert_eq!(wal.append(&insert("r", 2)).unwrap(), 2);
        wal.commit().unwrap();
        drop(wal);
        let opened = Wal::open(&path, 0).unwrap();
        assert!(opened.truncated.is_none());
        assert_eq!(opened.records.len(), 2);
        recdb_fault::clear();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_fsync_fault_loses_exactly_the_unsynced_suffix() {
        let _gate = recdb_fault::exclusive();
        recdb_fault::clear();
        let path = temp_log("fault-fsync");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, 0).unwrap().wal;
        wal.append(&insert("r", 1)).unwrap();
        wal.commit().unwrap();
        wal.append(&insert("r", 2)).unwrap();
        recdb_fault::arm_error("wal::fsync", 1);
        assert!(matches!(wal.commit(), Err(WalError::Fault(_))));
        // Record 2 evaporated with the page cache; its LSN is reusable.
        assert_eq!(wal.next_lsn(), 2);
        drop(wal);
        let opened = Wal::open(&path, 0).unwrap();
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.wal.next_lsn(), 2);
        recdb_fault::clear();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fresh_log_honors_base_lsn() {
        let path = temp_log("base");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, 41).unwrap().wal;
        assert_eq!(wal.base_lsn(), 41);
        assert_eq!(wal.append(&insert("r", 1)).unwrap(), 42);
        drop(wal);
        // The base persists across reopens regardless of the hint.
        assert_eq!(Wal::open(&path, 0).unwrap().wal.base_lsn(), 41);
        std::fs::remove_file(&path).unwrap();
    }
}
