//! Logical WAL records: one per mutating statement.
//!
//! RecDB logs *logical* redo records (what the statement did, in terms of
//! tables and tuples) rather than physical page images. Replay re-executes
//! each record through the normal catalog paths; because the heap append
//! algorithm is deterministic, replay reproduces the exact same RIDs the
//! original run assigned, which is what lets later `Delete`/`Update`
//! records reference RIDs by value.
//!
//! Recommender models are *derived* state and are deliberately not logged:
//! `CreateRecommender` records only the definition, and recovery retrains
//! from the recovered ratings.

use recdb_storage::codec::{self, Reader};
use recdb_storage::{Column, DataType, Rid, Schema, StorageError, Tuple};

use crate::error::{WalError, WalResult};

/// A logical redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `CREATE TABLE name (schema)`.
    CreateTable {
        /// Table name (already folded to lowercase by the catalog).
        name: String,
        /// Column names and types. Relation qualifiers are not persisted —
        /// base-table columns are always unqualified.
        schema: Schema,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// Tuples appended to a table by one statement.
    Insert {
        /// Target table.
        table: String,
        /// The inserted tuples, post-coercion (as stored).
        tuples: Vec<Tuple>,
    },
    /// Tuples deleted from a table by one statement.
    Delete {
        /// Target table.
        table: String,
        /// RIDs removed, in deletion order.
        rids: Vec<Rid>,
    },
    /// In-place updates: each RID's tuple replaced wholesale.
    Update {
        /// Target table.
        table: String,
        /// `(rid, new tuple)` pairs in application order.
        changes: Vec<(Rid, Tuple)>,
    },
    /// `CREATE INDEX index ON table (columns)`.
    CreateIndex {
        /// Owning table.
        table: String,
        /// Index name.
        index: String,
        /// Key column names in key order.
        columns: Vec<String>,
    },
    /// `DROP INDEX index ON table`.
    DropIndex {
        /// Owning table.
        table: String,
        /// Index name.
        index: String,
    },
    /// `CREATE RECOMMENDER` definition (the model itself is retrained on
    /// recovery, never logged).
    CreateRecommender {
        /// Recommender name.
        name: String,
        /// Ratings table the model trains on.
        table: String,
        /// Users column name.
        users: String,
        /// Items column name.
        items: String,
        /// Ratings-value column name.
        ratings: String,
        /// Algorithm name as parsed by the engine (`"svd"`, `"itemcossim"`, …).
        algorithm: String,
    },
    /// `DROP RECOMMENDER name`.
    DropRecommender {
        /// Recommender name.
        name: String,
    },
    /// First write of an explicit transaction (informational: recovery
    /// keys committedness off [`WalRecord::TxnCommit`] alone).
    TxnBegin {
        /// Transaction id.
        txn: u64,
    },
    /// The transaction's changes are durable once this record is fsynced
    /// — recovery replays a transaction's [`WalRecord::InTxn`] records
    /// only when its commit record made it to the log.
    TxnCommit {
        /// Transaction id.
        txn: u64,
    },
    /// The transaction rolled back (best-effort marker; an aborted
    /// transaction with no abort record is equally invisible to replay).
    TxnAbort {
        /// Transaction id.
        txn: u64,
    },
    /// A statement executed inside an explicit transaction. The wrapped
    /// record is replayed at recovery only if `TxnCommit { txn }` follows.
    InTxn {
        /// Owning transaction id.
        txn: u64,
        /// The statement's ordinary redo record.
        record: Box<WalRecord>,
    },
}

const TAG_CREATE_TABLE: u8 = 1;
const TAG_DROP_TABLE: u8 = 2;
const TAG_INSERT: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_UPDATE: u8 = 5;
const TAG_CREATE_INDEX: u8 = 6;
const TAG_DROP_INDEX: u8 = 7;
const TAG_CREATE_RECOMMENDER: u8 = 8;
const TAG_DROP_RECOMMENDER: u8 = 9;
const TAG_TXN_BEGIN: u8 = 10;
const TAG_TXN_COMMIT: u8 = 11;
const TAG_TXN_ABORT: u8 = 12;
const TAG_IN_TXN: u8 = 13;

fn put_rid(buf: &mut Vec<u8>, rid: Rid) {
    codec::put_u32(buf, rid.page);
    codec::put_u16(buf, rid.slot);
}

fn take_rid(r: &mut Reader<'_>) -> Result<Rid, StorageError> {
    let page = r.take_u32()?;
    let slot = r.take_u16()?;
    Ok(Rid::new(page, slot))
}

fn take_tuple(r: &mut Reader<'_>) -> Result<Tuple, StorageError> {
    let (tuple, used) = Tuple::decode(r.rest())?;
    r.skip(used)?;
    Ok(tuple)
}

impl WalRecord {
    /// Serialize into `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::CreateTable { name, schema } => {
                codec::put_u8(buf, TAG_CREATE_TABLE);
                codec::put_str(buf, name);
                codec::put_u16(buf, schema.arity() as u16);
                for i in 0..schema.arity() {
                    let col = schema.column(i).expect("arity-bounded column index");
                    codec::put_str(buf, &col.name);
                    codec::put_u8(buf, col.data_type.to_tag());
                }
            }
            WalRecord::DropTable { name } => {
                codec::put_u8(buf, TAG_DROP_TABLE);
                codec::put_str(buf, name);
            }
            WalRecord::Insert { table, tuples } => {
                codec::put_u8(buf, TAG_INSERT);
                codec::put_str(buf, table);
                codec::put_u32(buf, tuples.len() as u32);
                for t in tuples {
                    t.encode_into(buf);
                }
            }
            WalRecord::Delete { table, rids } => {
                codec::put_u8(buf, TAG_DELETE);
                codec::put_str(buf, table);
                codec::put_u32(buf, rids.len() as u32);
                for &rid in rids {
                    put_rid(buf, rid);
                }
            }
            WalRecord::Update { table, changes } => {
                codec::put_u8(buf, TAG_UPDATE);
                codec::put_str(buf, table);
                codec::put_u32(buf, changes.len() as u32);
                for (rid, tuple) in changes {
                    put_rid(buf, *rid);
                    tuple.encode_into(buf);
                }
            }
            WalRecord::CreateIndex {
                table,
                index,
                columns,
            } => {
                codec::put_u8(buf, TAG_CREATE_INDEX);
                codec::put_str(buf, table);
                codec::put_str(buf, index);
                codec::put_u16(buf, columns.len() as u16);
                for c in columns {
                    codec::put_str(buf, c);
                }
            }
            WalRecord::DropIndex { table, index } => {
                codec::put_u8(buf, TAG_DROP_INDEX);
                codec::put_str(buf, table);
                codec::put_str(buf, index);
            }
            WalRecord::CreateRecommender {
                name,
                table,
                users,
                items,
                ratings,
                algorithm,
            } => {
                codec::put_u8(buf, TAG_CREATE_RECOMMENDER);
                codec::put_str(buf, name);
                codec::put_str(buf, table);
                codec::put_str(buf, users);
                codec::put_str(buf, items);
                codec::put_str(buf, ratings);
                codec::put_str(buf, algorithm);
            }
            WalRecord::DropRecommender { name } => {
                codec::put_u8(buf, TAG_DROP_RECOMMENDER);
                codec::put_str(buf, name);
            }
            WalRecord::TxnBegin { txn } => {
                codec::put_u8(buf, TAG_TXN_BEGIN);
                codec::put_u64(buf, *txn);
            }
            WalRecord::TxnCommit { txn } => {
                codec::put_u8(buf, TAG_TXN_COMMIT);
                codec::put_u64(buf, *txn);
            }
            WalRecord::TxnAbort { txn } => {
                codec::put_u8(buf, TAG_TXN_ABORT);
                codec::put_u64(buf, *txn);
            }
            WalRecord::InTxn { txn, record } => {
                codec::put_u8(buf, TAG_IN_TXN);
                codec::put_u64(buf, *txn);
                record.encode_into(buf);
            }
        }
    }

    /// Serialize to a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Decode one record from `bytes`, which must contain exactly one
    /// record (the log frame is length-prefixed, so the caller knows the
    /// extent).
    pub fn decode(bytes: &[u8]) -> WalResult<WalRecord> {
        let mut r = Reader::new(bytes, "wal record");
        let rec = Self::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(WalError::Corrupt {
                offset: 0,
                reason: format!("{} trailing bytes after record", r.remaining()),
            });
        }
        Ok(rec)
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<WalRecord, StorageError> {
        let tag = r.take_u8()?;
        Ok(match tag {
            TAG_CREATE_TABLE => {
                let name = r.take_str()?;
                let arity = r.take_u16()?;
                let mut columns = Vec::with_capacity(arity as usize);
                for _ in 0..arity {
                    let col_name = r.take_str()?;
                    let ty = DataType::from_tag(r.take_u8()?).ok_or_else(|| {
                        StorageError::Corrupt("wal record has unknown column type tag".into())
                    })?;
                    columns.push(Column::new(col_name, ty));
                }
                WalRecord::CreateTable {
                    name,
                    schema: Schema::new(columns),
                }
            }
            TAG_DROP_TABLE => WalRecord::DropTable {
                name: r.take_str()?,
            },
            TAG_INSERT => {
                let table = r.take_str()?;
                let count = r.take_u32()?;
                let mut tuples = Vec::with_capacity(count.min(65_536) as usize);
                for _ in 0..count {
                    tuples.push(take_tuple(r)?);
                }
                WalRecord::Insert { table, tuples }
            }
            TAG_DELETE => {
                let table = r.take_str()?;
                let count = r.take_u32()?;
                let mut rids = Vec::with_capacity(count.min(65_536) as usize);
                for _ in 0..count {
                    rids.push(take_rid(r)?);
                }
                WalRecord::Delete { table, rids }
            }
            TAG_UPDATE => {
                let table = r.take_str()?;
                let count = r.take_u32()?;
                let mut changes = Vec::with_capacity(count.min(65_536) as usize);
                for _ in 0..count {
                    let rid = take_rid(r)?;
                    let tuple = take_tuple(r)?;
                    changes.push((rid, tuple));
                }
                WalRecord::Update { table, changes }
            }
            TAG_CREATE_INDEX => {
                let table = r.take_str()?;
                let index = r.take_str()?;
                let ncols = r.take_u16()?;
                let mut columns = Vec::with_capacity(ncols as usize);
                for _ in 0..ncols {
                    columns.push(r.take_str()?);
                }
                WalRecord::CreateIndex {
                    table,
                    index,
                    columns,
                }
            }
            TAG_DROP_INDEX => WalRecord::DropIndex {
                table: r.take_str()?,
                index: r.take_str()?,
            },
            TAG_CREATE_RECOMMENDER => WalRecord::CreateRecommender {
                name: r.take_str()?,
                table: r.take_str()?,
                users: r.take_str()?,
                items: r.take_str()?,
                ratings: r.take_str()?,
                algorithm: r.take_str()?,
            },
            TAG_DROP_RECOMMENDER => WalRecord::DropRecommender {
                name: r.take_str()?,
            },
            TAG_TXN_BEGIN => WalRecord::TxnBegin { txn: r.take_u64()? },
            TAG_TXN_COMMIT => WalRecord::TxnCommit { txn: r.take_u64()? },
            TAG_TXN_ABORT => WalRecord::TxnAbort { txn: r.take_u64()? },
            TAG_IN_TXN => {
                let txn = r.take_u64()?;
                let inner = Self::decode_from(r)?;
                if matches!(
                    inner,
                    WalRecord::TxnBegin { .. }
                        | WalRecord::TxnCommit { .. }
                        | WalRecord::TxnAbort { .. }
                        | WalRecord::InTxn { .. }
                ) {
                    return Err(StorageError::Corrupt(
                        "wal InTxn record wraps a transaction marker".into(),
                    ));
                }
                WalRecord::InTxn {
                    txn,
                    record: Box::new(inner),
                }
            }
            other => {
                return Err(StorageError::Corrupt(format!(
                    "unknown wal record tag {other}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_storage::Value;

    fn every_variant() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "ratings".into(),
                schema: Schema::new(vec![
                    Column::new("uid", DataType::Int),
                    Column::new("score", DataType::Float),
                    Column::new("note", DataType::Text),
                    Column::new("ok", DataType::Bool),
                    Column::new("loc", DataType::Point),
                    Column::new("area", DataType::Rect),
                ]),
            },
            WalRecord::DropTable {
                name: "ratings".into(),
            },
            WalRecord::Insert {
                table: "ratings".into(),
                tuples: vec![
                    Tuple::new(vec![Value::Int(1), Value::Float(4.5)]),
                    Tuple::new(vec![Value::Null, Value::Text("héllo".into())]),
                ],
            },
            WalRecord::Delete {
                table: "ratings".into(),
                rids: vec![Rid::new(0, 3), Rid::new(7, 0)],
            },
            WalRecord::Update {
                table: "ratings".into(),
                changes: vec![(Rid::new(1, 2), Tuple::new(vec![Value::Bool(true)]))],
            },
            WalRecord::CreateIndex {
                table: "ratings".into(),
                index: "ratings_uid".into(),
                columns: vec!["uid".into(), "iid".into()],
            },
            WalRecord::DropIndex {
                table: "ratings".into(),
                index: "ratings_uid".into(),
            },
            WalRecord::CreateRecommender {
                name: "movierec".into(),
                table: "ratings".into(),
                users: "uid".into(),
                items: "iid".into(),
                ratings: "ratingval".into(),
                algorithm: "itemcossim".into(),
            },
            WalRecord::DropRecommender {
                name: "movierec".into(),
            },
            WalRecord::TxnBegin { txn: 42 },
            WalRecord::TxnCommit { txn: u64::MAX },
            WalRecord::TxnAbort { txn: 7 },
            WalRecord::InTxn {
                txn: 42,
                record: Box::new(WalRecord::Insert {
                    table: "ratings".into(),
                    tuples: vec![Tuple::new(vec![Value::Int(1), Value::Float(4.5)])],
                }),
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for rec in every_variant() {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn truncated_records_error_cleanly() {
        for rec in every_variant() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                assert!(
                    WalRecord::decode(&bytes[..cut]).is_err(),
                    "{rec:?} decoded from a {cut}-byte prefix"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = WalRecord::DropTable { name: "t".into() }.encode();
        bytes.push(0xAA);
        assert!(matches!(
            WalRecord::decode(&bytes),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(WalRecord::decode(&[200, 0, 0]).is_err());
    }

    #[test]
    fn in_txn_must_wrap_a_plain_record() {
        // A nested InTxn (or a wrapped transaction marker) is never
        // produced by the engine and is rejected as corruption.
        let nested = WalRecord::InTxn {
            txn: 1,
            record: Box::new(WalRecord::TxnCommit { txn: 1 }),
        };
        assert!(WalRecord::decode(&nested.encode()).is_err());
        let double = WalRecord::InTxn {
            txn: 1,
            record: Box::new(WalRecord::InTxn {
                txn: 2,
                record: Box::new(WalRecord::DropTable { name: "t".into() }),
            }),
        };
        assert!(WalRecord::decode(&double.encode()).is_err());
    }
}
