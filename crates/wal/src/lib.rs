//! # recdb-wal
//!
//! The write-ahead log behind RecDB-rs durability: an append-only file of
//! length-prefixed, CRC32-checksummed logical redo records, fsynced at
//! commit points and pruned after checkpoints.
//!
//! * [`WalRecord`] — one logical record per mutating statement,
//! * [`Wal`] — the log file: append / commit (fsync) / prune, with
//!   torn-tail detection on open,
//! * [`WalError`] — I/O, fault-injection, and corruption failures.
//!
//! The engine's contract: a statement is *committed* once its record's
//! [`Wal::commit`] returns `Ok`. Recovery replays every record newer than
//! the page-store checkpoint; records that never reached a commit are
//! discarded by the torn-tail scan as if the statement never ran.

// Engine-reachable paths must surface `WalError`, not panic
// (`clippy.toml` exempts `#[cfg(test)]` code).
#![warn(clippy::unwrap_used)]

pub mod error;
pub mod log;
pub mod record;

pub use error::{WalError, WalResult};
pub use log::{OpenedWal, Wal};
pub use record::WalRecord;
