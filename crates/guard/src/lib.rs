//! Cooperative resource governor for queries and model builds.
//!
//! A [`QueryGuard`] bundles a cancellation flag, an optional wall-clock
//! deadline, and optional row/memory budgets behind one cheap handle.
//! Long-running loops call [`QueryGuard::tick`] once per unit of work
//! (a tuple produced, an SGD epoch, a similarity chunk); blocking
//! operators additionally report buffered bytes via
//! [`QueryGuard::charge_mem`]. Either returns a structured
//! [`GuardError`] the moment a limit is crossed, so cancellation is
//! bounded by the cost of a single work unit — the Volcano analogue of
//! a per-row interrupt check.
//!
//! Guards are `Clone` + `Send` + `Sync` and share state through an
//! `Arc`, so the same guard can be handed to materialization worker
//! threads and cancelled from outside.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a governed operation was stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardError {
    /// The guard was cancelled or its wall-clock deadline passed.
    Cancelled {
        /// Time elapsed since the guard started.
        elapsed: Duration,
    },
    /// A row or memory budget was exceeded.
    ResourceExhausted {
        /// Which budget: `"rows"` or `"memory"`.
        resource: &'static str,
        /// The configured limit.
        budget: u64,
        /// The usage that crossed it.
        used: u64,
    },
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardError::Cancelled { elapsed } => {
                write!(f, "cancelled after {:.3}s", elapsed.as_secs_f64())
            }
            GuardError::ResourceExhausted {
                resource,
                budget,
                used,
            } => write!(f, "{resource} budget exhausted: used {used} of {budget}"),
        }
    }
}

impl std::error::Error for GuardError {}

#[derive(Debug)]
struct GuardInner {
    cancelled: AtomicBool,
    started: Instant,
    deadline: Option<Instant>,
    row_budget: Option<u64>,
    rows: AtomicU64,
    mem_budget: Option<u64>,
    mem: AtomicU64,
}

/// Shared cancellation/deadline/budget token. Cloning is cheap and all
/// clones observe the same state.
#[derive(Debug, Clone)]
pub struct QueryGuard {
    inner: Arc<GuardInner>,
}

impl Default for QueryGuard {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl QueryGuard {
    /// A guard with no deadline and no budgets; `tick` only observes
    /// explicit [`cancel`](Self::cancel) calls.
    pub fn unlimited() -> Self {
        Self::build(None, None, None)
    }

    /// A guard with the given limits; `None` means unlimited.
    pub fn with_limits(
        deadline: Option<Duration>,
        row_budget: Option<u64>,
        mem_budget: Option<u64>,
    ) -> Self {
        Self::build(deadline, row_budget, mem_budget)
    }

    fn build(deadline: Option<Duration>, row_budget: Option<u64>, mem_budget: Option<u64>) -> Self {
        let started = Instant::now();
        QueryGuard {
            inner: Arc::new(GuardInner {
                cancelled: AtomicBool::new(false),
                started,
                deadline: deadline.map(|d| started + d),
                row_budget,
                rows: AtomicU64::new(0),
                mem_budget,
                mem: AtomicU64::new(0),
            }),
        }
    }

    /// A clone usable to cancel this guard from another thread.
    pub fn cancel_handle(&self) -> QueryGuard {
        self.clone()
    }

    /// Cooperatively cancel: the next `check`/`tick` on any clone fails.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Time since the guard was created.
    pub fn elapsed(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// Rows charged so far via [`tick`](Self::tick).
    pub fn rows_used(&self) -> u64 {
        self.inner.rows.load(Ordering::Relaxed)
    }

    /// Bytes charged so far via [`charge_mem`](Self::charge_mem).
    pub fn mem_used(&self) -> u64 {
        self.inner.mem.load(Ordering::Relaxed)
    }

    /// Check cancellation and deadline without charging any work.
    pub fn check(&self) -> Result<(), GuardError> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(GuardError::Cancelled {
                elapsed: self.elapsed(),
            });
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(GuardError::Cancelled {
                    elapsed: self.elapsed(),
                });
            }
        }
        Ok(())
    }

    /// Charge one unit of row work, then check every limit. Call once
    /// per tuple produced (or per epoch/chunk in model builds).
    pub fn tick(&self) -> Result<(), GuardError> {
        let used = self.inner.rows.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(budget) = self.inner.row_budget {
            if used > budget {
                return Err(GuardError::ResourceExhausted {
                    resource: "rows",
                    budget,
                    used,
                });
            }
        }
        self.check()
    }

    /// Charge `bytes` of buffered memory (sorts, hash tables), then
    /// check the memory budget.
    pub fn charge_mem(&self, bytes: u64) -> Result<(), GuardError> {
        let used = self.inner.mem.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(budget) = self.inner.mem_budget {
            if used > budget {
                return Err(GuardError::ResourceExhausted {
                    resource: "memory",
                    budget,
                    used,
                });
            }
        }
        self.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_always_passes() {
        let g = QueryGuard::unlimited();
        for _ in 0..10_000 {
            g.tick().unwrap();
        }
        g.charge_mem(u64::MAX / 2).unwrap();
        g.check().unwrap();
    }

    #[test]
    fn zero_deadline_cancels_immediately() {
        let g = QueryGuard::with_limits(Some(Duration::ZERO), None, None);
        match g.check() {
            Err(GuardError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn row_budget_exhausts_at_boundary() {
        let g = QueryGuard::with_limits(None, Some(3), None);
        g.tick().unwrap();
        g.tick().unwrap();
        g.tick().unwrap();
        assert_eq!(
            g.tick(),
            Err(GuardError::ResourceExhausted {
                resource: "rows",
                budget: 3,
                used: 4
            })
        );
    }

    #[test]
    fn mem_budget_counts_cumulative_bytes() {
        let g = QueryGuard::with_limits(None, None, Some(100));
        g.charge_mem(60).unwrap();
        assert_eq!(
            g.charge_mem(60),
            Err(GuardError::ResourceExhausted {
                resource: "memory",
                budget: 100,
                used: 120
            })
        );
    }

    #[test]
    fn cancel_is_visible_across_clones_and_threads() {
        let g = QueryGuard::unlimited();
        let handle = g.cancel_handle();
        std::thread::spawn(move || handle.cancel())
            .join()
            .expect("cancel thread");
        assert!(g.is_cancelled());
        assert!(matches!(g.tick(), Err(GuardError::Cancelled { .. })));
    }

    #[test]
    fn display_is_informative() {
        let e = GuardError::ResourceExhausted {
            resource: "rows",
            budget: 10,
            used: 11,
        };
        let s = e.to_string();
        assert!(s.contains("rows") && s.contains("10") && s.contains("11"));
        let c = GuardError::Cancelled {
            elapsed: Duration::from_millis(1500),
        };
        assert!(c.to_string().contains("1.500"));
    }
}
