//! `recdb-serve` — the serving-layer driver binary.
//!
//! Three subcommands:
//!
//! * `serve [--addr A] [--data-dir DIR]` — run a durable server until the
//!   process is killed (demo / manual testing).
//! * `bench [--seconds N] [--out PATH]` — start an in-process server,
//!   drive it with 1, 8, and 64 concurrent wire clients issuing
//!   `RECOMMEND` queries, and write QPS + p50/p99 latencies to
//!   `BENCH_serve.json`.
//! * `soak [--txns N]` — the chaos soak used by the `server-soak` CI job:
//!   a durable server under seeded fault injection (`RECDB_FAULT_SEED`)
//!   on the `server::*` sites, concurrent writers committing marker
//!   transactions over the wire, deliberate mid-transaction connection
//!   kills, then asserts zero leaked locks, transaction atomicity, and
//!   that every acknowledged commit survives crash recovery. Exits
//!   non-zero on any violation.

use recdb_core::{RecDb, RecDbConfig};
use recdb_server::{Client, ClientConfig, ClientError, Server, ServerConfig, WireResult};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let code = match cmd {
        "serve" => serve(&args[1..]),
        "bench" => bench(&args[1..]),
        "soak" => soak(&args[1..]),
        _ => {
            eprintln!(
                "usage: recdb-serve <serve|bench|soak> [options]\n\
                 \n\
                 serve  --addr 127.0.0.1:5433  --data-dir ./recdb-data\n\
                 bench  --seconds 2  --out BENCH_serve.json\n\
                 soak   --txns 40   (reads RECDB_FAULT_SEED, default 42)"
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

// ---------------------------------------------------------------- serve

fn serve(args: &[String]) -> i32 {
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:5433".into());
    let data_dir = flag(args, "--data-dir").unwrap_or_else(|| "./recdb-data".into());
    let config = RecDbConfig {
        data_dir: Some(data_dir.clone().into()),
        ..RecDbConfig::default()
    };
    let db = match RecDb::open_with_config(config) {
        Ok(db) => Arc::new(db),
        Err(e) => {
            eprintln!("failed to open engine at {data_dir}: {e}");
            return 1;
        }
    };
    let server = match Server::start(
        db,
        ServerConfig {
            addr,
            ..ServerConfig::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            return 1;
        }
    };
    println!(
        "recdb-serve listening on {} (data: {data_dir})",
        server.addr()
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

// ---------------------------------------------------------------- bench

/// Seed a ratings table + ItemCosCF recommender through plain SQL, all
/// over an in-process engine (the wire only serves queries).
fn seed_engine(db: &RecDb, users: i64, items: i64) {
    db.execute("CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)")
        .expect("create table");
    let mut batch = String::new();
    let mut rows = 0usize;
    for u in 0..users {
        for k in 0..8 {
            // Deterministic sparse pattern: each user rates 8 items.
            let i = (u * 7 + k * 13) % items;
            let r = 1.0 + ((u + i * 3 + k) % 9) as f64 * 0.5;
            if !batch.is_empty() {
                batch.push_str(", ");
            }
            batch.push_str(&format!("({u}, {i}, {r})"));
            rows += 1;
            if rows.is_multiple_of(500) {
                db.execute(&format!("INSERT INTO ratings VALUES {batch}"))
                    .expect("insert batch");
                batch.clear();
            }
        }
    }
    if !batch.is_empty() {
        db.execute(&format!("INSERT INTO ratings VALUES {batch}"))
            .expect("insert tail");
    }
    db.execute(
        "CREATE RECOMMENDER BenchRec ON ratings \
         USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF",
    )
    .expect("create recommender");
}

struct LoadResult {
    clients: usize,
    requests: u64,
    errors: u64,
    elapsed: Duration,
    p50_micros: u64,
    p99_micros: u64,
}

impl LoadResult {
    fn qps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive `clients` concurrent wire clients against `addr` for `secs`,
/// each issuing point RECOMMEND queries for a rotating user.
fn run_load(addr: std::net::SocketAddr, clients: usize, secs: f64, users: i64) -> LoadResult {
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));
    let lat: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let stop = Arc::clone(&stop);
        let errors = Arc::clone(&errors);
        let lat = Arc::clone(&lat);
        handles.push(std::thread::spawn(move || {
            let mut client = match Client::connect(addr) {
                Ok(cl) => cl,
                Err(_) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            };
            let mut mine = Vec::new();
            let mut n = c as i64;
            while !stop.load(Ordering::Relaxed) {
                let uid = n % users;
                n += 1;
                let sql = format!(
                    "SELECT R.uid, R.iid, R.ratingval FROM ratings AS R \
                     RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF \
                     WHERE R.uid = {uid} ORDER BY R.ratingval DESC LIMIT 10"
                );
                let t = Instant::now();
                match client.execute(&sql) {
                    Ok(_) => mine.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)),
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            lock(&lat).extend(mine);
        }));
    }
    std::thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let elapsed = started.elapsed();
    let mut all = lock(&lat).clone();
    all.sort_unstable();
    LoadResult {
        clients,
        requests: all.len() as u64,
        errors: errors.load(Ordering::Relaxed),
        elapsed,
        p50_micros: percentile(&all, 50.0),
        p99_micros: percentile(&all, 99.0),
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn bench(args: &[String]) -> i32 {
    let secs: f64 = flag(args, "--seconds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let out = flag(args, "--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    const USERS: i64 = 200;
    const ITEMS: i64 = 100;
    let db = Arc::new(RecDb::new());
    seed_engine(&db, USERS, ITEMS);
    let server = Server::start(
        db,
        ServerConfig {
            max_connections: 128,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.addr();

    println!("serving bench on {addr} (host parallelism: {host_threads})");
    println!(
        "{:<8} {:>10} {:>8} {:>10} {:>12} {:>12}",
        "clients", "requests", "errors", "qps", "p50_micros", "p99_micros"
    );
    let mut results = Vec::new();
    for &clients in &[1usize, 8, 64] {
        let r = run_load(addr, clients, secs, USERS);
        println!(
            "{:<8} {:>10} {:>8} {:>10.0} {:>12} {:>12}",
            r.clients,
            r.requests,
            r.errors,
            r.qps(),
            r.p50_micros,
            r.p99_micros
        );
        results.push(r);
    }
    let report = server.shutdown();
    if !report.drained_within_deadline {
        eprintln!(
            "warning: shutdown forced {} connections",
            report.forced_connections
        );
    }

    let body: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"clients\": {}, \"requests\": {}, \"errors\": {}, \
                 \"qps\": {:.0}, \"p50_micros\": {}, \"p99_micros\": {}}}",
                r.clients,
                r.requests,
                r.errors,
                r.qps(),
                r.p50_micros,
                r.p99_micros
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"network_serving\",\n  \"protocol_version\": {},\n  \
         \"host_threads\": {},\n  \"duration_secs_per_point\": {},\n  \
         \"workload\": \"point RECOMMEND queries (ItemCosCF, LIMIT 10) over {} users x {} items\",\n  \
         \"note\": \"threaded TCP server, one session per connection; latencies measured client-side per request\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        recdb_server::PROTOCOL_VERSION,
        host_threads,
        secs,
        USERS,
        ITEMS,
        body.join(",\n")
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("failed to write {out}: {e}");
        return 1;
    }
    println!("wrote {out}");
    0
}

// ---------------------------------------------------------------- soak

const SERVER_SITES: [&str; 3] = [
    "server::accept",
    "server::frame_read",
    "server::frame_write",
];

fn soak(args: &[String]) -> i32 {
    let txns_per_writer: u64 = flag(args, "--txns")
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let seed: u64 = std::env::var("RECDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("soak: seed={seed} txns_per_writer={txns_per_writer}");

    let dir = std::env::temp_dir().join(format!("recdb-soak-{}-{}", std::process::id(), seed));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create soak dir");

    let mut failures = 0u32;
    let acked = {
        let config = RecDbConfig {
            data_dir: Some(dir.clone()),
            ..RecDbConfig::default()
        };
        let db = Arc::new(RecDb::open_with_config(config).expect("open engine"));
        db.execute("CREATE TABLE markers (writer INT, marker INT, part INT)")
            .expect("create markers");
        db.checkpoint().expect("initial checkpoint");

        let server = Server::start(
            Arc::clone(&db),
            ServerConfig {
                idle_timeout: Duration::from_secs(10),
                ..ServerConfig::default()
            },
        )
        .expect("bind server");
        let addr = server.addr();

        // Arm one seeded fault per server site up front; each worker
        // re-arms its site after it triggers so faults keep landing at
        // deterministic-but-varied hit positions throughout the run.
        recdb_fault::clear();
        for site in SERVER_SITES {
            let nth = recdb_fault::schedule_nth(seed, site, 6);
            arm_site(site, nth);
        }

        let acked: Arc<Mutex<Vec<(i64, i64)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut writers = Vec::new();
        for w in 0..2i64 {
            let acked = Arc::clone(&acked);
            writers.push(std::thread::spawn(move || {
                let cfg = ClientConfig {
                    max_retries: 8,
                    ..ClientConfig::default()
                };
                let mut client = Client::connect_with(addr, cfg).expect("writer connect");
                let mut seen = [0u64; SERVER_SITES.len()];
                for m in 0..txns_per_writer as i64 {
                    let marker = w * 1_000_000 + m;
                    // Every 5th transaction is abandoned mid-flight:
                    // drop the connection after BEGIN + one insert and
                    // let the server's session abort reclaim the locks.
                    let abandon = m % 5 == 4;
                    // A transaction that fails mid-flight (injected
                    // fault, killed connection) is retried whole, from
                    // BEGIN — the only sound retry unit under the
                    // wire protocol's semantics.
                    for _attempt in 0..4 {
                        match run_marker_txn(&mut client, w, marker, abandon) {
                            TxnOutcome::Acked => {
                                lock(&acked).push((w, marker));
                                break;
                            }
                            TxnOutcome::Abandoned | TxnOutcome::CommitAmbiguous => break,
                            TxnOutcome::Failed => {
                                if client.in_transaction() {
                                    let _ = client.execute("ROLLBACK");
                                }
                            }
                        }
                    }
                    // Keep the seeded chaos flowing: re-arm a server
                    // site once its previous arm has triggered, at a
                    // fresh deterministic position derived from
                    // (seed, marker).
                    for (i, &site) in SERVER_SITES.iter().enumerate() {
                        let t = recdb_fault::triggered(site);
                        if t > seen[i] {
                            seen[i] = t;
                            let nth = recdb_fault::schedule_nth(
                                seed ^ (marker as u64).wrapping_mul(0x9E37),
                                site,
                                8,
                            );
                            arm_site(site, nth);
                        }
                    }
                }
            }));
        }
        // A reader thread keeps SELECT traffic mixed in.
        let reader_stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let stop = Arc::clone(&reader_stop);
            std::thread::spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                while !stop.load(Ordering::Relaxed) {
                    let _ = client.query("SELECT COUNT(*) FROM markers");
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        for h in writers {
            let _ = h.join();
        }
        reader_stop.store(true, Ordering::Relaxed);
        let _ = reader.join();
        recdb_fault::clear();

        let report = server.shutdown();
        println!(
            "shutdown: drained={} forced={} leaked={} in {:?}",
            report.drained_within_deadline,
            report.forced_connections,
            report.leaked_connections,
            report.elapsed
        );
        if report.leaked_connections != 0 {
            eprintln!(
                "FAIL: {} connections leaked at shutdown",
                report.leaked_connections
            );
            failures += 1;
        }
        let held = db.lock_table().held_count();
        if held != 0 {
            eprintln!("FAIL: {held} locks still held after shutdown");
            failures += 1;
        }
        let acked = lock(&acked).clone();
        println!(
            "workload done: {} acknowledged commits, locks held: {held}",
            acked.len()
        );
        // Engine dropped here WITHOUT a clean close beyond the
        // shutdown checkpoint — recovery below must still see every
        // acknowledged commit.
        acked
    };

    // Crash-recovery check: reopen and verify.
    let config = RecDbConfig {
        data_dir: Some(dir.clone()),
        ..RecDbConfig::default()
    };
    let db = RecDb::open_with_config(config).expect("reopen engine");
    let rows = db
        .query("SELECT writer, marker, part FROM markers")
        .expect("read markers");
    let mut counts: std::collections::HashMap<(i64, i64), u64> = std::collections::HashMap::new();
    for row in rows.rows() {
        let vals = row.values();
        if let (recdb_storage::Value::Int(w), recdb_storage::Value::Int(m)) = (&vals[0], &vals[1]) {
            *counts.entry((*w, *m)).or_insert(0) += 1;
        }
    }
    for key in &acked {
        match counts.get(key) {
            Some(3) => {}
            other => {
                eprintln!("FAIL: acked marker {key:?} has {other:?} rows after recovery (want 3)");
                failures += 1;
            }
        }
    }
    for (key, n) in &counts {
        if *n != 3 {
            eprintln!("FAIL: marker {key:?} recovered torn ({n} of 3 rows)");
            failures += 1;
        }
    }
    println!(
        "recovery: {} marker groups on disk, {} acknowledged, atomicity {}",
        counts.len(),
        acked.len(),
        if failures == 0 { "OK" } else { "VIOLATED" }
    );
    let _ = std::fs::remove_dir_all(&dir);
    if failures == 0 {
        println!("soak PASS (seed={seed})");
        0
    } else {
        eprintln!("soak FAIL (seed={seed}): {failures} violations");
        1
    }
}

/// `arm_error` needs a `&'static str`; the soak's sites are the fixed
/// array above, so map through it.
fn arm_site(site: &str, nth: u64) {
    for s in SERVER_SITES {
        if s == site {
            recdb_fault::arm_error(s, nth);
        }
    }
}

enum TxnOutcome {
    Acked,
    Abandoned,
    Failed,
    /// The COMMIT was sent but the connection died before the response:
    /// the commit may or may not have applied. Never retried (a retry
    /// could double-apply) and never counted as acknowledged.
    CommitAmbiguous,
}

/// Whether a COMMIT failure leaves the outcome unknown: the request hit
/// the wire but no response came back.
fn commit_ambiguous(e: &ClientError) -> bool {
    match e {
        ClientError::ConnectionLost { sent: true, .. } => true,
        ClientError::RetriesExhausted { last, .. } => commit_ambiguous(last),
        _ => false,
    }
}

/// One marker transaction over the wire: BEGIN, three inserts sharing a
/// marker value, COMMIT. Returns `Acked` only when the COMMIT response
/// frame arrived — exactly the commits recovery must preserve.
fn run_marker_txn(client: &mut Client, writer: i64, marker: i64, abandon: bool) -> TxnOutcome {
    if client.execute("BEGIN").is_err() {
        return TxnOutcome::Failed;
    }
    for part in 0..3 {
        let sql = format!("INSERT INTO markers VALUES ({writer}, {marker}, {part})");
        if abandon && part == 1 {
            // Kill the connection mid-transaction: the server must
            // abort the session and release its locks.
            client.drop_connection();
            return TxnOutcome::Abandoned;
        }
        if client.execute(&sql).is_err() {
            return TxnOutcome::Failed;
        }
    }
    match client.execute("COMMIT") {
        Ok(WireResult::TransactionCommitted) => TxnOutcome::Acked,
        Ok(_) => TxnOutcome::Failed,
        Err(e) if commit_ambiguous(&e) => TxnOutcome::CommitAmbiguous,
        Err(_) => TxnOutcome::Failed,
    }
}
