//! A reconnecting RecDB client with bounded exponential backoff.
//!
//! [`Client`] keys its retry policy on the wire protocol's retryable
//! bit: retryable server errors (`overloaded`, `lock_timeout`,
//! `cancelled`, …) and failed connection attempts are retried with
//! exponential backoff up to [`ClientConfig::max_retries`]; fatal errors
//! surface immediately.
//!
//! Two situations are never retried automatically:
//!
//! - **Inside an explicit transaction.** The server rolls the whole
//!   transaction back on any statement failure, so silently re-running
//!   one statement would splice it into a transaction that no longer
//!   exists. The error is surfaced and the client forgets the
//!   transaction state; re-run from `BEGIN`.
//! - **Ambiguous outcomes.** If the connection dies *after* a request
//!   was written but before the response arrived, the statement may or
//!   may not have committed. That surfaces as
//!   [`ClientError::ConnectionLost`] with `sent: true`; opt in to
//!   retrying those (for idempotent statements only) with
//!   [`ClientConfig::retry_ambiguous`].

use crate::protocol::{
    read_frame, write_frame, ErrorCode, ProtocolError, Request, Response, WireError, WireResult,
    DEFAULT_MAX_FRAME_BYTES,
};
use recdb_exec::ResultSet;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side tunables. `Default` suits tests and local serving.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Socket read/write timeout per frame.
    pub io_timeout: Duration,
    /// Largest response frame accepted (mirrors the server's cap).
    pub max_frame_bytes: usize,
    /// Retry attempts after the first failure (0 disables retries).
    pub max_retries: u32,
    /// First backoff sleep; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Also retry ambiguous failures (request sent, no response). Only
    /// safe when every statement you send is idempotent.
    pub retry_ambiguous: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(30),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_retries: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(640),
            retry_ambiguous: false,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not establish (or re-establish) a connection.
    Connect(std::io::Error),
    /// The server answered with an error frame. `retryable` says whether
    /// backing off and resending the same request may succeed.
    Server(WireError),
    /// The wire protocol broke (bad frame, unexpected message).
    Protocol(ProtocolError),
    /// The connection died. `sent` is true when the request had already
    /// been written, making the statement's outcome ambiguous.
    ConnectionLost {
        /// Whether the request reached the wire before the failure.
        sent: bool,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// All retry attempts were exhausted; `last` is the final failure.
    RetriesExhausted {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// The last error observed.
        last: Box<ClientError>,
    },
    /// The response was not the variant the call expected (e.g. `query`
    /// on a statement that produced no rows).
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::ConnectionLost { sent, source } => write!(
                f,
                "connection lost ({}): {source}",
                if *sent {
                    "after request was sent; outcome ambiguous"
                } else {
                    "before request was sent"
                }
            ),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::ConnectionLost { source, .. } => Some(source),
            ClientError::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

/// Convenience alias for client call results.
pub type ClientResult<T> = Result<T, ClientError>;

/// A RecDB wire-protocol client: one logical connection that transparently
/// reconnects and retries retryable failures with bounded backoff.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<TcpStream>,
    in_transaction: bool,
    /// Total reconnect attempts made over this client's lifetime
    /// (observability for tests and the soak harness).
    reconnects: u64,
}

impl Client {
    /// Connect with default configuration.
    pub fn connect(addr: SocketAddr) -> ClientResult<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit configuration. The initial connection is
    /// itself retried per the backoff policy (the server may be
    /// momentarily overloaded).
    pub fn connect_with(addr: SocketAddr, cfg: ClientConfig) -> ClientResult<Client> {
        let mut client = Client {
            addr,
            cfg,
            conn: None,
            in_transaction: false,
            reconnects: 0,
        };
        let mut last: Option<ClientError> = None;
        for attempt in 0..=client.cfg.max_retries {
            if attempt > 0 {
                std::thread::sleep(client.backoff(attempt - 1));
            }
            match client.dial() {
                Ok(stream) => {
                    client.conn = Some(stream);
                    return Ok(client);
                }
                Err(e) if e.retryable_now(false) && client.cfg.max_retries > 0 => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: client.cfg.max_retries + 1,
            last: Box::new(last.unwrap_or(ClientError::UnexpectedResponse("no attempt made"))),
        })
    }

    /// Whether the last successful statement left an explicit
    /// transaction open on the server.
    pub fn in_transaction(&self) -> bool {
        self.in_transaction
    }

    /// Reconnect attempts made so far (including the initial connect
    /// retries).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Drop the TCP connection on the floor — no ROLLBACK, no goodbye.
    /// Chaos-testing hook: simulates a client dying mid-transaction; the
    /// server must abort the session and release its locks. The next
    /// call transparently reconnects.
    pub fn drop_connection(&mut self) {
        self.conn = None;
        self.in_transaction = false;
    }

    /// Execute one SQL statement under the server's default limits.
    pub fn execute(&mut self, sql: &str) -> ClientResult<WireResult> {
        self.execute_with_deadline(sql, None)
    }

    /// Execute one SQL statement with a per-request deadline; the server
    /// maps it onto a `QueryGuard`, so an overrunning statement comes
    /// back as a retryable `cancelled` error.
    pub fn execute_with_deadline(
        &mut self,
        sql: &str,
        deadline: Option<Duration>,
    ) -> ClientResult<WireResult> {
        let request = Request::Statement {
            deadline,
            sql: sql.to_owned(),
        };
        let response = self.call(&request, false)?;
        match response {
            Response::Result(res) => {
                self.note_txn(&res);
                Ok(res)
            }
            Response::Error(err) => {
                // Any statement failure inside an explicit transaction
                // aborts it server-side; mirror that here.
                self.in_transaction = false;
                Err(ClientError::Server(err))
            }
            _ => Err(ClientError::UnexpectedResponse(
                "statement answered with a non-result frame",
            )),
        }
    }

    /// Execute a SELECT and reassemble its rows.
    pub fn query(&mut self, sql: &str) -> ClientResult<ResultSet> {
        match self.execute(sql)? {
            res @ WireResult::Rows { .. } => res
                .into_result_set()
                .ok_or(ClientError::UnexpectedResponse("rows failed to reassemble")),
            _ => Err(ClientError::UnexpectedResponse(
                "statement did not produce rows",
            )),
        }
    }

    /// Fetch the server's Prometheus text exposition (`METRICS` verb).
    pub fn metrics_text(&mut self) -> ClientResult<String> {
        match self.call(&Request::Metrics, true)? {
            Response::MetricsText(text) => Ok(text),
            Response::Error(err) => Err(ClientError::Server(err)),
            _ => Err(ClientError::UnexpectedResponse(
                "metrics answered with a non-text frame",
            )),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(&Request::Ping, true)? {
            Response::Pong => Ok(()),
            Response::Error(err) => Err(ClientError::Server(err)),
            _ => Err(ClientError::UnexpectedResponse(
                "ping answered with a non-pong frame",
            )),
        }
    }

    /// One request/response exchange with the retry loop around it.
    /// `idempotent` marks requests (PING, METRICS) that are always safe
    /// to resend, so even ambiguous connection losses retry — a server
    /// that idle-closed the socket between requests looks exactly like
    /// that case.
    fn call(&mut self, request: &Request, idempotent: bool) -> ClientResult<Response> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                std::thread::sleep(self.backoff(attempt - 1));
            }
            match self.call_once(request) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    let was_in_txn = self.in_transaction;
                    // A dead connection aborts any server-side
                    // transaction; never silently resume one.
                    if matches!(
                        e,
                        ClientError::ConnectionLost { .. }
                            | ClientError::Connect(_)
                            | ClientError::Protocol(_)
                    ) {
                        self.conn = None;
                        self.in_transaction = false;
                    }
                    if was_in_txn {
                        // Whatever failed, the explicit transaction is
                        // gone server-side (statement errors abort it,
                        // dead connections drop the session). Retrying
                        // one statement of it would splice it into
                        // nothing; surface the error, caller restarts
                        // from BEGIN.
                        self.in_transaction = false;
                        return Err(e);
                    }
                    let retryable = e.retryable_now(self.cfg.retry_ambiguous || idempotent);
                    if !retryable || attempt == self.cfg.max_retries {
                        if attempt > 0 {
                            return Err(ClientError::RetriesExhausted {
                                attempts: attempt + 1,
                                last: Box::new(e),
                            });
                        }
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: self.cfg.max_retries + 1,
            last: Box::new(last.unwrap_or(ClientError::UnexpectedResponse("no attempt made"))),
        })
    }

    /// One request/response exchange on the current (or a fresh)
    /// connection, no retries.
    fn call_once(&mut self, request: &Request) -> ClientResult<Response> {
        if self.conn.is_none() {
            self.conn = Some(self.dial()?);
        }
        let stream = match self.conn.as_mut() {
            Some(s) => s,
            None => return Err(ClientError::UnexpectedResponse("no connection")),
        };
        let payload = request.encode();
        if let Err(e) = write_frame(&mut &*stream, &payload, self.cfg.max_frame_bytes) {
            return Err(match e {
                ProtocolError::Io(source) => ClientError::ConnectionLost {
                    sent: false,
                    source,
                },
                other => ClientError::Protocol(other),
            });
        }
        match read_frame(&mut &*stream, self.cfg.max_frame_bytes) {
            Ok(Some(bytes)) => Response::decode(&bytes).map_err(ClientError::Protocol),
            Ok(None) => Err(ClientError::ConnectionLost {
                sent: true,
                source: std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection before responding",
                ),
            }),
            Err(ProtocolError::Io(source)) => {
                Err(ClientError::ConnectionLost { sent: true, source })
            }
            Err(other) => Err(ClientError::Protocol(other)),
        }
    }

    /// Establish a TCP connection and consume the server's greeting.
    fn dial(&mut self) -> ClientResult<TcpStream> {
        self.reconnects += 1;
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)
            .map_err(ClientError::Connect)?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.cfg.io_timeout));
        let _ = stream.set_write_timeout(Some(self.cfg.io_timeout));
        let greeting = read_frame(&mut &stream, self.cfg.max_frame_bytes)
            .map_err(ClientError::Protocol)?
            .ok_or(ClientError::Connect(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "server closed the connection before greeting",
            )))?;
        match Response::decode(&greeting).map_err(ClientError::Protocol)? {
            Response::Hello { .. } => Ok(stream),
            Response::Error(err) => Err(ClientError::Server(err)),
            _ => Err(ClientError::UnexpectedResponse(
                "greeting was neither hello nor error",
            )),
        }
    }

    fn note_txn(&mut self, res: &WireResult) {
        match res {
            WireResult::TransactionStarted => self.in_transaction = true,
            WireResult::TransactionCommitted | WireResult::TransactionRolledBack => {
                self.in_transaction = false
            }
            _ => {}
        }
    }

    fn backoff(&self, exp: u32) -> Duration {
        let base = self.cfg.backoff_base.max(Duration::from_millis(1));
        base.saturating_mul(1u32 << exp.min(16))
            .min(self.cfg.backoff_cap)
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("connected", &self.conn.is_some())
            .field("in_transaction", &self.in_transaction)
            .field("reconnects", &self.reconnects)
            .finish_non_exhaustive()
    }
}

impl ClientError {
    /// Whether the retry loop may try again, given the ambiguity policy.
    fn retryable_now(&self, retry_ambiguous: bool) -> bool {
        match self {
            ClientError::Connect(_) => true,
            ClientError::Server(err) => err.retryable && err.code != ErrorCode::ShuttingDown,
            ClientError::ConnectionLost { sent: false, .. } => true,
            ClientError::ConnectionLost { sent: true, .. } => retry_ambiguous,
            ClientError::Protocol(_) => false,
            ClientError::RetriesExhausted { .. } => false,
            ClientError::UnexpectedResponse(_) => false,
        }
    }
}
