//! The RecDB wire protocol: length-prefixed frames carrying statements
//! in and typed results (or a classified error) out.
//!
//! # Frame layout
//!
//! Every message — in both directions — is one *frame*:
//!
//! ```text
//! +----------------+-----------------------+
//! | u32 BE length  | payload (length bytes)|
//! +----------------+-----------------------+
//! ```
//!
//! The length covers the payload only. A receiver must reject a length
//! larger than its configured `max_frame_bytes` *before* allocating
//! anything, so a hostile 4-byte header can never balloon memory.
//!
//! Payloads reuse the storage codec ([`recdb_storage::codec`]): integers
//! are big-endian, strings are `u32` length + UTF-8 bytes, rows are
//! [`Tuple`] encodings — the same bytes the heap stores.
//!
//! # Conversation shape
//!
//! On accept the server speaks first: one [`Response::Hello`] frame (or a
//! retryable `overloaded` [`Response::Error`] followed by close, when
//! admission control rejects the connection). After that the client
//! drives: one [`Request`] frame in, exactly one [`Response`] frame out,
//! in order, until either side closes. Each connection owns one engine
//! session, so `BEGIN`/`COMMIT`/`ROLLBACK` behave exactly as they do
//! in-process.

use recdb_core::{EngineError, QueryResult};
use recdb_exec::{ExecError, ResultSet};
use recdb_storage::codec::{put_str, put_u16, put_u32, put_u64, put_u8, Reader};
use recdb_storage::{Column, DataType, Schema, Tuple};
use std::io::{Read, Write};
use std::time::Duration;

/// Wire protocol version sent in the server's hello frame.
pub const PROTOCOL_VERSION: u16 = 1;

/// Default cap on a single frame's payload size (16 MiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// A protocol-level failure: the connection is no longer usable and must
/// be closed (engine-level errors travel as [`Response::Error`] frames
/// instead and leave the connection healthy).
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer announced a frame larger than `max_frame_bytes`.
    FrameTooLarge {
        /// Announced payload length.
        announced: u64,
        /// The receiver's configured cap.
        max: usize,
    },
    /// The payload bytes did not decode as a valid message.
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::FrameTooLarge { announced, max } => write!(
                f,
                "frame of {announced} bytes exceeds max_frame_bytes={max}"
            ),
            ProtocolError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Read one frame payload from `r`, enforcing `max_frame_bytes` before
/// any allocation. Returns `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(
    r: &mut impl Read,
    max_frame_bytes: usize,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(ProtocolError::Malformed(
                    "connection closed mid frame header".into(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_frame_bytes {
        return Err(ProtocolError::FrameTooLarge {
            announced: len as u64,
            max: max_frame_bytes,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Write one frame (header + payload) to `w`.
pub fn write_frame(
    w: &mut impl Write,
    payload: &[u8],
    max_frame_bytes: usize,
) -> Result<(), ProtocolError> {
    if payload.len() > max_frame_bytes {
        return Err(ProtocolError::FrameTooLarge {
            announced: payload.len() as u64,
            max: max_frame_bytes,
        });
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute one SQL statement in this connection's session.
    Statement {
        /// Per-request deadline mapped onto the engine's [`recdb_guard::QueryGuard`];
        /// `None` falls back to the server's governor defaults.
        deadline: Option<Duration>,
        /// The statement text.
        sql: String,
    },
    /// Fetch the Prometheus text rendering of every engine + server metric.
    Metrics,
    /// Liveness probe.
    Ping,
}

const REQ_STATEMENT: u8 = 1;
const REQ_METRICS: u8 = 2;
const REQ_PING: u8 = 3;

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Statement { deadline, sql } => {
                put_u8(&mut buf, REQ_STATEMENT);
                let micros = deadline.map_or(0, |d| d.as_micros().min(u64::MAX as u128) as u64);
                put_u64(&mut buf, micros);
                put_str(&mut buf, sql);
            }
            Request::Metrics => put_u8(&mut buf, REQ_METRICS),
            Request::Ping => put_u8(&mut buf, REQ_PING),
        }
        buf
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = Reader::new(payload, "request frame");
        let tag = r.take_u8().map_err(malformed)?;
        let req = match tag {
            REQ_STATEMENT => {
                let micros = r.take_u64().map_err(malformed)?;
                let sql = r.take_str().map_err(malformed)?;
                Request::Statement {
                    deadline: (micros > 0).then(|| Duration::from_micros(micros)),
                    sql,
                }
            }
            REQ_METRICS => Request::Metrics,
            REQ_PING => Request::Ping,
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown request tag {other}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after request",
                r.remaining()
            )));
        }
        Ok(req)
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// First frame on every admitted connection.
    Hello {
        /// Protocol version the server speaks.
        version: u16,
    },
    /// The statement succeeded.
    Result(WireResult),
    /// The statement (or the connection attempt) failed.
    Error(WireError),
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Metrics`]: the Prometheus text exposition.
    MetricsText(String),
}

const RESP_HELLO: u8 = 0;
const RESP_RESULT: u8 = 1;
const RESP_ERROR: u8 = 2;
const RESP_PONG: u8 = 3;
const RESP_METRICS: u8 = 4;

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Hello { version } => {
                put_u8(&mut buf, RESP_HELLO);
                put_u16(&mut buf, *version);
            }
            Response::Result(res) => {
                put_u8(&mut buf, RESP_RESULT);
                res.encode_into(&mut buf);
            }
            Response::Error(err) => {
                put_u8(&mut buf, RESP_ERROR);
                put_str(&mut buf, err.code.as_str());
                put_u8(&mut buf, u8::from(err.retryable));
                put_str(&mut buf, &err.message);
            }
            Response::Pong => put_u8(&mut buf, RESP_PONG),
            Response::MetricsText(text) => {
                put_u8(&mut buf, RESP_METRICS);
                put_str(&mut buf, text);
            }
        }
        buf
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = Reader::new(payload, "response frame");
        let tag = r.take_u8().map_err(malformed)?;
        let resp = match tag {
            RESP_HELLO => Response::Hello {
                version: r.take_u16().map_err(malformed)?,
            },
            RESP_RESULT => Response::Result(WireResult::decode_from(&mut r)?),
            RESP_ERROR => {
                let code = r.take_str().map_err(malformed)?;
                let retryable = r.take_u8().map_err(malformed)? != 0;
                let message = r.take_str().map_err(malformed)?;
                Response::Error(WireError {
                    code: ErrorCode::from_wire(&code),
                    retryable,
                    message,
                })
            }
            RESP_PONG => Response::Pong,
            RESP_METRICS => Response::MetricsText(r.take_str().map_err(malformed)?),
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown response tag {other}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after response",
                r.remaining()
            )));
        }
        Ok(resp)
    }
}

fn malformed(e: recdb_storage::StorageError) -> ProtocolError {
    ProtocolError::Malformed(e.to_string())
}

/// A [`QueryResult`] flattened for the wire. `Rows` carries the schema
/// (column names + types) and the tuples in storage encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResult {
    /// `CREATE TABLE` succeeded.
    TableCreated(String),
    /// `DROP TABLE` succeeded.
    TableDropped(String),
    /// `INSERT` stored this many rows.
    Inserted(u64),
    /// `CREATE RECOMMENDER` trained a model in `build_micros` µs.
    RecommenderCreated {
        /// Recommender name.
        name: String,
        /// Model build time in microseconds.
        build_micros: u64,
    },
    /// `DROP RECOMMENDER` succeeded.
    RecommenderDropped(String),
    /// `CREATE INDEX` succeeded.
    IndexCreated(String),
    /// `DROP INDEX` succeeded.
    IndexDropped(String),
    /// `DELETE` removed this many rows.
    Deleted(u64),
    /// `UPDATE` rewrote this many rows.
    Updated(u64),
    /// A `SELECT` produced rows.
    Rows {
        /// `(column name, declared type)` per output column.
        columns: Vec<(String, DataType)>,
        /// The result tuples.
        rows: Vec<Tuple>,
    },
    /// `BEGIN` opened an explicit transaction.
    TransactionStarted,
    /// `COMMIT` made the transaction durable and visible.
    TransactionCommitted,
    /// `ROLLBACK` undid the transaction.
    TransactionRolledBack,
}

const WR_TABLE_CREATED: u8 = 0;
const WR_TABLE_DROPPED: u8 = 1;
const WR_INSERTED: u8 = 2;
const WR_REC_CREATED: u8 = 3;
const WR_REC_DROPPED: u8 = 4;
const WR_INDEX_CREATED: u8 = 5;
const WR_INDEX_DROPPED: u8 = 6;
const WR_DELETED: u8 = 7;
const WR_UPDATED: u8 = 8;
const WR_ROWS: u8 = 9;
const WR_TXN_STARTED: u8 = 10;
const WR_TXN_COMMITTED: u8 = 11;
const WR_TXN_ROLLED_BACK: u8 = 12;

fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::Point => 4,
        DataType::Rect => 5,
    }
}

fn type_from_tag(tag: u8) -> Result<DataType, ProtocolError> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Bool,
        4 => DataType::Point,
        5 => DataType::Rect,
        other => {
            return Err(ProtocolError::Malformed(format!(
                "unknown column type tag {other}"
            )))
        }
    })
}

impl WireResult {
    /// Flatten an engine [`QueryResult`] for the wire.
    pub fn from_query_result(res: &QueryResult) -> WireResult {
        match res {
            QueryResult::TableCreated(n) => WireResult::TableCreated(n.clone()),
            QueryResult::TableDropped(n) => WireResult::TableDropped(n.clone()),
            QueryResult::Inserted(n) => WireResult::Inserted(*n as u64),
            QueryResult::RecommenderCreated { name, build_time } => {
                WireResult::RecommenderCreated {
                    name: name.clone(),
                    build_micros: build_time.as_micros().min(u64::MAX as u128) as u64,
                }
            }
            QueryResult::RecommenderDropped(n) => WireResult::RecommenderDropped(n.clone()),
            QueryResult::IndexCreated(n) => WireResult::IndexCreated(n.clone()),
            QueryResult::IndexDropped(n) => WireResult::IndexDropped(n.clone()),
            QueryResult::Deleted(n) => WireResult::Deleted(*n as u64),
            QueryResult::Updated(n) => WireResult::Updated(*n as u64),
            QueryResult::Rows(rs) => WireResult::Rows {
                columns: rs
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| (c.qualified_name(), c.data_type))
                    .collect(),
                rows: rs.rows().to_vec(),
            },
            QueryResult::TransactionStarted => WireResult::TransactionStarted,
            QueryResult::TransactionCommitted => WireResult::TransactionCommitted,
            QueryResult::TransactionRolledBack => WireResult::TransactionRolledBack,
        }
    }

    /// Reassemble a [`ResultSet`] from a `Rows` result (client side).
    pub fn into_result_set(self) -> Option<ResultSet> {
        match self {
            WireResult::Rows { columns, rows } => {
                let cols = columns
                    .into_iter()
                    .map(|(name, dt)| Column::new(name, dt))
                    .collect();
                Some(ResultSet::new(Schema::new(cols), rows))
            }
            _ => None,
        }
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            WireResult::TableCreated(n) => {
                put_u8(buf, WR_TABLE_CREATED);
                put_str(buf, n);
            }
            WireResult::TableDropped(n) => {
                put_u8(buf, WR_TABLE_DROPPED);
                put_str(buf, n);
            }
            WireResult::Inserted(n) => {
                put_u8(buf, WR_INSERTED);
                put_u64(buf, *n);
            }
            WireResult::RecommenderCreated { name, build_micros } => {
                put_u8(buf, WR_REC_CREATED);
                put_str(buf, name);
                put_u64(buf, *build_micros);
            }
            WireResult::RecommenderDropped(n) => {
                put_u8(buf, WR_REC_DROPPED);
                put_str(buf, n);
            }
            WireResult::IndexCreated(n) => {
                put_u8(buf, WR_INDEX_CREATED);
                put_str(buf, n);
            }
            WireResult::IndexDropped(n) => {
                put_u8(buf, WR_INDEX_DROPPED);
                put_str(buf, n);
            }
            WireResult::Deleted(n) => {
                put_u8(buf, WR_DELETED);
                put_u64(buf, *n);
            }
            WireResult::Updated(n) => {
                put_u8(buf, WR_UPDATED);
                put_u64(buf, *n);
            }
            WireResult::Rows { columns, rows } => {
                put_u8(buf, WR_ROWS);
                put_u16(buf, columns.len() as u16);
                for (name, dt) in columns {
                    put_str(buf, name);
                    put_u8(buf, type_tag(*dt));
                }
                put_u32(buf, rows.len() as u32);
                for row in rows {
                    row.encode_into(buf);
                }
            }
            WireResult::TransactionStarted => put_u8(buf, WR_TXN_STARTED),
            WireResult::TransactionCommitted => put_u8(buf, WR_TXN_COMMITTED),
            WireResult::TransactionRolledBack => put_u8(buf, WR_TXN_ROLLED_BACK),
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<WireResult, ProtocolError> {
        let kind = r.take_u8().map_err(malformed)?;
        Ok(match kind {
            WR_TABLE_CREATED => WireResult::TableCreated(r.take_str().map_err(malformed)?),
            WR_TABLE_DROPPED => WireResult::TableDropped(r.take_str().map_err(malformed)?),
            WR_INSERTED => WireResult::Inserted(r.take_u64().map_err(malformed)?),
            WR_REC_CREATED => WireResult::RecommenderCreated {
                name: r.take_str().map_err(malformed)?,
                build_micros: r.take_u64().map_err(malformed)?,
            },
            WR_REC_DROPPED => WireResult::RecommenderDropped(r.take_str().map_err(malformed)?),
            WR_INDEX_CREATED => WireResult::IndexCreated(r.take_str().map_err(malformed)?),
            WR_INDEX_DROPPED => WireResult::IndexDropped(r.take_str().map_err(malformed)?),
            WR_DELETED => WireResult::Deleted(r.take_u64().map_err(malformed)?),
            WR_UPDATED => WireResult::Updated(r.take_u64().map_err(malformed)?),
            WR_ROWS => {
                let ncols = r.take_u16().map_err(malformed)? as usize;
                let mut columns = Vec::with_capacity(ncols.min(4096));
                for _ in 0..ncols {
                    let name = r.take_str().map_err(malformed)?;
                    let dt = type_from_tag(r.take_u8().map_err(malformed)?)?;
                    columns.push((name, dt));
                }
                let nrows = r.take_u32().map_err(malformed)? as usize;
                let mut rows = Vec::with_capacity(nrows.min(65_536));
                for _ in 0..nrows {
                    let (tuple, consumed) = Tuple::decode(r.rest()).map_err(malformed)?;
                    r.skip(consumed).map_err(malformed)?;
                    rows.push(tuple);
                }
                WireResult::Rows { columns, rows }
            }
            WR_TXN_STARTED => WireResult::TransactionStarted,
            WR_TXN_COMMITTED => WireResult::TransactionCommitted,
            WR_TXN_ROLLED_BACK => WireResult::TransactionRolledBack,
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown result kind {other}"
                )))
            }
        })
    }
}

/// Stable error codes carried on the wire. Each maps to one arm of the
/// engine's [`EngineError`] taxonomy, plus the server-only conditions
/// (`overloaded`, `shutting_down`, frame-level failures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// SQL could not be parsed.
    Parse,
    /// Planning or execution failed.
    Exec,
    /// A storage operation failed.
    Storage,
    /// A checksum failed — durable data is damaged.
    Corruption,
    /// The write-ahead log failed (fsync, append).
    Wal,
    /// Recommender lifecycle conflict (exists / not found).
    Recommender,
    /// CREATE TABLE used an unknown type, or INSERT was non-constant.
    Semantic,
    /// The statement hit its deadline or was cancelled.
    Cancelled,
    /// The statement exceeded a row or memory budget.
    ResourceExhausted,
    /// A panic was contained at the engine boundary.
    Internal,
    /// A table lock could not be granted in time; the transaction was
    /// rolled back.
    LockTimeout,
    /// BEGIN inside a transaction, or COMMIT/ROLLBACK outside one.
    TransactionState,
    /// A checkpoint gave up waiting for open transactions.
    CheckpointContended,
    /// A deterministic fault-injection site fired (tests only).
    Fault,
    /// Admission control rejected the connection: retry after backoff.
    Overloaded,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The peer announced a frame larger than `max_frame_bytes`.
    FrameTooLarge,
    /// The frame payload did not decode.
    MalformedFrame,
    /// An error code this client build does not know.
    Unknown,
}

impl ErrorCode {
    /// The stable string carried on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Exec => "exec",
            ErrorCode::Storage => "storage",
            ErrorCode::Corruption => "corruption",
            ErrorCode::Wal => "wal",
            ErrorCode::Recommender => "recommender",
            ErrorCode::Semantic => "semantic",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::ResourceExhausted => "resource_exhausted",
            ErrorCode::Internal => "internal",
            ErrorCode::LockTimeout => "lock_timeout",
            ErrorCode::TransactionState => "transaction_state",
            ErrorCode::CheckpointContended => "checkpoint_contended",
            ErrorCode::Fault => "fault",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::Unknown => "unknown",
        }
    }

    /// Parse a wire code; unrecognized strings become [`ErrorCode::Unknown`]
    /// so newer servers never break older clients.
    pub fn from_wire(s: &str) -> ErrorCode {
        match s {
            "parse" => ErrorCode::Parse,
            "exec" => ErrorCode::Exec,
            "storage" => ErrorCode::Storage,
            "corruption" => ErrorCode::Corruption,
            "wal" => ErrorCode::Wal,
            "recommender" => ErrorCode::Recommender,
            "semantic" => ErrorCode::Semantic,
            "cancelled" => ErrorCode::Cancelled,
            "resource_exhausted" => ErrorCode::ResourceExhausted,
            "internal" => ErrorCode::Internal,
            "lock_timeout" => ErrorCode::LockTimeout,
            "transaction_state" => ErrorCode::TransactionState,
            "checkpoint_contended" => ErrorCode::CheckpointContended,
            "fault" => ErrorCode::Fault,
            "overloaded" => ErrorCode::Overloaded,
            "shutting_down" => ErrorCode::ShuttingDown,
            "frame_too_large" => ErrorCode::FrameTooLarge,
            "malformed_frame" => ErrorCode::MalformedFrame,
            _ => ErrorCode::Unknown,
        }
    }
}

/// A classified error as it travels on the wire: a stable code, a
/// retryable bit clients key their backoff on, and the human message.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Stable machine-readable code.
    pub code: ErrorCode,
    /// Whether a client may retry the same request after backoff. The
    /// enclosing transaction (if any) has been rolled back either way.
    pub retryable: bool,
    /// Human-readable detail (the engine error's `Display`).
    pub message: String,
}

impl WireError {
    /// Build a server-side error with an explicit code.
    pub fn new(code: ErrorCode, retryable: bool, message: impl Into<String>) -> WireError {
        WireError {
            code,
            retryable,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}): {}",
            self.code.as_str(),
            if self.retryable { "retryable" } else { "fatal" },
            self.message
        )
    }
}

/// Classify an [`EngineError`] into its wire code and retryable bit.
///
/// Retryable means "the same statement may succeed later without the
/// client changing anything": transient contention (lock timeouts,
/// contended checkpoints), deadline cancellations, contained panics, WAL
/// hiccups, and injected faults. Everything the client must change —
/// bad SQL, type errors, exhausted budgets, corrupt data — is fatal.
pub fn classify(err: &EngineError) -> WireError {
    let (code, retryable) = match err {
        EngineError::Parse(_) => (ErrorCode::Parse, false),
        EngineError::Exec(ExecError::FaultInjected(_)) => (ErrorCode::Fault, true),
        EngineError::Exec(_) => (ErrorCode::Exec, false),
        EngineError::Storage(_) => (ErrorCode::Storage, false),
        EngineError::Corruption { .. } => (ErrorCode::Corruption, false),
        EngineError::Wal(_) => (ErrorCode::Wal, true),
        EngineError::RecommenderExists(_) | EngineError::RecommenderNotFound(_) => {
            (ErrorCode::Recommender, false)
        }
        EngineError::UnknownType(_) | EngineError::NonConstantInsert(_) => {
            (ErrorCode::Semantic, false)
        }
        EngineError::Cancelled { .. } => (ErrorCode::Cancelled, true),
        EngineError::ResourceExhausted { .. } => (ErrorCode::ResourceExhausted, false),
        EngineError::Internal(_) => (ErrorCode::Internal, true),
        EngineError::LockTimeout { .. } => (ErrorCode::LockTimeout, true),
        EngineError::TransactionActive | EngineError::NoActiveTransaction => {
            (ErrorCode::TransactionState, false)
        }
        EngineError::CheckpointContended { .. } => (ErrorCode::CheckpointContended, true),
    };
    WireError::new(code, retryable, err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_storage::Value;

    #[test]
    fn request_round_trip() {
        let reqs = [
            Request::Statement {
                deadline: Some(Duration::from_micros(1500)),
                sql: "SELECT * FROM t".into(),
            },
            Request::Statement {
                deadline: None,
                sql: String::new(),
            },
            Request::Metrics,
            Request::Ping,
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).expect("decode"), req);
        }
    }

    #[test]
    fn response_round_trip() {
        let rows = WireResult::Rows {
            columns: vec![
                ("item".into(), DataType::Int),
                ("score".into(), DataType::Float),
            ],
            rows: vec![
                Tuple::new(vec![Value::Int(7), Value::Float(4.5)]),
                Tuple::new(vec![Value::Int(9), Value::Null]),
            ],
        };
        let resps = [
            Response::Hello {
                version: PROTOCOL_VERSION,
            },
            Response::Result(rows),
            Response::Result(WireResult::Inserted(3)),
            Response::Result(WireResult::TransactionCommitted),
            Response::Error(WireError::new(ErrorCode::Overloaded, true, "busy")),
            Response::Pong,
            Response::MetricsText("recdb_up 1\n".into()),
        ];
        for resp in resps {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).expect("decode"), resp);
        }
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        // Header announces ~4 GiB; the reader must bail on the header
        // alone without ever allocating the payload.
        let mut stream: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0x00];
        match read_frame(&mut stream, 1024) {
            Err(ProtocolError::FrameTooLarge { announced, max }) => {
                assert_eq!(announced, 0xFFFF_FFFF);
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn garbage_payload_is_malformed_not_panic() {
        for payload in [&[][..], &[99][..], &[1, 0, 0][..], &[2, 1, 2, 3][..]] {
            assert!(matches!(
                Request::decode(payload),
                Err(ProtocolError::Malformed(_))
            ));
        }
    }

    #[test]
    fn classify_marks_transients_retryable() {
        assert!(
            classify(&EngineError::LockTimeout {
                table: "r".into(),
                waited: Duration::from_millis(5)
            })
            .retryable
        );
        assert!(classify(&EngineError::Internal("boom".into())).retryable);
        assert!(!classify(&EngineError::UnknownType("blob".into())).retryable);
        assert!(!classify(&EngineError::NoActiveTransaction).retryable);
    }
}
