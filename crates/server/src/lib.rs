//! The RecDB serving layer: a fault-tolerant TCP front-end over a shared
//! [`recdb_core::RecDb`], plus the companion wire protocol and client.
//!
//! The paper positions RecDB as a *system* answering recommendation
//! queries for live applications; this crate is the network boundary
//! that makes the engine's robustness stack (resource governor, WAL,
//! strict 2PL) observable from outside the process:
//!
//! - [`protocol`] — length-prefixed frames, typed results, and the
//!   [`EngineError`](recdb_core::EngineError) taxonomy on the wire with
//!   a retryable/fatal bit per error.
//! - [`server`] — the threaded front-end: admission control, read /
//!   write / idle timeouts, per-request deadlines mapped onto
//!   [`QueryGuard`](recdb_core::QueryGuard), deterministic fail points
//!   (`server::accept`, `server::frame_read`, `server::frame_write`),
//!   and graceful shutdown that drains, aborts leftover transactions,
//!   and fsyncs.
//! - [`client`] — reconnect + bounded exponential backoff keyed on the
//!   retryable bit.
//!
//! ```no_run
//! use recdb_core::RecDb;
//! use recdb_server::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(RecDb::new());
//! let server = Server::start(db, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! client.execute("CREATE TABLE ratings (userid INT, itemid INT, rating FLOAT)").unwrap();
//! let report = server.shutdown();
//! assert!(report.drained_within_deadline);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientConfig, ClientError, ClientResult};
pub use protocol::{
    classify, ErrorCode, ProtocolError, Request, Response, WireError, WireResult,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ShutdownReport};
