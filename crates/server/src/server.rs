//! The threaded TCP server: admission control, per-connection sessions,
//! timeouts, fail points, and graceful shutdown.
//!
//! One accept thread plus one thread per admitted connection. Each
//! connection owns a [`recdb_core::Session`], so transactional state is
//! exactly per-connection and dropping the session — on clean close,
//! killed socket, injected fault, or contained panic — rolls back any
//! open transaction and releases its locks.
//!
//! # Admission control
//!
//! The accept loop never queues work: every accepted socket is either
//! admitted (under [`ServerConfig::max_connections`]) or answered
//! immediately with a retryable `overloaded` error frame and closed, so
//! load beyond capacity turns into client backoff instead of an
//! unbounded pileup. The kernel-side pending-accept queue is bounded by
//! the listener backlog; the admission check is the first thing that
//! happens after `accept` returns.
//!
//! # Fail points
//!
//! Three deterministic fault-injection sites cover the serving path:
//! `server::accept` (connection dropped right after accept),
//! `server::frame_read` (request read fails → connection closes, session
//! aborts), and `server::frame_write` (response write fails after the
//! statement ran → connection closes; a committed statement stays
//! committed, which is exactly the ambiguity real clients must handle).

use crate::protocol::{
    classify, write_frame, ErrorCode, ProtocolError, Request, Response, WireError, WireResult,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use recdb_core::{QueryGuard, RecDb};
use recdb_fault::fail_point;
use recdb_obs::{Counter, Gauge, Histogram};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Slice length for interruptible socket reads: the granularity at which
/// idle timeouts and the shutdown flag are observed.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// Bucket bounds (microseconds) for `recdb_request_micros`: 100µs to
/// 10s, one decade per bucket.
const REQUEST_BUCKETS: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Serving-layer tunables. `Default` suits tests and local serving.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Admission cap: connections beyond this are rejected with a
    /// retryable `overloaded` error instead of being queued.
    pub max_connections: usize,
    /// Largest frame payload accepted or sent (bytes). Oversized frames
    /// fail before any allocation.
    pub max_frame_bytes: usize,
    /// Close a connection that sends no request for this long.
    pub idle_timeout: Duration,
    /// Budget for reading one frame once its first byte has arrived.
    pub read_timeout: Duration,
    /// Socket write timeout per response frame.
    pub write_timeout: Duration,
    /// Graceful-shutdown budget for in-flight statements to finish
    /// before their guards are cancelled and sockets are torn down.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            idle_timeout: Duration::from_secs(60),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// What [`Server::shutdown`] observed while draining.
#[derive(Debug, Clone, Copy)]
pub struct ShutdownReport {
    /// Whether every connection finished inside
    /// [`ServerConfig::drain_timeout`] without being forced.
    pub drained_within_deadline: bool,
    /// Connections whose guards were cancelled and sockets torn down.
    pub forced_connections: usize,
    /// Connections still not accounted for when shutdown returned
    /// (should be 0; non-zero means a handler thread is wedged).
    pub leaked_connections: usize,
    /// Wall-clock time the shutdown took.
    pub elapsed: Duration,
}

/// One admitted connection, as seen by the shutdown path.
struct ConnEntry {
    /// Clone of the connection's socket, for forced teardown.
    stream: TcpStream,
    /// Cancel handle of the statement currently executing, if any.
    busy: Mutex<Option<QueryGuard>>,
}

struct Shared {
    db: Arc<RecDb>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<HashMap<u64, Arc<ConnEntry>>>,
    connections_active: Arc<Gauge>,
    requests_ok: Arc<Counter>,
    requests_error: Arc<Counter>,
    request_micros: Arc<Histogram>,
    overload_rejections: Arc<Counter>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn finish_conn(&self, conn_id: u64) {
        let mut conns = lock(&self.conns);
        if conns.remove(&conn_id).is_some() {
            self.connections_active.add(-1);
        }
    }
}

/// Recover from a poisoned mutex: the server's maps hold plain data, so
/// a panicked holder leaves them consistent.
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A running RecDB TCP server. Dropping it performs a graceful shutdown.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    addr: SocketAddr,
    finished: bool,
}

impl Server {
    /// Bind `config.addr` and start serving `db`.
    pub fn start(db: Arc<RecDb>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics = db.metrics().clone();
        let shared = Arc::new(Shared {
            connections_active: metrics.gauge("recdb_connections_active"),
            requests_ok: metrics.counter_with("recdb_requests_total", &[("outcome", "ok")]),
            requests_error: metrics.counter_with("recdb_requests_total", &[("outcome", "error")]),
            request_micros: metrics.histogram("recdb_request_micros", REQUEST_BUCKETS),
            overload_rejections: metrics.counter("recdb_server_overload_rejections_total"),
            db,
            cfg,
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            conns: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("recdb-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server {
            shared,
            accept: Some(accept),
            addr,
            finished: false,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently admitted.
    pub fn active_connections(&self) -> usize {
        lock(&self.shared.conns).len()
    }

    /// Gracefully shut down: stop accepting, let in-flight statements
    /// finish (up to [`ServerConfig::drain_timeout`]), then cancel
    /// stragglers and tear their sockets down, and finally fsync durable
    /// state via a best-effort checkpoint.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ShutdownReport {
        let started = Instant::now();
        self.finished = true;
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept thread out of its blocking accept.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }

        // Drain phase: connection threads observe the shutdown flag at
        // their next frame boundary; a statement already executing runs
        // to completion and its response is written.
        let deadline = Instant::now() + self.shared.cfg.drain_timeout;
        while Instant::now() < deadline && !lock(&self.shared.conns).is_empty() {
            thread::sleep(Duration::from_millis(5));
        }

        // Force phase: cancel whatever is still running and tear down
        // the sockets so blocked reads/writes fail immediately.
        let stragglers: Vec<Arc<ConnEntry>> = lock(&self.shared.conns).values().cloned().collect();
        let drained_within_deadline = stragglers.is_empty();
        for entry in &stragglers {
            if let Some(guard) = lock(&entry.busy).as_ref() {
                guard.cancel();
            }
            let _ = entry.stream.shutdown(std::net::Shutdown::Both);
        }
        let force_deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < force_deadline && !lock(&self.shared.conns).is_empty() {
            thread::sleep(Duration::from_millis(5));
        }
        let leaked_connections = lock(&self.shared.conns).len();

        // Every session is gone; make durable state clean on disk.
        if self.shared.db.is_durable() {
            let _ = self.shared.db.checkpoint();
        }

        ShutdownReport {
            drained_within_deadline,
            forced_connections: stragglers.len(),
            leaked_connections,
            elapsed: started.elapsed(),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.finished {
            self.shutdown_inner();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("active_connections", &self.active_connections())
            .finish_non_exhaustive()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) if shared.shutting_down() => return,
            Err(_) => continue,
        };
        if shared.shutting_down() {
            // Could be the self-connect wake-up or a late client either
            // way the answer is the same: not serving anymore.
            let _ = respond_and_close(
                &stream,
                shared,
                WireError::new(ErrorCode::ShuttingDown, true, "server is shutting down"),
            );
            return;
        }
        // `server::accept` fail point: the connection is torn down right
        // after accept (as if the socket died in the handshake); the
        // server itself keeps serving. A panic-armed site is contained.
        let accept_ok = catch_unwind(AssertUnwindSafe(|| fail_point("server::accept")));
        if !matches!(accept_ok, Ok(Ok(()))) {
            drop(stream);
            continue;
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let entry = {
            let mut conns = lock(&shared.conns);
            if conns.len() >= shared.cfg.max_connections {
                drop(conns);
                shared.overload_rejections.inc();
                let _ = respond_and_close(
                    &stream,
                    shared,
                    WireError::new(
                        ErrorCode::Overloaded,
                        true,
                        format!(
                            "server at max_connections={}; retry after backoff",
                            shared.cfg.max_connections
                        ),
                    ),
                );
                continue;
            }
            let entry = Arc::new(ConnEntry {
                stream: match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => continue,
                },
                busy: Mutex::new(None),
            });
            conns.insert(conn_id, Arc::clone(&entry));
            shared.connections_active.add(1);
            entry
        };
        let thread_shared = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name(format!("recdb-conn-{conn_id}"))
            .spawn(move || {
                // The handler runs under `catch_unwind` so a panic-armed
                // fail point (or any bug) kills one connection, not the
                // server; the session inside is dropped during unwind,
                // aborting any open transaction.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    handle_conn(&thread_shared, &entry);
                }));
                thread_shared.finish_conn(conn_id);
            });
        if spawned.is_err() {
            shared.finish_conn(conn_id);
        }
    }
}

/// Best-effort single error frame + close, for rejected connections.
fn respond_and_close(
    stream: &TcpStream,
    shared: &Shared,
    err: WireError,
) -> Result<(), ProtocolError> {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut w = stream;
    write_frame(
        &mut w,
        &Response::Error(err).encode(),
        shared.cfg.max_frame_bytes,
    )
}

/// Why a connection stopped reading requests.
enum CloseReason {
    /// Peer closed cleanly at a frame boundary.
    Eof,
    /// No request arrived within the idle timeout.
    Idle,
    /// The server is draining for shutdown.
    Shutdown,
    /// The `server::frame_read` fail point fired.
    Fault,
    /// The peer announced a frame over `max_frame_bytes`.
    TooLarge(u64),
    /// The socket failed or a frame was cut short (timeout, reset, or
    /// EOF inside a frame).
    Broken,
}

fn handle_conn(shared: &Shared, entry: &ConnEntry) {
    let stream = &entry.stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_SLICE));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));

    if send_response(
        shared,
        stream,
        &Response::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .is_err()
    {
        return;
    }

    let db = Arc::clone(&shared.db);
    let mut session = db.session();

    loop {
        let payload = match read_request(shared, stream) {
            Ok(p) => p,
            Err(CloseReason::TooLarge(announced)) => {
                let _ = send_response(
                    shared,
                    stream,
                    &Response::Error(WireError::new(
                        ErrorCode::FrameTooLarge,
                        false,
                        format!(
                            "frame of {announced} bytes exceeds max_frame_bytes={}",
                            shared.cfg.max_frame_bytes
                        ),
                    )),
                );
                return;
            }
            Err(CloseReason::Shutdown) => {
                let _ = send_response(
                    shared,
                    stream,
                    &Response::Error(WireError::new(
                        ErrorCode::ShuttingDown,
                        true,
                        "server is shutting down",
                    )),
                );
                return;
            }
            Err(
                CloseReason::Eof | CloseReason::Idle | CloseReason::Fault | CloseReason::Broken,
            ) => return,
        };

        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Garbage bytes: answer with a clean protocol error and
                // close — resynchronizing an unframed stream is hopeless.
                let _ = send_response(
                    shared,
                    stream,
                    &Response::Error(WireError::new(
                        ErrorCode::MalformedFrame,
                        false,
                        e.to_string(),
                    )),
                );
                return;
            }
        };

        let started = Instant::now();
        let response = match request {
            Request::Ping => {
                shared.requests_ok.inc();
                Response::Pong
            }
            Request::Metrics => {
                shared.requests_ok.inc();
                Response::MetricsText(shared.db.render_metrics())
            }
            Request::Statement { deadline, sql } => {
                let guard = statement_guard(&shared.db, deadline);
                *lock(&entry.busy) = Some(guard.cancel_handle());
                let result = session.execute_with_guard(&sql, guard);
                *lock(&entry.busy) = None;
                match result {
                    Ok(res) => {
                        shared.requests_ok.inc();
                        Response::Result(WireResult::from_query_result(&res))
                    }
                    Err(e) => {
                        shared.requests_error.inc();
                        Response::Error(classify(&e))
                    }
                }
            }
        };
        shared
            .request_micros
            .observe(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));

        if send_response(shared, stream, &response).is_err() {
            return;
        }
    }
}

/// Build the guard for one statement: the governor's limits, with the
/// per-request deadline layered on (the tighter of the two wins).
fn statement_guard(db: &RecDb, deadline: Option<Duration>) -> QueryGuard {
    let governor = &db.config().governor;
    match deadline {
        None => governor.guard(),
        Some(d) => {
            let effective = governor.deadline.map_or(d, |g| g.min(d));
            QueryGuard::with_limits(Some(effective), governor.row_budget, governor.mem_budget)
        }
    }
}

/// Read one request frame in `POLL_SLICE` slices, observing the idle
/// timeout, the per-frame read budget, and the shutdown flag. The
/// `server::frame_read` fail point is consulted once per frame.
fn read_request(shared: &Shared, stream: &TcpStream) -> Result<Vec<u8>, CloseReason> {
    if fail_point("server::frame_read").is_err() {
        return Err(CloseReason::Fault);
    }
    let idle_deadline = Instant::now() + shared.cfg.idle_timeout;

    let mut header = [0u8; 4];
    let mut filled = 0usize;
    let mut frame_deadline: Option<Instant> = None;
    while filled < 4 {
        if filled == 0 {
            if shared.shutting_down() {
                return Err(CloseReason::Shutdown);
            }
            if Instant::now() >= idle_deadline {
                return Err(CloseReason::Idle);
            }
        } else if frame_deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(CloseReason::Broken);
        }
        match read_slice(stream, &mut header[filled..]) {
            SliceRead::Data(n) => {
                if filled == 0 {
                    frame_deadline = Some(Instant::now() + shared.cfg.read_timeout);
                }
                filled += n;
            }
            SliceRead::Eof if filled == 0 => return Err(CloseReason::Eof),
            SliceRead::Eof => return Err(CloseReason::Broken),
            SliceRead::WouldBlock => {}
            SliceRead::Err => return Err(CloseReason::Broken),
        }
    }

    let len = u32::from_be_bytes(header) as usize;
    if len > shared.cfg.max_frame_bytes {
        return Err(CloseReason::TooLarge(len as u64));
    }
    let deadline = frame_deadline.unwrap_or_else(|| Instant::now() + shared.cfg.read_timeout);
    let mut payload = vec![0u8; len];
    let mut off = 0usize;
    while off < len {
        if Instant::now() >= deadline {
            return Err(CloseReason::Broken);
        }
        match read_slice(stream, &mut payload[off..]) {
            SliceRead::Data(n) => off += n,
            SliceRead::Eof => return Err(CloseReason::Broken),
            SliceRead::WouldBlock => {}
            SliceRead::Err => return Err(CloseReason::Broken),
        }
    }
    Ok(payload)
}

enum SliceRead {
    Data(usize),
    Eof,
    WouldBlock,
    Err,
}

fn read_slice(stream: &TcpStream, buf: &mut [u8]) -> SliceRead {
    let mut r = stream;
    match r.read(buf) {
        Ok(0) => SliceRead::Eof,
        Ok(n) => SliceRead::Data(n),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::Interrupted
            ) =>
        {
            SliceRead::WouldBlock
        }
        Err(_) => SliceRead::Err,
    }
}

/// Write one response frame, consulting the `server::frame_write` fail
/// point first. Any failure closes the connection.
fn send_response(
    shared: &Shared,
    stream: &TcpStream,
    response: &Response,
) -> Result<(), ProtocolError> {
    fail_point("server::frame_write")
        .map_err(|e| ProtocolError::Malformed(format!("injected write fault: {e}")))?;
    let mut w = stream;
    write_frame(&mut w, &response.encode(), shared.cfg.max_frame_bytes)
}
