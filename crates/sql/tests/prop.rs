//! Property-based tests for the SQL front end: the lexer and parser must
//! be total (no panics) on arbitrary input, and generated well-formed
//! statements must round-trip through their AST invariants.

use proptest::prelude::*;
use recdb_sql::{parse, parse_many, tokenize, Expr, SelectItem, Statement};

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_]{0,10}".prop_filter("not a reserved word", |s| {
        ![
            "select",
            "from",
            "where",
            "order",
            "limit",
            "recommend",
            "and",
            "or",
            "not",
            "in",
            "between",
            "as",
            "group",
            "by",
            "null",
            "true",
            "false",
            "create",
            "drop",
            "insert",
            "delete",
            "update",
            "set",
            "explain",
        ]
        .contains(&s.to_ascii_lowercase().as_str())
    })
}

proptest! {
    /// The lexer never panics, whatever the input bytes (printable ASCII
    /// plus whitespace here; invalid characters must error, not crash).
    #[test]
    fn tokenizer_is_total(src in "[ -~\\t\\n]{0,200}") {
        let _ = tokenize(&src);
    }

    /// The parser never panics on arbitrary printable input.
    #[test]
    fn parser_is_total(src in "[ -~\\t\\n]{0,200}") {
        let _ = parse(&src);
        let _ = parse_many(&src);
    }

    /// The parser never panics on keyword soup — strings made only of SQL
    /// keywords and punctuation, which exercise deep grammar paths.
    #[test]
    fn parser_survives_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("RECOMMEND"),
                Just("TO"), Just("ON"), Just("USING"), Just("ORDER"), Just("BY"),
                Just("LIMIT"), Just("GROUP"), Just("AND"), Just("OR"), Just("NOT"),
                Just("IN"), Just("BETWEEN"), Just("("), Just(")"), Just(","),
                Just("="), Just("1"), Just("x"), Just("*"), Just(";"),
            ],
            0..30,
        )
    ) {
        let src = words.join(" ");
        let _ = parse(&src);
    }

    /// A generated simple SELECT parses into the expected AST shape.
    #[test]
    fn generated_select_parses(
        table in ident_strategy(),
        cols in proptest::collection::vec(ident_strategy(), 1..5),
        filter_col in ident_strategy(),
        filter_val in any::<i32>(),
        limit in proptest::option::of(0u64..10_000),
    ) {
        let mut sql = format!("SELECT {} FROM {}", cols.join(", "), table);
        sql.push_str(&format!(" WHERE {filter_col} = {filter_val}"));
        if let Some(l) = limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        let Statement::Select(s) = parse(&sql).unwrap() else {
            panic!("expected SELECT for {sql}");
        };
        prop_assert_eq!(s.items.len(), cols.len());
        for (item, col) in s.items.iter().zip(&cols) {
            let SelectItem::Expr { expr, alias: None } = item else {
                panic!("bare column became {item:?}");
            };
            let reference = expr.column_ref();
            prop_assert_eq!(reference.as_deref(), Some(col.as_str()));
        }
        prop_assert_eq!(s.from.len(), 1);
        prop_assert_eq!(&s.from[0].table, &table);
        prop_assert_eq!(s.limit, limit);
        prop_assert!(s.filter.is_some());
    }

    /// Integer and float literals round-trip through the lexer with full
    /// precision.
    #[test]
    fn numeric_literals_roundtrip(i in 0i64..=i64::MAX, f in -1e15f64..1e15) {
        let sql = format!("SELECT {} FROM t WHERE x = {:?}", i, f.abs());
        let Statement::Select(s) = parse(&sql).unwrap() else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else { panic!() };
        if let Expr::Literal(recdb_sql::Literal::Int(v)) = expr {
            prop_assert_eq!(*v, i);
        } else {
            panic!("expected int literal, got {expr:?}");
        }
    }

    /// String literals with embedded quotes round-trip via '' escaping.
    #[test]
    fn string_literals_roundtrip(s in "[a-zA-Z0-9 ']{0,30}") {
        let escaped = s.replace('\'', "''");
        let sql = format!("SELECT x FROM t WHERE n = '{escaped}'");
        let Statement::Select(stmt) = parse(&sql).unwrap() else { panic!() };
        let filter = stmt.filter.unwrap();
        let Expr::Binary { right, .. } = filter else { panic!() };
        let Expr::Literal(recdb_sql::Literal::Str(got)) = *right else {
            panic!("expected string literal")
        };
        prop_assert_eq!(got, s);
    }

    /// `conjuncts` and `and_all` are inverses (up to tree shape).
    #[test]
    fn conjuncts_and_all_inverse(names in proptest::collection::vec(ident_strategy(), 1..8)) {
        let exprs: Vec<Expr> = names.iter().map(|n| Expr::col(n)).collect();
        let tree = Expr::and_all(exprs.clone()).unwrap();
        let parts: Vec<Expr> = tree.conjuncts().into_iter().cloned().collect();
        prop_assert_eq!(parts, exprs);
    }
}
