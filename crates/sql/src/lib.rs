//! # recdb-sql
//!
//! Lexer and parser for the RecDB SQL dialect (ICDE 2017 §III): standard
//! `CREATE TABLE` / `INSERT` / `SELECT` plus the paper's extensions —
//!
//! * `CREATE RECOMMENDER name ON ratings USERS FROM ucol ITEMS FROM icol
//!   RATINGS FROM rcol USING algorithm` (§III-A),
//! * `DROP RECOMMENDER name`,
//! * the `RECOMMEND item_col TO user_col ON rating_col USING algorithm`
//!   clause inside `SELECT` (§III-B),
//!
//! and the spatial function calls of the §V case study (`ST_Contains`,
//! `ST_DWithin`, `ST_Distance`, `CScore`, `POINT`).
//!
//! The grammar follows the paper's queries verbatim: every Query 1–8 and
//! Recommender 1–3 statement in the paper parses (see the test suite).

pub mod ast;
pub mod parser;
pub mod token;

pub use ast::{
    BinaryOp, ColumnDef, Expr, Literal, OrderKey, RecommendClause, SelectItem, SelectStatement,
    Statement, TableRef, UnaryOp,
};
pub use parser::{parse, parse_many, ParseError};
pub use token::{tokenize, Token, TokenKind};
